#!/usr/bin/env python
"""Scenario: port an efficient edge network to a systolic accelerator.

You have a MobileNet-family model and a TPU-like 64×64 systolic array.
This script walks the decision the paper automates: which FuSe variant to
use, what it costs (MACs/params), what it buys (latency), and which layers
matter (Fig. 8b style breakdown).

Run:  python examples/transform_mobilenet.py [model]
      model ∈ {mobilenet_v1, mobilenet_v2, mnasnet_b1,
               mobilenet_v3_small, mobilenet_v3_large}
"""

import sys

from repro.analysis import format_table, layerwise_speedups, operator_distribution
from repro.core import ALL_VARIANTS, FuSeVariant, plan_replacements, to_fuseconv
from repro.ir import macs_millions, params_millions
from repro.models import build_model
from repro.systolic import PAPER_ARRAY, estimate_network


def main(model_name: str = "mobilenet_v2") -> None:
    baseline = build_model(model_name)
    base_latency = estimate_network(baseline, PAPER_ARRAY)

    # Variant comparison (the Table I decision).
    rows = [[
        "baseline",
        f"{macs_millions(baseline):.0f}",
        f"{params_millions(baseline):.2f}",
        f"{base_latency.total_cycles:,}",
        "1.00x",
    ]]
    for variant in ALL_VARIANTS:
        net = to_fuseconv(baseline, variant, PAPER_ARRAY)
        latency = estimate_network(net, PAPER_ARRAY)
        rows.append([
            variant.label,
            f"{macs_millions(net):.0f}",
            f"{params_millions(net):.2f}",
            f"{latency.total_cycles:,}",
            f"{base_latency.total_cycles / latency.total_cycles:.2f}x",
        ])
    print(format_table(
        ["variant", "MACs(M)", "params(M)", "cycles", "speedup"],
        rows,
        title=f"{model_name} on a 64x64 systolic array",
    ))

    # Where does the time go? (Fig. 8c view.)
    full = to_fuseconv(baseline, FuSeVariant.FULL, PAPER_ARRAY)
    for label, net in (("baseline", baseline), ("FuSe-Full", full)):
        dist = operator_distribution(net, PAPER_ARRAY)
        shares = "  ".join(
            f"{cls}: {frac * 100:.1f}%"
            for cls, frac in sorted(dist.fractions.items(), key=lambda kv: -kv[1])
        )
        print(f"\n{label} latency by operator: {shares}")

    # Which layers benefit? (Fig. 8b view.)
    blocks = layerwise_speedups(baseline, FuSeVariant.FULL, PAPER_ARRAY)
    print("\n" + format_table(
        ["block", "input", "speedup"],
        [[b.block, f"{b.in_shape[1]}x{b.in_shape[2]}x{b.in_shape[0]}",
          f"{b.speedup:.2f}x"] for b in blocks],
        title="Per-block speed-up of the Full transform",
    ))

    # The 50% plan: which layers would the paper's greedy selection keep?
    plan = plan_replacements(baseline, FuSeVariant.HALF_50, PAPER_ARRAY)
    print(f"\nHalf-50% plan replaces {len(plan.replaced)} of "
          f"{len(plan.replaced) + len(plan.skipped)} depthwise layers "
          f"(largest estimated cycle savings first).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mobilenet_v2")
