#!/usr/bin/env python
"""Scenario: watch the two dataflows run, cycle by cycle.

Animates (in ASCII) a 4×4 systolic array executing

1. an output-stationary GEMM — operands enter skewed from the left and
   top edges, a diagonal wavefront of active PEs sweeps the array
   (Fig. 1d of the paper), and
2. the FuSeConv broadcast dataflow — each row runs one independent 1D
   convolution; the broadcast link activates a whole *column* of PEs per
   step (Fig. 7), which is exactly why utilization spans both dimensions.

Run:  python examples/visualize_dataflow.py
"""

import numpy as np

from repro.systolic import ArrayConfig
from repro.systolic.functional import SystolicArraySim


def render_activity(active: np.ndarray) -> str:
    """One frame: '#' where a PE did useful work this cycle."""
    return "\n".join(
        "  " + " ".join("#" if cell else "." for cell in row) for row in active
    )


def visualize_gemm() -> None:
    print("=== Output-stationary GEMM (4x4 array, 4x4x4 problem) ===")
    print("A enters from the left (skewed), B from the top; '#' = active MAC\n")
    frames = []

    def observer(phase: str, cycle: int, state: dict) -> None:
        active = (state["a"] != 0) & (state["b"] != 0)
        frames.append((cycle, render_activity(active)))

    rng = np.random.default_rng(0)
    a, b = rng.normal(size=(4, 4)), rng.normal(size=(4, 4))
    result = SystolicArraySim(ArrayConfig(4, 4), observer=observer).run_gemm(a, b)
    for cycle, frame in frames:
        print(f"cycle {cycle}:")
        print(frame)
        print()
    print(f"values exact: {np.allclose(result.values, a @ b)}, "
          f"cycles: {result.cycles} (incl. {4} drain)\n")
    print("Note the diagonal wavefront: at most one anti-diagonal band is\n"
          "fully busy at a time — fill and drain are the overhead the\n"
          "analytical model charges per fold.\n")


def visualize_broadcast() -> None:
    print("=== Broadcast dataflow: four 1D convolutions, one per row ===")
    print("The row broadcast link feeds a weight to ALL PEs of a row at\n"
          "once; '#' = active MAC\n")
    frames = []

    def observer(phase: str, cycle: int, state: dict) -> None:
        frames.append((cycle, render_activity(state["active"])))

    rng = np.random.default_rng(1)
    x = rng.normal(size=(4, 6))   # 4 input lines of length 6
    w = rng.normal(size=(4, 3))   # one 3-tap filter per line
    sim = SystolicArraySim(ArrayConfig(4, 4), observer=observer)
    result = sim.run_conv1d_broadcast(x, w)
    for cycle, frame in frames:
        print(f"cycle {cycle}:")
        print(frame)
        print()
    print(f"cycles: {result.cycles} — whole columns activate together: the\n"
          f"(r-1) weight-skew of the systolic dataflow is gone, which is\n"
          f"the benefit bought by the 4.35% area overhead of the links.")


def main() -> None:
    visualize_gemm()
    visualize_broadcast()


if __name__ == "__main__":
    main()
