#!/usr/bin/env python
"""Scenario: automated Neural Operator Search (the paper's §VI proposal).

The paper frames FuSeConv as the outcome of *manual* operator search and
calls for automating it.  This script runs that search: for each
depthwise layer of a network choose {keep, FuSe-Full, FuSe-Half} to
maximize capacity (the accuracy proxy) under a latency budget on a 64×64
array — an exact multiple-choice knapsack.  The paper's fixed variants
fall out as the endpoints of the resulting Pareto frontier.

Run:  python examples/nos_search.py [model]
"""

import sys
from collections import Counter

from repro.analysis import format_table
from repro.core import FuSeVariant, to_fuseconv
from repro.ir import params_millions
from repro.models import build_model
from repro.nos import pareto_front, search_operators
from repro.systolic import PAPER_ARRAY, estimate_network


def main(model_name: str = "mobilenet_v2") -> None:
    baseline = build_model(model_name)
    base_cycles = estimate_network(baseline, PAPER_ARRAY).total_cycles

    rows = []
    for result in pareto_front(baseline, points=7):
        net = result.build(baseline)
        cycles = estimate_network(net, PAPER_ARRAY).total_cycles
        mix = Counter(result.choices.values())
        rows.append([
            f"{result.cycles:,}",
            f"{mix[None]}/{mix[1]}/{mix[2]}",
            f"{params_millions(net):.2f}",
            f"{base_cycles / cycles:.2f}x",
        ])
    print(format_table(
        ["searched-layer cycle budget", "mix dw/full/half", "net params(M)",
         "net speedup"],
        rows,
        title=f"NOS Pareto frontier for {model_name} (64x64 array)",
    ))

    # Where do the paper's fixed variants sit?
    print("\nThe paper's fixed variants as frontier points:")
    for variant in (FuSeVariant.FULL, FuSeVariant.HALF):
        net = to_fuseconv(baseline, variant, PAPER_ARRAY)
        cycles = estimate_network(net, PAPER_ARRAY).total_cycles
        print(f"  {variant.label:10s} params={params_millions(net):.2f}M  "
              f"speedup={base_cycles / cycles:.2f}x")

    # A concrete mid-budget search.
    options = search_operators(baseline, latency_budget=None).options
    fastest = sum(min(o.cycles for o in opts) for opts in options)
    slowest = sum(max(o.cycles for o in opts) for opts in options)
    mid = (fastest + slowest) // 4
    result = search_operators(baseline, latency_budget=mid)
    mix = Counter(result.choices.values())
    print(f"\nBudget {mid:,} cycles -> keep {mix[None]}, Full {mix[1]}, "
          f"Half {mix[2]} — a mix no fixed variant expresses.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mobilenet_v2")
