#!/usr/bin/env python
"""Scenario: size a systolic accelerator for an edge workload.

Sweeps array sizes for baseline vs FuSe networks (the paper's Fig. 8d
ablation), adds the silicon cost of the broadcast links (§V-B.5) and the
SRAM traffic picture — the three axes a hardware architect trades off.

Run:  python examples/design_space.py
"""

from repro.analysis import format_table, scaling_curve
from repro.core import FuSeVariant, to_fuseconv
from repro.hw import array_cost, broadcast_overhead
from repro.models import build_model
from repro.systolic import ArrayConfig, estimate_network, traffic_report

SIZES = (16, 32, 64, 128)
NETWORK = "mobilenet_v2"


def main() -> None:
    # Axis 1: latency vs array size (Fig. 8d).
    curve = scaling_curve(NETWORK, FuSeVariant.HALF, sizes=SIZES)
    rows = []
    for point in curve:
        array = ArrayConfig.square(point.size)
        cost = array_cost(array)
        rows.append([
            f"{point.size}x{point.size}",
            f"{point.baseline_cycles:,}",
            f"{point.fuse_cycles:,}",
            f"{point.speedup:.2f}x",
            f"{cost.area_mm2:.2f}",
            f"{cost.power_mw / 1e3:.2f}",
        ])
    print(format_table(
        ["array", "baseline cycles", "FuSe-Half cycles", "speedup",
         "area (mm^2)", "power (W)"],
        rows,
        title=f"{NETWORK}: latency vs array size vs silicon cost",
    ))

    # Axis 2: what do the broadcast links cost? (§V-B.5)
    print("\nBroadcast-link overhead by array size:")
    for size in SIZES:
        report = broadcast_overhead(size)
        print(f"  {size:3d}x{size:<3d}  area +{report.area_overhead * 100:.2f}%   "
              f"power +{report.power_overhead * 100:.2f}%")

    # Axis 3: SRAM traffic (data movement often dominates energy).
    array = ArrayConfig.square(64)
    baseline = build_model(NETWORK)
    fuse = to_fuseconv(baseline, FuSeVariant.HALF, array)
    base_traffic = traffic_report(baseline, array)
    fuse_traffic = traffic_report(fuse, array)
    print(f"\nSRAM reads @64x64: baseline {base_traffic.total_sram_reads / 1e6:.1f}M "
          f"values, FuSe-Half {fuse_traffic.total_sram_reads / 1e6:.1f}M values "
          f"({base_traffic.total_sram_reads / fuse_traffic.total_sram_reads:.2f}x less)")
    print(f"read amplification (reads per unique operand): "
          f"baseline {base_traffic.mean_read_amplification:.2f}, "
          f"FuSe-Half {fuse_traffic.mean_read_amplification:.2f}")

    # Summary: the sweet spot grows with the array.
    print("\nTakeaway (paper Fig. 8d): the FuSe advantage grows with array "
          "size — under-utilization of depthwise convolution is worse on "
          "bigger arrays, so cloud-scale accelerators benefit most.")


if __name__ == "__main__":
    main()
