#!/usr/bin/env python
"""Serving demo: dynamic batching, SLO scheduling and load generation.

1. Start an in-process ``InferenceServer`` preloading two FuSe models.
2. Fire a burst of compatible requests and watch the batcher coalesce.
3. Verify the headline guarantee: batched == unbatched, bit for bit.
4. Overload a tiny queue and watch admission control shed with a
   cost-model retry-after hint.
5. Run a deterministic closed-loop workload and print the load report.

Run:  python examples/serve_demo.py
"""

import asyncio

from repro.serve import (
    InferenceRequest,
    InferenceServer,
    ModelKey,
    ServeConfig,
    Status,
    WorkloadSpec,
    run_workload,
)

KEYS = [
    ModelKey("mobilenet_v3_small", variant="half", resolution=32),
    ModelKey("mobilenet_v1", resolution=32),
]


async def main() -> None:
    # 1. A server with two preloaded models and a generous SLO.
    config = ServeConfig(engine="graph", preload=KEYS, workers=2,
                         max_batch=8, batch_timeout_ms=20.0, slo_ms=5000.0)
    async with InferenceServer(config) as server:
        print(f"serving: {', '.join(k.canonical() for k in KEYS)}")

        # 2. A burst on one model: compatible requests share a batch.
        burst = [InferenceRequest(key=KEYS[0], input_seed=i)
                 for i in range(8)]
        responses = await server.submit_many(burst)
        sizes = sorted(r.batch_size for r in responses)
        print(f"\nburst of 8     : batch sizes {sizes} "
              f"(dynamic batching coalesced compatible requests)")

        # 3. Bit-determinism: the same input seed through a batch and alone
        # produces the same digest.
        solo = await server.submit(InferenceRequest(key=KEYS[0], input_seed=0))
        assert solo.digest == responses[0].digest
        print(f"bit-exact      : digest {solo.digest[:16]}… identical "
              f"batched and unbatched")

    # 4. Overload: a 4-slot queue against 40 instant arrivals.
    tiny = ServeConfig(engine="analytical", preload=[KEYS[1]], workers=1,
                       max_queue=4, max_batch=2, slo_ms=5000.0)
    async with InferenceServer(tiny) as server:
        flood = await server.submit_many(
            [InferenceRequest(key=KEYS[1]) for _ in range(40)]
        )
        shed = [r for r in flood if r.status is Status.SHED]
        hint = shed[0].retry_after_ms if shed else 0.0
        print(f"\noverload       : {len(shed)}/40 shed, retry-after hint "
              f"{hint:.1f} ms (cost-model drain estimate)")

    # 5. A reproducible closed-loop workload over both models.
    config = ServeConfig(engine="graph", preload=KEYS, workers=2,
                         max_batch=8, batch_timeout_ms=5.0, slo_ms=5000.0)
    async with InferenceServer(config) as server:
        spec = WorkloadSpec(keys=KEYS, requests=60, clients=6, seed=0)
        report = await run_workload(server.submit, spec)
    print("\n" + report.render())


if __name__ == "__main__":
    asyncio.run(main())
