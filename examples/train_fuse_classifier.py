#!/usr/bin/env python
"""Scenario: does the drop-in replacement cost accuracy?

Trains three versions of the same small separable CNN — baseline depthwise,
FuSe-Full (D=1) and FuSe-Half (D=2) — on a synthetic image-classification
task, using the paper's optimizer recipe (RMSprop momentum 0.9, lr 0.016
family, exponential decay, weight EMA).  Prints the accuracy/params
comparison that Table I makes on ImageNet.

Run:  python examples/train_fuse_classifier.py [--quick]
"""

import sys
import time

from repro.analysis import format_table
from repro.nn import (
    MiniSeparableNet,
    SyntheticSpec,
    TrainConfig,
    make_synthetic,
    train,
)


def main(quick: bool = False) -> None:
    spec = SyntheticSpec(
        num_classes=8,
        image_size=12,
        noise=0.8 if quick else 2.0,
        max_shift=1 if quick else 3,
        train_per_class=24 if quick else 48,
        test_per_class=12 if quick else 24,
    )
    config = TrainConfig(epochs=6 if quick else 12, batch_size=32, lr=0.01)
    train_data, test_data = make_synthetic(spec, seed=0)
    print(f"synthetic task: {spec.num_classes} classes, "
          f"{len(train_data)} train / {len(test_data)} test images, "
          f"noise={spec.noise}")

    rows = []
    for op, label in (
        ("depthwise", "baseline (depthwise)"),
        ("fuse_full", "FuSe-Full (D=1)"),
        ("fuse_half", "FuSe-Half (D=2)"),
    ):
        model = MiniSeparableNet(num_classes=spec.num_classes, width=8, op=op, seed=1)
        start = time.time()
        history = train(model, train_data, test_data, config)
        rows.append([
            label,
            model.num_parameters(),
            f"{history.best_test_accuracy * 100:.1f}%",
            f"{history.final_test_accuracy * 100:.1f}%",
            f"{time.time() - start:.1f}s",
        ])
        print(f"  trained {label}: best test acc "
              f"{history.best_test_accuracy * 100:.1f}%")

    print("\n" + format_table(
        ["variant", "params", "best acc", "final acc (EMA)", "train time"],
        rows,
        title="Drop-in accuracy comparison (paper's Table I, proxy scale)",
    ))
    print("\nExpected shape (paper SV-B.1): FuSe-Full tracks the baseline "
          "closely; FuSe-Half may lose a little accuracy for its smaller "
          "parameter count.")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
