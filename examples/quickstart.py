#!/usr/bin/env python
"""Quickstart: the FuSeConv pipeline in sixty seconds.

1. Run the FuSeConv operator on a feature map.
2. Drop-in replace the depthwise layers of MobileNet-V2.
3. Estimate the speed-up on a 64×64 systolic array.
4. Verify the formal claim: 1D conv is systolic, 2D conv is not.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import FuSeConvOp, FuSeVariant, to_fuseconv
from repro.ir import macs_millions, params_millions
from repro.models import build_model
from repro.ria import check_ria, conv1d, conv2d_direct
from repro.systolic import PAPER_ARRAY, estimate_network, speedup


def main() -> None:
    # 1. The operator: a Half-variant FuSe stage on a 32-channel map.
    op = FuSeConvOp.init(channels=32, kernel=3, d=2, seed=0)
    x = np.random.default_rng(0).normal(size=(32, 56, 56)).astype(np.float32)
    y = op(x)
    print(f"FuSeConv (Half): {x.shape} -> {y.shape}, "
          f"{op.macs(56, 56) / 1e6:.2f}M MACs")

    # 2. The drop-in transform on a real network.
    baseline = build_model("mobilenet_v2")
    fuse_half = to_fuseconv(baseline, FuSeVariant.HALF)
    print(f"\nMobileNet-V2          : {macs_millions(baseline):6.0f}M MACs, "
          f"{params_millions(baseline):.2f}M params")
    print(f"MobileNet-V2 FuSe-Half: {macs_millions(fuse_half):6.0f}M MACs, "
          f"{params_millions(fuse_half):.2f}M params")

    # 3. Latency on the paper's 64×64 output-stationary array.
    base_latency = estimate_network(baseline, PAPER_ARRAY)
    fuse_latency = estimate_network(fuse_half, PAPER_ARRAY)
    print(f"\nbaseline : {base_latency.total_cycles:,} cycles "
          f"({base_latency.total_ms:.2f} ms)")
    print(f"FuSe-Half: {fuse_latency.total_cycles:,} cycles "
          f"({fuse_latency.total_ms:.2f} ms)")
    print(f"speed-up : {speedup(base_latency, fuse_latency):.2f}x "
          f"(paper reports 7.23x)")

    # 4. Why it works: the RIA formalism of §III.
    print(f"\n1D convolution: {'RIA — systolic' if check_ria(conv1d()).is_ria else '?'}")
    result = check_ria(conv2d_direct(3))
    print(f"2D convolution: {'RIA' if result.is_ria else 'NOT an RIA — needs im2col'}")


if __name__ == "__main__":
    main()
