#!/usr/bin/env python
"""Scenario: formally decide what belongs on a systolic array.

Uses the Regular-Iterative-Algorithm machinery of §II/§III to (a) classify
the paper's algorithms, (b) explain exactly *why* 2D convolution fails,
(c) synthesize a space-time mapping for matrix multiplication — recovering
the output-stationary dataflow of Fig. 1(d) — and (d) execute both
dataflows on the functional PE-grid simulator to show values and cycle
counts agree with the theory.

Run:  python examples/ria_synthesis.py
"""

import numpy as np

from repro.ria import (
    ALGORITHMS,
    check_ria,
    conv2d_direct,
    matmul,
    synthesize_mapping,
)
from repro.systolic import (
    ArrayConfig,
    GemmDims,
    os_gemm_stats,
    simulate_conv1d_bank,
    simulate_gemm,
)


def main() -> None:
    print("=== RIA classification (SIII) ===")
    for name, builder in ALGORITHMS.items():
        result = check_ria(builder())
        verdict = "RIA -> systolic-capable" if result.is_ria else "NOT an RIA"
        print(f"  {name:20s} {verdict}")

    print("\n=== Why 2D convolution fails ===")
    print(check_ria(conv2d_direct(3)).explain())

    print("\n=== Space-time mapping synthesis for matmul ===")
    mapping = synthesize_mapping(matmul(), (4, 4, 8), projection=(0, 0, 1))
    print(f"  schedule λ = {mapping.schedule}, projection u = {mapping.projection}")
    print(f"  dataflow: {mapping.dataflow_name} (stationary: {mapping.stationary_vars})")
    print(f"  PE grid {mapping.pe_extent}, makespan {mapping.makespan} steps")

    print("\n=== Functional execution on the PE grid ===")
    rng = np.random.default_rng(0)
    array = ArrayConfig(rows=4, cols=4, broadcast=True)

    a, b = rng.normal(size=(4, 8)), rng.normal(size=(8, 4))
    gemm = simulate_gemm(a, b, array)
    expected = os_gemm_stats(GemmDims(4, 8, 4), array).cycles
    print(f"  GEMM 4x8x4: max |error| = {np.abs(gemm.values - a @ b).max():.2e}, "
          f"cycles = {gemm.cycles} (analytical {expected})")

    x, w = rng.normal(size=(4, 10)), rng.normal(size=(4, 3))
    conv = simulate_conv1d_bank(x, w, array)
    print(f"  broadcast 1D-conv bank (4 rows): {conv.values.shape[1]} outputs/conv, "
          f"cycles = {conv.cycles}")
    print("  -> the row-broadcast dataflow executes FuSeConv with no im2col.")


if __name__ == "__main__":
    main()
