#!/usr/bin/env python
"""Scenario: the full deployment pipeline, end to end.

Everything a team porting a MobileNet to a systolic edge accelerator
would run, in order:

1. pick the FuSe variant (latency on the target array),
2. check the silicon bill (broadcast-link overhead, buffer sizing),
3. check the energy budget,
4. quantize the weights to int8 and confirm nothing degrades structurally,
5. save the deployable architecture to JSON (and a DOT graph for review).

Run:  python examples/deploy_pipeline.py [output-dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core import FuSeVariant, to_fuseconv
from repro.hw import broadcast_overhead, energy_report
from repro.ir import network_to_dot, params_millions, save_network
from repro.models import build_model
from repro.nn import GraphExecutor, Tensor, fake_quantize_model
from repro.systolic import (
    ArrayConfig,
    estimate_network,
    network_buffer_requirement,
    traffic_report,
)

MODEL = "mobilenet_v3_small"
ARRAY = ArrayConfig.square(64)


def main(output_dir: str) -> None:
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)

    # 1. Variant choice.
    baseline = build_model(MODEL)
    base_latency = estimate_network(baseline, ARRAY)
    print(f"{MODEL} baseline: {base_latency.total_ms:.2f} ms on "
          f"{ARRAY.rows}x{ARRAY.cols}")
    candidates = {}
    for variant in (FuSeVariant.FULL, FuSeVariant.HALF):
        net = to_fuseconv(baseline, variant, ARRAY)
        latency = estimate_network(net, ARRAY)
        candidates[variant] = (net, latency)
        print(f"  {variant.label:10s} {latency.total_ms:.2f} ms "
              f"({base_latency.total_cycles / latency.total_cycles:.2f}x), "
              f"{params_millions(net):.2f}M params")
    # Full keeps accuracy (paper §V-B.1); pick it unless latency is critical.
    chosen, latency = candidates[FuSeVariant.FULL]
    print(f"-> choosing FuSe-Full (accuracy-preserving, "
          f"{base_latency.total_cycles / latency.total_cycles:.1f}x faster)\n")

    # 2. Silicon bill.
    overhead = broadcast_overhead(ARRAY.rows)
    buffers = network_buffer_requirement(chosen, ARRAY)
    print(f"broadcast links: +{overhead.area_overhead * 100:.2f}% area, "
          f"+{overhead.power_overhead * 100:.2f}% power")
    print(f"stall-free SRAM: {buffers.total_kib:.0f} KiB (double-buffered)\n")

    # 3. Energy budget.
    energy = energy_report(chosen, ARRAY)
    base_energy = energy_report(baseline, ARRAY)
    print(f"energy/inference: {energy.total_uj:.0f} uJ "
          f"(baseline {base_energy.total_uj:.0f} uJ, "
          f"movement share {energy.movement_fraction * 100:.0f}%)")
    traffic = traffic_report(chosen, ARRAY)
    print(f"SRAM traffic: {traffic.total_sram_reads / 1e6:.1f}M reads\n")

    # 4. Weights: instantiate, quantize, smoke-test.
    model = GraphExecutor(chosen, seed=0)
    scales = fake_quantize_model(model, bits=8)
    probe = Tensor(np.zeros((1, 3, 224, 224), dtype=np.float32))
    logits = model(probe)
    print(f"int8 weight quantization: {len(scales)} tensors, "
          f"forward pass finite: {bool(np.all(np.isfinite(logits.data)))}\n")

    # 5. Artifacts.
    arch_path = out / f"{MODEL}_fuse_full.json"
    dot_path = out / f"{MODEL}_fuse_full.dot"
    save_network(chosen, str(arch_path))
    dot_path.write_text(network_to_dot(chosen))
    print(f"wrote {arch_path}")
    print(f"wrote {dot_path} (render with: dot -Tpng -O {dot_path.name})")


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="fuse_deploy_")
    main(target)
