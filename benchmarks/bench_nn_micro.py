"""Micro-benchmarks of the numpy training substrate (pytest-benchmark).

Performance tracking for the kernels the accuracy experiments depend on:
grouped conv forward/backward, the FuSe stage, and an optimizer step.
"""

import numpy as np

import repro.nn.functional as F
from repro.nn import (
    FuSeDepthwiseStage,
    MiniSeparableNet,
    RMSprop,
    Tensor,
    parameter,
)


def test_conv2d_forward_speed(benchmark):
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(8, 16, 16, 16)).astype(np.float32))
    w = Tensor(rng.normal(size=(32, 16, 3, 3)).astype(np.float32))
    out = benchmark(F.conv2d, x, w, None, 1, "same")
    assert out.shape == (8, 32, 16, 16)


def test_depthwise_backward_speed(benchmark):
    rng = np.random.default_rng(0)

    def step():
        x = parameter(rng.normal(size=(8, 32, 16, 16)))
        w = parameter(rng.normal(size=(32, 1, 3, 3)))
        out = F.depthwise_conv2d(x, w)
        (out ** 2).sum().backward()
        return x.grad

    grad = benchmark(step)
    assert grad is not None


def test_fuse_stage_forward_speed(benchmark):
    stage = FuSeDepthwiseStage(32, kernel=3, d=2, rng=np.random.default_rng(0))
    x = Tensor(np.random.default_rng(1).normal(size=(8, 32, 16, 16)).astype(np.float32))
    out = benchmark(stage, x)
    assert out.shape == (8, 32, 16, 16)


def test_training_step_speed(benchmark):
    model = MiniSeparableNet(num_classes=8, width=8, seed=0)
    optimizer = RMSprop(model.parameters(), lr=0.01)
    rng = np.random.default_rng(0)
    images = rng.normal(size=(32, 3, 12, 12)).astype(np.float32)
    labels = rng.integers(0, 8, size=32)

    def step():
        optimizer.zero_grad()
        logits = model(Tensor(images))
        loss = F.cross_entropy(logits, labels)
        loss.backward()
        optimizer.step()
        return loss.item()

    loss = benchmark(step)
    assert np.isfinite(loss)
