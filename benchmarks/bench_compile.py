"""Compiled inference runtime vs eager graph execution (pytest-benchmark).

Measures the headline claim of the compiled runtime (docs/runtime.md):
MobileNet-V3-Small at batch 8 / resolution 32 runs >=2x faster through a
folded :class:`~repro.nn.compile.InferencePlan` than through the eager
:class:`~repro.nn.graph.GraphExecutor`, while the exact (no-fold) plan
stays bit-identical and the folded plan stays within 1e-4.  The int8
preset rides along as a third flavor column (its accuracy gate lives in
``bench_quantize.py``, which needs a trained model).

Also runnable directly as the ``make compile-smoke`` gate::

    python benchmarks/bench_compile.py --smoke

which writes ``benchmarks/results/BENCH_compile.json`` and exits non-zero
if the exact plan is not bit-identical, the folded error exceeds 1e-4, or
the speedup falls under ``--min-speedup``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.models import build_model
from repro.nn import CompileConfig, GraphExecutor, Tensor, compile_executor

RESULTS_DIR = Path(__file__).parent / "results"
FOLD_TOLERANCE = 1e-4


def _best_ms(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times) * 1000.0


def run_compile_benchmark(network: str = "mobilenet_v3_small", batch: int = 8,
                          resolution: int = 32, repeats: int = 5,
                          seed: int = 0) -> dict:
    """Eager vs exact-plan vs folded-plan on one model; returns the record."""
    net = build_model(network, num_classes=10, resolution=resolution)
    executor = GraphExecutor(net, seed=seed)
    executor.eval()
    shape = (batch,) + tuple(net.input_shape)
    x = np.random.default_rng(seed + 1).standard_normal(shape).astype(np.float32)

    folded = compile_executor(executor, shape)
    exact = compile_executor(executor, shape, CompileConfig.exact())
    int8 = compile_executor(executor, shape, CompileConfig.int8())

    ref = executor(Tensor(x)).data
    folded_err = float(np.max(np.abs(
        folded.run(x).astype(np.float64) - ref.astype(np.float64)
    )))
    eager_ms = _best_ms(lambda: executor(Tensor(x)), repeats)
    plan_ms = _best_ms(lambda: folded.run(x), repeats)
    exact_ms = _best_ms(lambda: exact.run(x), repeats)
    int8_ms = _best_ms(lambda: int8.run(x), repeats)

    s = folded.stats
    return {
        "network": network,
        "batch": batch,
        "resolution": resolution,
        "repeats": repeats,
        "eager_ms": eager_ms,
        "plan_ms": plan_ms,
        "exact_plan_ms": exact_ms,
        "int8_plan_ms": int8_ms,
        "speedup": eager_ms / plan_ms,
        "exact_speedup": eager_ms / exact_ms,
        "int8_speedup": eager_ms / int8_ms,
        "int8_vs_folded": plan_ms / int8_ms,
        "int8_ops": int8.stats.int8_ops,
        "int8_fallbacks": int8.stats.int8_fallbacks,
        "exact_bit_identical": bool(exact.run(x).tobytes() == ref.tobytes()),
        "folded_max_abs_err": folded_err,
        "nodes": s.nodes,
        "ops": s.ops,
        "folded_bn": s.folded_bn,
        "fused_activations": s.fused_activations,
        "arena_bytes": s.arena_bytes,
        "naive_bytes": s.naive_bytes,
        "arena_saving": s.arena_saving,
        "compile_ms": s.compile_ms,
    }


def render(result: dict) -> str:
    return "\n".join([
        f"compiled runtime: {result['network']} "
        f"(batch {result['batch']}, res {result['resolution']}, "
        f"best of {result['repeats']})",
        f"  eager       : {result['eager_ms']:.2f} ms",
        f"  exact plan  : {result['exact_plan_ms']:.2f} ms  "
        f"({result['exact_speedup']:.2f}x, bit-identical="
        f"{result['exact_bit_identical']})",
        f"  folded plan : {result['plan_ms']:.2f} ms  "
        f"({result['speedup']:.2f}x, max|err|={result['folded_max_abs_err']:.2e})",
        f"  int8 plan   : {result['int8_plan_ms']:.2f} ms  "
        f"({result['int8_speedup']:.2f}x eager, "
        f"{result['int8_vs_folded']:.2f}x folded; "
        f"{result['int8_ops']} int8 ops, "
        f"{result['int8_fallbacks']} fallbacks — accuracy gated by "
        f"bench_quantize.py)",
        f"  fusion      : {result['nodes']} nodes -> {result['ops']} ops "
        f"({result['folded_bn']} BN folded, "
        f"{result['fused_activations']} activations fused)",
        f"  arena       : {result['arena_bytes'] / 1024:.0f} KiB vs "
        f"{result['naive_bytes'] / 1024:.0f} KiB naive "
        f"({result['arena_saving'] * 100:.1f}% saved); "
        f"compile {result['compile_ms']:.1f} ms",
    ])


def write_json(result: dict) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_compile.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


# ------------------------------------------------------------------ pytest

def test_compiled_runtime_speedup(benchmark, save):
    """The acceptance benchmark: >=2x over eager on V3-Small batch 8."""
    net = build_model("mobilenet_v3_small", num_classes=10, resolution=32)
    executor = GraphExecutor(net, seed=0)
    executor.eval()
    shape = (8,) + tuple(net.input_shape)
    x = np.random.default_rng(1).standard_normal(shape).astype(np.float32)
    plan = compile_executor(executor, shape)

    out = benchmark(plan.run, x)
    assert out.shape == (8, 10)

    result = run_compile_benchmark(repeats=5)
    write_json(result)
    save("BENCH_compile", render(result))
    assert result["exact_bit_identical"]
    assert result["folded_max_abs_err"] <= FOLD_TOLERANCE
    assert result["speedup"] >= 2.0
    benchmark.extra_info.update(
        speedup=result["speedup"], eager_ms=result["eager_ms"],
        plan_ms=result["plan_ms"],
    )


def test_eager_forward_baseline(benchmark):
    """The eager number the speedup is measured against."""
    net = build_model("mobilenet_v3_small", num_classes=10, resolution=32)
    executor = GraphExecutor(net, seed=0)
    executor.eval()
    x = Tensor(np.random.default_rng(1).standard_normal(
        (8,) + tuple(net.input_shape)).astype(np.float32))
    out = benchmark(executor, x)
    assert out.shape == (8, 10)


# ------------------------------------------------------------------- smoke

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compiled-runtime benchmark / smoke gate")
    parser.add_argument("--network", default="mobilenet_v3_small")
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--resolution", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="fast gate: fewer repeats, relaxed speedup floor")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail under this folded-plan speedup "
                             "(default: 2.0, or 1.0 with --smoke)")
    parser.add_argument("--out", default=None,
                        help="JSON output path "
                             "(default benchmarks/results/BENCH_compile.json)")
    args = parser.parse_args(argv)
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 1.0 if args.smoke else 2.0
    repeats = 3 if args.smoke and args.repeats == 5 else args.repeats

    result = run_compile_benchmark(args.network, args.batch, args.resolution,
                                   repeats, args.seed)
    print(render(result))
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
    else:
        path = write_json(result)
    print(f"wrote {path}")

    problems = []
    if not result["exact_bit_identical"]:
        problems.append("exact plan is not bit-identical to eager")
    if result["folded_max_abs_err"] > FOLD_TOLERANCE:
        problems.append(
            f"folded error {result['folded_max_abs_err']:.2e} > {FOLD_TOLERANCE}")
    if result["speedup"] < min_speedup:
        problems.append(
            f"speedup {result['speedup']:.2f}x < required {min_speedup:.2f}x")
    if problems:
        print("compile benchmark FAILED: " + "; ".join(problems),
              file=sys.stderr)
        return 1
    print(f"compile benchmark ok: {result['speedup']:.2f}x folded, "
          f"{result['exact_speedup']:.2f}x exact, bit-identical exact plan")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
