"""E1 — Table I: MACs and parameters for all 25 network variants.

Regenerates the "MACs (millions)" and "Params (millions)" columns of
Table I and prints them next to the paper's values.  These are analytic
counts, so the agreement should be tight (a few percent, down to counting
conventions).
"""

from repro.analysis import format_table, table1


def _rows():
    out = []
    for row in table1():
        paper = row.paper
        out.append(
            [
                row.network,
                row.variant or "baseline",
                f"{row.macs_millions:.0f}",
                f"{paper.macs_millions:.0f}" if paper else "-",
                f"{row.params_millions:.2f}",
                f"{paper.params_millions:.2f}" if paper else "-",
            ]
        )
    return out


def test_table1_counts(benchmark, save):
    rows = benchmark(_rows)
    text = format_table(
        ["network", "variant", "MACs(M)", "paper", "Params(M)", "paper"],
        rows,
        title="Table I — operation and parameter counts (measured vs paper)",
    )
    save("table1_counts", text)
    assert len(rows) == 25
