"""E10 — §I motivation: MACs don't predict systolic latency.

Paper: "MobileNet-V2 has 12× fewer computations than ResNet-50, but runs
only 1.3× faster on a systolic array with MACs arranged in a 32×32 array."
"""

from repro.analysis import (
    MOTIVATION_MAC_RATIO,
    MOTIVATION_SPEEDUP,
    format_table,
)
from repro.ir import macs_millions
from repro.models import build_model
from repro.systolic import ArrayConfig, estimate_network


def _measure():
    array = ArrayConfig.square(32)
    v2 = build_model("mobilenet_v2")
    r50 = build_model("resnet50")
    return {
        "mac_ratio": macs_millions(r50) / macs_millions(v2),
        "latency_ratio": (
            estimate_network(r50, array).total_cycles
            / estimate_network(v2, array).total_cycles
        ),
    }


def test_motivation(benchmark, save):
    result = benchmark(_measure)
    rows = [
        ["ResNet-50 / MobileNet-V2 MACs", f"{result['mac_ratio']:.1f}x",
         f"{MOTIVATION_MAC_RATIO:.0f}x"],
        ["ResNet-50 / MobileNet-V2 latency @32x32", f"{result['latency_ratio']:.1f}x",
         f"{MOTIVATION_SPEEDUP:.1f}x"],
    ]
    text = format_table(
        ["ratio", "measured", "paper"],
        rows,
        title="SI motivation — incommensurate scaling of depthwise networks",
    )
    save("motivation", text)

    # The latency advantage must be far smaller than the MAC advantage.
    assert result["mac_ratio"] > 10
    assert result["latency_ratio"] < result["mac_ratio"] / 3
