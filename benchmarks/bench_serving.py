"""Serving subsystem behaviour (extension — not a paper artifact).

Two standard serving experiments over `repro.serve`:

* closed loop on the ``analytical`` engine — sustained traffic from
  concurrent virtual users, isolating *scheduler* behaviour (admission,
  batching, SLO accounting) from forward-pass compute: the dynamic
  batcher should coalesce compatible requests and nothing should shed;
* open loop on the ``graph`` engine over a tiny admission queue —
  deliberate overload against real service times: the server must
  degrade by shedding with retry-after hints, not by queueing without
  bound.
"""

import asyncio

from repro.analysis import format_table
from repro.serve import (
    InferenceServer,
    ModelKey,
    ServeConfig,
    WorkloadSpec,
    run_workload,
)

KEYS = [
    ModelKey("mobilenet_v3_small", variant="half", resolution=32),
    ModelKey("mobilenet_v1", resolution=32),
]


def _run(config: ServeConfig, spec: WorkloadSpec):
    async def main():
        async with InferenceServer(config) as server:
            return await run_workload(server.submit, spec)

    return asyncio.run(main())


def _report_rows(report):
    hist = ", ".join(f"{k}:{v}" for k, v in report.batch_histogram.items())
    return [
        ["requests", f"{report.total}", ""],
        ["ok / shed / errors",
         f"{report.ok} / {report.shed} / {report.errors}", ""],
        ["throughput", f"{report.throughput_rps:.1f} req/s", ""],
        ["p50 / p95 / p99",
         f"{report.p50_ms:.1f} / {report.p95_ms:.1f} / "
         f"{report.p99_ms:.1f} ms", ""],
        ["mean batch", f"{report.mean_batch:.2f}", hist],
        ["shed rate", f"{report.shed_rate * 100:.1f}%", ""],
        ["SLO violations", f"{report.slo_violations}",
         f"{report.slo_violation_rate * 100:.1f}% of ok"],
        ["simulated/batch", f"{report.mean_simulated_ms:.3f} ms",
         "systolic cost model"],
    ]


def test_serving_closed_loop(benchmark, save):
    config = ServeConfig(engine="analytical", preload=KEYS, workers=2,
                         max_batch=8, batch_timeout_ms=2.0, slo_ms=1000.0)
    spec = WorkloadSpec(keys=KEYS, requests=400, mode="closed",
                        clients=16, seed=0)
    report = benchmark(lambda: _run(config, spec))

    text = format_table(
        ["metric", "value", "detail"],
        _report_rows(report),
        title="Serving — closed loop, 16 clients, 2 models, analytical engine",
    )
    save("serving_closed_loop", text)

    assert report.errors == 0
    assert report.ok == report.total
    assert report.mean_batch > 1.0  # dynamic batching actually engaged
    assert report.p99_ms >= report.p50_ms > 0


def test_serving_overload_sheds(benchmark, save):
    # The graph engine's real service time (~10-20 ms/forward) against a
    # 2000 req/s arrival process: a genuine overload, unlike the
    # analytical engine which drains faster than arrivals can queue.
    config = ServeConfig(engine="graph", preload=[KEYS[0]], workers=1,
                         max_batch=2, max_queue=8, batch_timeout_ms=0.0,
                         slo_ms=1000.0)
    spec = WorkloadSpec(keys=[KEYS[0]], requests=300, mode="open",
                        rate=2000.0, seed=1)
    report = benchmark(lambda: _run(config, spec))

    text = format_table(
        ["metric", "value", "detail"],
        _report_rows(report),
        title="Serving — open loop at 2000 req/s over an 8-slot queue "
              "(graph engine)",
    )
    save("serving_overload", text)

    assert report.errors == 0
    assert report.shed > 0            # overload must shed, not queue forever
    assert report.ok > 0              # ...while still serving
    assert 0.0 < report.shed_rate < 1.0
