"""E8 — §V-B.5: area/power overhead of the broadcast dataflow.

Paper (Bluespec + Synopsys DC, NanGate 45 nm, 32×32 array): 4.35 % area,
2.25 % power.  Our structural cell-inventory model reproduces the ratios.
"""

from repro.analysis import AREA_OVERHEAD, POWER_OVERHEAD, format_table
from repro.hw import broadcast_overhead


def test_overhead(benchmark, save):
    report = benchmark(lambda: broadcast_overhead(32))
    rows = [
        ["area", f"{report.area_overhead * 100:.2f}%", f"{AREA_OVERHEAD * 100:.2f}%"],
        ["power", f"{report.power_overhead * 100:.2f}%", f"{POWER_OVERHEAD * 100:.2f}%"],
        ["base area (mm^2)", f"{report.base_area_um2 / 1e6:.3f}", "-"],
        ["base power (mW)", f"{report.base_power_uw / 1e3:.1f}", "-"],
    ]
    text = format_table(
        ["metric", "measured", "paper"],
        rows,
        title="SV-B.5 — broadcast-link overhead on a 32x32 array (45 nm)",
    )
    save("overhead", text)

    assert abs(report.area_overhead - AREA_OVERHEAD) < 0.01
    assert abs(report.power_overhead - POWER_OVERHEAD) < 0.01


def test_overhead_size_sweep(benchmark, save):
    sizes = (8, 16, 32, 64, 128)
    reports = benchmark(lambda: [broadcast_overhead(s) for s in sizes])
    rows = [
        [f"{r.size}x{r.size}", f"{r.area_overhead * 100:.2f}%",
         f"{r.power_overhead * 100:.2f}%"]
        for r in reports
    ]
    text = format_table(
        ["array", "area overhead", "power overhead"],
        rows,
        title="Broadcast-link overhead vs array size (extension)",
    )
    save("overhead_sweep", text)
