"""E5 — Fig. 8(b): layer-wise speed-up of MobileNet-V2 FuSe-Full.

Paper: per-layer speed-ups range 2.48×–9.38×, with early layers (larger
input feature maps) benefiting most.
"""

from repro.analysis import LAYERWISE_SPEEDUP_RANGE, format_table, layerwise_speedups
from repro.core import FuSeVariant
from repro.models import build_model


def _blocks():
    return layerwise_speedups(build_model("mobilenet_v2"), FuSeVariant.FULL)


def test_fig8b_layerwise(benchmark, save):
    blocks = benchmark(_blocks)
    rows = [
        [
            b.block,
            f"{b.in_shape[1]}x{b.in_shape[2]}x{b.in_shape[0]}",
            f"{b.baseline_cycles:,}",
            f"{b.fuse_cycles:,}",
            f"{b.speedup:.2f}x",
        ]
        for b in blocks
    ]
    lo, hi = min(b.speedup for b in blocks), max(b.speedup for b in blocks)
    title = (
        "Fig 8(b) — layer-wise speed-up, MobileNet-V2 FuSe-Full "
        f"(measured {lo:.2f}x-{hi:.2f}x; paper {LAYERWISE_SPEEDUP_RANGE[0]}x-"
        f"{LAYERWISE_SPEEDUP_RANGE[1]}x)"
    )
    text = format_table(
        ["block", "input", "baseline cycles", "fuse cycles", "speedup"], rows, title
    )
    save("fig8b_layerwise", text)

    assert len(blocks) == 17
    assert all(b.speedup > 1 for b in blocks)
    # Early layers benefit more (paper's observation).
    assert blocks[0].speedup > blocks[-1].speedup
