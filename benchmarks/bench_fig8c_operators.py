"""E6 — Fig. 8(c): latency distribution across operator classes.

Paper: baselines are dominated by depthwise convolution; after the FuSe
transform the distribution shifts to pointwise convolution and the FuSe
operators account for a small share.

Note (recorded in EXPERIMENTS.md): the paper quotes 30–50 % depthwise
share, but its own Table I speed-ups (>4× for Full variants whose
pointwise work *doubles*) require depthwise to dominate much more than
50 % of baseline latency.  Our model reports that internally-consistent
larger share.
"""

from repro.analysis import figure_8c, format_table
from repro.ir import COMPUTE_CLASSES
from repro.models import PAPER_NETWORKS


def test_fig8c_operator_distribution(benchmark, save):
    results = benchmark(figure_8c)
    rows = []
    for name, pair in results.items():
        for which in ("baseline", "fuse"):
            dist = pair[which]
            rows.append(
                [name, which]
                + [f"{dist.share(cls) * 100:.1f}%" for cls in COMPUTE_CLASSES]
            )
    text = format_table(
        ["network", "net"] + list(COMPUTE_CLASSES),
        rows,
        title="Fig 8(c) — latency distribution by operator class",
    )
    save("fig8c_operators", text)

    for pair in results.values():
        base, fuse = pair["baseline"], pair["fuse"]
        # Depthwise dominates baselines; it disappears after the transform.
        assert base.share("depthwise") > base.share("pointwise")
        assert fuse.share("depthwise") == 0.0
        # The transformed network is dominated by pointwise, not FuSe ops.
        assert fuse.share("pointwise") > fuse.share("fuse")
