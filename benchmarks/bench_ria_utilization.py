"""E9 — §III claims: RIA classification and the single-column bound.

Regenerates the formal results of the paper's analysis section:

* matmul / 1D conv / im2col'd conv / pointwise conv are RIAs,
* 2D convolution (and hence depthwise convolution) is not,
* depthwise layers mapped via im2col never exceed 1/cols utilization,
  while FuSe layers do.
"""

from repro.analysis import format_table
from repro.core import FuSeVariant, to_fuseconv
from repro.models import build_model
from repro.ria import ALGORITHMS, check_ria
from repro.systolic import ArrayConfig, depthwise_utilization_bound, utilization_report


def test_ria_classification(benchmark, save):
    results = benchmark(
        lambda: {name: check_ria(builder()) for name, builder in ALGORITHMS.items()}
    )
    rows = [
        [name, "RIA (systolic-capable)" if r.is_ria else "NOT an RIA",
         str(len(r.violations))]
        for name, r in results.items()
    ]
    text = format_table(
        ["algorithm", "classification", "violations"],
        rows,
        title="SIII — RIA classification of the paper's algorithms",
    )
    save("ria_classification", text)

    assert results["matmul"].is_ria
    assert results["conv1d"].is_ria
    assert not results["conv2d_direct"].is_ria
    assert not results["conv2d_refactored"].is_ria


def test_utilization_bound(benchmark, save):
    array = ArrayConfig.square(64)

    def measure():
        net = build_model("mobilenet_v1")
        base = utilization_report(net, array)
        fuse = utilization_report(to_fuseconv(net, FuSeVariant.HALF, array), array)
        return base, fuse

    base, fuse = benchmark(measure)
    bound = depthwise_utilization_bound(array)
    rows = [
        ["depthwise class (baseline)", f"{base.by_class()['depthwise'] * 100:.2f}%"],
        ["single-column bound 1/cols", f"{bound * 100:.2f}%"],
        ["fuse class (transformed)", f"{fuse.by_class()['fuse'] * 100:.2f}%"],
        ["whole net (baseline)", f"{base.overall * 100:.2f}%"],
        ["whole net (FuSe-Half)", f"{fuse.overall * 100:.2f}%"],
    ]
    text = format_table(
        ["quantity", "PE utilization"],
        rows,
        title="SIII-B — depthwise single-column bound vs FuSe utilization (64x64)",
    )
    save("ria_utilization", text)

    assert base.by_class()["depthwise"] <= bound + 1e-12
    assert fuse.by_class()["fuse"] > base.by_class()["depthwise"]
    assert fuse.overall > base.overall
