"""Sparsity + column combining: speedup and accuracy gates (docs/performance.md).

The acceptance claims of the sparse pass pipeline on MobileNet-V3-Small:

1. **Analytical speedup** — at 75 % magnitude sparsity with column
   combining (γ=8), the packed schedule is >=1.5x faster than the dense
   schedule on a 32×32 broadcast array.
2. **Accuracy** — after gradual pruning with a masked fine-tune (prune
   50 % -> fine-tune -> prune 75 % -> fine-tune, masks re-applied after
   every optimizer step, BatchNorm running stats recalibrated at the
   end), the sparse compiled plan's top-1 on the held-out synthetic
   split drops <=1pp against the folded dense plan.  One-shot 75 %
   pruning collapses this model to chance and plain fine-tuning cannot
   climb back inside the budget; the gradual schedule recovers fully.
   The gated plan packs with the ``"disjoint"`` conflict policy: under
   ``"prune"`` every fresh compile performs new destructive merges (the
   greedy prefers the cheapest positive-cost join over opening a
   column), so no fine-tuned weight set survives recompilation —
   disjoint packing never mutates weights and the plan equals the
   pruned eager network by construction.  The prune-policy cycles are
   reported alongside as the speed-at-any-cost bound.
3. **γ=1 identity** — the identity packing's analytical cycles are
   within 1 % of the dense folded schedule (they should be exactly
   equal: γ=1 degrades to the dense fold schedule by construction).

Accuracy needs a *trained* model to mean anything (same argument as
``bench_quantize.py``), so the harness trains V3-Small on the repo's
synthetic task, prunes it with the pass pipeline, fine-tunes under the
masks, and compares plan accuracies on the held-out split.

Also runnable directly as the ``make sparsity-smoke`` gate::

    python benchmarks/bench_sparsity.py --smoke

which writes ``benchmarks/results/BENCH_sparsity.json`` and exits
non-zero if any gate fails.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.models import build_model
from repro.nn import (
    CompileConfig,
    GraphExecutor,
    RMSprop,
    SyntheticSpec,
    Tensor,
    TrainConfig,
    compile_executor,
    make_synthetic,
    train,
)
from repro.nn import functional as F
from repro.nn.passes import Pipeline, apply_pruning
from repro.systolic import ArrayConfig, estimate_network

RESULTS_DIR = Path(__file__).parent / "results"

#: Acceptance gates (ISSUE 9): sparse vs dense on V3-Small.
SPARSITY = 0.75
GAMMA = 8
MIN_ANALYTICAL_SPEEDUP = 1.5
MAX_ACCURACY_DROP = 0.01
MAX_GAMMA1_DRIFT = 0.01

#: Same recipe as bench_quantize.py: ten epochs land the eager model
#: around 95 % — high enough that a pruning regression is visible.
SPEC = SyntheticSpec(
    num_classes=6,
    image_size=32,
    noise=0.8,
    max_shift=2,
    train_per_class=40,
    test_per_class=48,
)
CONFIG = TrainConfig(epochs=10, batch_size=24, lr=0.01, seed=0)
#: Gradual pruning schedule: (sparsity target, fine-tune epochs, lr).
PRUNE_STAGES = ((0.5, 3, 0.003), (SPARSITY, 10, 0.002))
FINETUNE_LR_DECAY = 0.92
PRUNE_SCOPE = "global"   # pooled threshold: spares the sensitive layers
BN_RECAL_PASSES = 2      # settle running stats after the masked updates
#: "disjoint" so compiles are non-destructive (see module docstring).
PACK_CONFLICT = "disjoint"
DATA_SEED = 3
MODEL_SEED = 1
BATCH = 8
ARRAY = ArrayConfig(32, 32, broadcast=True)


def _best_ms(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times) * 1000.0


def _plan_accuracy(plan, data) -> float:
    correct = 0
    for images, labels in data.batches(BATCH, shuffle=False):
        if len(images) != BATCH:
            continue  # plans are compiled for one batch shape
        logits = plan.run(images.astype(np.float32))
        correct += int((logits.argmax(axis=1) == labels).sum())
    usable = (len(data) // BATCH) * BATCH
    return correct / usable


def _masked_finetune(executor, masks, train_data, epochs: int,
                     lr: float, seed: int = 0) -> None:
    """Fine-tune under fixed keep masks (re-applied after every step).

    Optimizer momentum would otherwise regrow the pruned weights;
    clamping after each step keeps the zero pattern — and therefore the
    packing's column supports — exact.
    """
    shaped = []
    for name, mask in masks.items():
        module = executor.module_for(name)
        shaped.append((module,
                       np.asarray(mask, bool).reshape(module.weight.data.shape)))
    rng = np.random.default_rng(seed)
    optimizer = RMSprop(executor.parameters(), lr=lr, alpha=0.9,
                        momentum=0.9, weight_decay=0.0)
    executor.train()
    for _ in range(epochs):
        for images, labels in train_data.batches(CONFIG.batch_size, rng=rng):
            optimizer.zero_grad()
            logits = executor(Tensor(images))
            loss = F.cross_entropy(logits, labels)
            loss.backward()
            optimizer.step()
            for module, mask in shaped:
                module.weight.data *= mask
        optimizer.lr *= FINETUNE_LR_DECAY
    executor.eval()


def _bn_recalibrate(executor, train_data) -> None:
    """Refresh BatchNorm running stats on the pruned, fine-tuned net."""
    executor.train()
    for _ in range(BN_RECAL_PASSES):
        for images, _ in train_data.batches(CONFIG.batch_size, shuffle=False):
            executor(Tensor(images))
    executor.eval()


def run_sparsity_benchmark(repeats: int = 30, verbose: bool = False) -> dict:
    """Train, prune, fine-tune, and measure all three sparse gates."""
    train_data, test_data = make_synthetic(SPEC, seed=DATA_SEED)
    net = build_model("mobilenet_v3_small", num_classes=SPEC.num_classes,
                      resolution=SPEC.image_size)
    executor = GraphExecutor(net, seed=MODEL_SEED)
    history = train(executor, train_data, test_data, CONFIG, verbose=verbose)
    executor.eval()

    shape = (BATCH,) + tuple(net.input_shape)
    folded = compile_executor(executor, shape)
    folded_acc = _plan_accuracy(folded, test_data)

    # Gradual pruning: each stage prunes with the pass pipeline (global
    # magnitude threshold), bakes the zeros into the executor, then
    # fine-tunes under the masks.  One-shot 75 % pruning collapses this
    # model to chance; the staged schedule recovers fully.
    removed = 0
    pruned_acc_raw = folded_acc
    for stage_sparsity, epochs, lr in PRUNE_STAGES:
        config = CompileConfig.sparse(sparsity=stage_sparsity, gamma=GAMMA,
                                      conflict=PACK_CONFLICT,
                                      scope=PRUNE_SCOPE)
        tf = Pipeline.from_config(config).run(executor, net, shape, config)
        removed += apply_pruning(executor, tf)
        if stage_sparsity == SPARSITY:
            pruned_acc_raw = _plan_accuracy(compile_executor(executor, shape),
                                            test_data)
        _masked_finetune(executor, tf.masks, train_data,
                         epochs=epochs, lr=lr)
    _bn_recalibrate(executor, train_data)

    # Disjoint packing never mutates weights, so this compile's plan is
    # the fine-tuned eager network exactly (same masks, same values).
    config = CompileConfig.sparse(sparsity=SPARSITY, gamma=GAMMA,
                                  conflict=PACK_CONFLICT, scope=PRUNE_SCOPE)
    sparse = compile_executor(executor, shape, config)
    sparse_acc = _plan_accuracy(sparse, test_data)
    gamma1 = compile_executor(
        executor, shape,
        CompileConfig.sparse(sparsity=SPARSITY, gamma=1,
                             conflict=PACK_CONFLICT, scope=PRUNE_SCOPE))
    prune_policy = compile_executor(
        executor, shape,
        CompileConfig.sparse(sparsity=SPARSITY, gamma=GAMMA,
                             scope=PRUNE_SCOPE))

    # Analytical schedule comparison on the broadcast array.
    dense_latency = estimate_network(net, ARRAY)
    packed_latency = estimate_network(net, ARRAY, packing=sparse.packing)
    gamma1_latency = estimate_network(net, ARRAY, packing=gamma1.packing)
    prune_latency = estimate_network(net, ARRAY,
                                     packing=prune_policy.packing)
    speedup = dense_latency.total_cycles / packed_latency.total_cycles
    gamma1_drift = abs(gamma1_latency.total_cycles
                       - dense_latency.total_cycles) \
        / dense_latency.total_cycles

    x = next(test_data.batches(BATCH, shuffle=False))[0].astype(np.float32)
    folded_ms = _best_ms(lambda: folded.run(x), repeats)
    sparse_ms = _best_ms(lambda: sparse.run(x), repeats)

    s = sparse.stats
    return {
        "network": "mobilenet_v3_small",
        "batch": BATCH,
        "resolution": SPEC.image_size,
        "repeats": repeats,
        "array": f"{ARRAY.rows}x{ARRAY.cols}",
        "train_epochs": CONFIG.epochs,
        "prune_stages": [list(stage) for stage in PRUNE_STAGES],
        "prune_scope": PRUNE_SCOPE,
        "pack_conflict": PACK_CONFLICT,
        "finetune_epochs": sum(stage[1] for stage in PRUNE_STAGES),
        "eager_test_accuracy": history.final_test_accuracy,
        "sparsity_target": SPARSITY,
        "gamma": GAMMA,
        "plan_sparsity": s.sparsity,
        "params_removed": removed,
        "packed_columns": s.packed_columns,
        "columns_combined": s.columns_combined,
        "dense_cycles": dense_latency.total_cycles,
        "packed_cycles": packed_latency.total_cycles,
        "packed_cycles_prune_policy": prune_latency.total_cycles,
        "gamma1_cycles": gamma1_latency.total_cycles,
        "analytical_speedup": speedup,
        "gamma1_drift": gamma1_drift,
        "folded_ms": folded_ms,
        "sparse_ms": sparse_ms,
        "folded_accuracy": folded_acc,
        "pruned_accuracy_before_finetune": pruned_acc_raw,
        "sparse_accuracy": sparse_acc,
        "accuracy_drop": folded_acc - sparse_acc,
        "min_speedup_gate": MIN_ANALYTICAL_SPEEDUP,
        "max_accuracy_drop_gate": MAX_ACCURACY_DROP,
        "max_gamma1_drift_gate": MAX_GAMMA1_DRIFT,
    }


def check(result: dict) -> list:
    """The gates: failures as human-readable strings (empty = pass)."""
    problems = []
    if result["analytical_speedup"] < MIN_ANALYTICAL_SPEEDUP:
        problems.append(
            f"analytical packed speedup {result['analytical_speedup']:.2f}x "
            f"< required {MIN_ANALYTICAL_SPEEDUP:.2f}x at "
            f"{result['sparsity_target']:.0%}/γ={result['gamma']}")
    if result["accuracy_drop"] > MAX_ACCURACY_DROP:
        problems.append(
            f"accuracy drop {result['accuracy_drop'] * 100:.2f}pp > "
            f"allowed {MAX_ACCURACY_DROP * 100:.0f}pp after fine-tune")
    if result["gamma1_drift"] > MAX_GAMMA1_DRIFT:
        problems.append(
            f"γ=1 identity packing drifts {result['gamma1_drift'] * 100:.2f}% "
            f"from the dense schedule (allowed "
            f"{MAX_GAMMA1_DRIFT * 100:.0f}%)")
    if result["packed_columns"] == 0:
        problems.append("packing produced no packed columns")
    return problems


def render(result: dict) -> str:
    return "\n".join([
        f"sparsity + column combining: {result['network']} "
        f"(batch {result['batch']}, res {result['resolution']}, "
        f"array {result['array']})",
        f"  trained     : {result['train_epochs']} epochs, eager test acc "
        f"{result['eager_test_accuracy'] * 100:.1f}%",
        f"  pruned      : target {result['sparsity_target']:.0%}, achieved "
        f"{result['plan_sparsity'] * 100:.1f}% "
        f"({result['params_removed']} params removed)",
        f"  packed      : {result['packed_columns']} physical columns "
        f"({result['columns_combined']} combined away, γ={result['gamma']}, "
        f"{result['pack_conflict']} conflicts)",
        f"  analytical  : dense {result['dense_cycles']} -> packed "
        f"{result['packed_cycles']} cycles "
        f"({result['analytical_speedup']:.2f}x); prune-policy bound "
        f"{result['packed_cycles_prune_policy']}; γ=1 "
        f"{result['gamma1_cycles']} "
        f"(drift {result['gamma1_drift'] * 100:.2f}%)",
        f"  folded plan : {result['folded_ms']:.2f} ms, "
        f"top-1 {result['folded_accuracy'] * 100:.2f}%",
        f"  sparse plan : {result['sparse_ms']:.2f} ms, "
        f"top-1 {result['sparse_accuracy'] * 100:.2f}%  "
        f"(drop {result['accuracy_drop'] * 100:+.2f}pp; "
        f"{result['pruned_accuracy_before_finetune'] * 100:.2f}% at the "
        f"final prune, before its {result['finetune_epochs']}-epoch "
        f"gradual fine-tune)",
        f"  gates       : >={result['min_speedup_gate']}x analytical, "
        f"<={result['max_accuracy_drop_gate'] * 100:.0f}pp drop, "
        f"γ=1 within {result['max_gamma1_drift_gate'] * 100:.0f}%",
    ])


def write_json(result: dict) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_sparsity.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


# ------------------------------------------------------------------ pytest

def test_sparsity_speed_and_accuracy(benchmark, save):
    """The acceptance benchmark: all three sparse gates on V3-Small."""
    result = benchmark.pedantic(run_sparsity_benchmark, rounds=1, iterations=1)
    write_json(result)
    save("BENCH_sparsity", render(result))
    problems = check(result)
    assert not problems, "; ".join(problems)
    benchmark.extra_info.update(
        analytical_speedup=result["analytical_speedup"],
        accuracy_drop=result["accuracy_drop"],
        packed_columns=result["packed_columns"],
    )


# ------------------------------------------------------------------- smoke

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="sparsity + column combining benchmark / smoke gate")
    parser.add_argument("--repeats", type=int, default=30)
    parser.add_argument("--smoke", action="store_true",
                        help="fast gate: fewer latency repeats")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-epoch training progress")
    parser.add_argument("--out", default=None,
                        help="JSON output path "
                             "(default benchmarks/results/BENCH_sparsity.json)")
    args = parser.parse_args(argv)
    repeats = 10 if args.smoke and args.repeats == 30 else args.repeats

    result = run_sparsity_benchmark(repeats, verbose=args.verbose)
    print(render(result))
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
    else:
        path = write_json(result)
    print(f"wrote {path}")

    problems = check(result)
    if problems:
        print("sparsity benchmark FAILED: " + "; ".join(problems),
              file=sys.stderr)
        return 1
    print(f"sparsity benchmark ok: {result['analytical_speedup']:.2f}x "
          f"analytical, {result['accuracy_drop'] * 100:+.2f}pp top-1, "
          f"γ=1 drift {result['gamma1_drift'] * 100:.2f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
