"""Extension — batching ablation: does FuSe's advantage survive batching?

Batching amortizes the fold fill/drain overheads that hurt low-reuse
operators, so one could hope large batches rescue the depthwise baseline.
They do not: the single-column mapping wastes *columns*, which batching
(more M rows) cannot fill.  The FuSe speed-up is essentially batch-
independent — relevant for cloud deployments where batch > 1 is the norm.
"""

from repro.analysis import format_table
from repro.core import FuSeVariant, to_fuseconv
from repro.models import build_model
from repro.systolic import PAPER_ARRAY, estimate_network

BATCHES = (1, 2, 4, 8, 16)


def _sweep():
    baseline = build_model("mobilenet_v2")
    fuse = to_fuseconv(baseline, FuSeVariant.HALF, PAPER_ARRAY)
    rows = []
    for batch in BATCHES:
        base = estimate_network(baseline, PAPER_ARRAY, batch=batch).total_cycles
        fast = estimate_network(fuse, PAPER_ARRAY, batch=batch).total_cycles
        rows.append((batch, base, fast, base / fast))
    return rows


def test_batching_ablation(benchmark, save):
    rows = benchmark(_sweep)
    text = format_table(
        ["batch", "baseline cycles", "FuSe-Half cycles", "speedup"],
        [[b, f"{base:,}", f"{fast:,}", f"{s:.2f}x"] for b, base, fast, s in rows],
        title="Extension — FuSe-Half speed-up vs batch size, MobileNet-V2 @64x64",
    )
    save("ablation_batching", text)

    speedups = [s for _, _, _, s in rows]
    # The advantage neither collapses nor explodes with batching.
    assert min(speedups) > 0.7 * max(speedups)
    assert all(s > 3 for s in speedups)
    # Per-image latency improves monotonically with batch for both nets.
    per_image_base = [base / b for b, base, _, _ in rows]
    assert per_image_base == sorted(per_image_base, reverse=True)
