"""Gray-failure resilience: the hedging drill and its ablation
(docs/robustness.md).

Two measurements, all over real loopback TCP on the analytical engine
(the routing path is the thing under test; per-request compute is the
cost model's):

1. **gray drill** — :func:`repro.fleet.run_gray_chaos`: one replica's
   forward hop stalled ~20x its healthy p50 under live traffic, then a
   warm-gated scale-up.  Every gray bound must hold: fleet p99 within
   1.5x of the healthy baseline, zero duplicate responses, zero
   unhandled errors, the victim detected SLOW, honest hedge accounting
   (fired == wins + losses), identical same-seed replay fingerprint,
   and zero cold builds/compiles after the warm-up gate opened.
2. **hedging ablation** — the same stall scenario twice, hedging off
   then on, same seed and stall.  With hedging off the tail eats the
   stall until slow-detection reroutes the lane; with hedging on a
   backup fires after the clamped-p95 delay and the stall never reaches
   the client tail.

The ablation gate is timer-honest rather than core-count-bound: the
injected stall is an asyncio sleep, so the hedged win does not depend
on host parallelism — but the *unhedged* ceiling does depend on the
stall dwarfing scheduler noise, so the gate arms only when the measured
stall is at least ``MIN_STALL_MS``.  The JSON records which gate ran
(``ablation_gate_armed``).

Also runnable directly as the ``make gray-smoke`` gate::

    python benchmarks/bench_hedging.py --smoke

which writes ``benchmarks/results/BENCH_gray.json`` and exits non-zero
if any gate fails.
"""

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

from repro.faults import FaultPlan, FaultSpec, clear_plan, install_plan
from repro.fleet import FleetRouter, FleetSupervisor, RouterConfig, run_gray_chaos
from repro.obs import configure_logging
from repro.obs.stats import percentile
from repro.serve import (
    ModelKey,
    RemoteClient,
    ServeConfig,
    WorkloadSpec,
    run_workload,
)

RESULTS_DIR = Path(__file__).parent / "results"

KEY = ModelKey("mobilenet_v3_small", resolution=32)
REPLICAS = 3
SEED = 11

#: The drill's tail bound (shared with ``repro loadgen --gray``).
P99_FACTOR = 1.5
#: Ablation gate: hedging must beat the unhedged tail by this much ...
MIN_ABLATION_RATIO = 1.1
#: ... but only when the stall dwarfs scheduler noise.
MIN_STALL_MS = 30.0


def _config() -> ServeConfig:
    return ServeConfig(engine="analytical", preload=[KEY], workers=2,
                       slo_ms=30000.0, compile=False, telemetry=False)


def _spec() -> WorkloadSpec:
    return WorkloadSpec(keys=[KEY], requests=140, clients=4, seed=SEED,
                        mode="closed", slo_ms=30000.0)


async def _run_drill() -> dict:
    report = await run_gray_chaos(_spec(), replicas=REPLICAS,
                                  config=_config(), p99_factor=P99_FACTOR)
    failures = report.check()
    return {
        "replicas": report.replicas,
        "victim": report.victim,
        "stall_ms": report.stall_ms,
        "stalls_fired": report.stalls_fired,
        "baseline_p99_ms": report.baseline_wall_p99_ms,
        "gray_p99_ms": report.gray_wall_p99_ms,
        "p99_bound_ms": report.p99_bound_ms,
        "hedges": report.hedges,
        "hedge_wins": report.hedge_wins,
        "hedge_losses": report.hedge_losses,
        "duplicates": report.duplicates,
        "slow_detections": report.slow_detections,
        "fingerprint_holds": report.replay_digest == report.requests_digest,
        "scale_up": {
            "replica": report.scale_up_replica,
            "starting_served": report.starting_served,
            "warmed_lanes": report.warmed_lanes,
            "cold_builds": report.cold_builds,
            "cold_plans": report.cold_plans,
            "post_scale_ok": report.post_scale_ok,
        },
        "failures": failures,
        "ok": not failures,
    }


async def _stalled_run(hedge: bool, stall_ms: float) -> dict:
    """One workload through a fresh fleet with the lane's primary stalled."""
    config = _config()
    supervisor = FleetSupervisor(base_config=config, mode="inproc")
    endpoints = [await supervisor.spawn() for _ in range(REPLICAS)]
    router = FleetRouter(endpoints, RouterConfig(
        seed=SEED, probe_interval_s=0.05, slow_windows=2,
        hedge=hedge, hedge_rate_cap=1.0, hedge_min_samples=16,
    ))
    await router.start()
    lane = FleetRouter.lane(KEY.canonical(), False)
    victim = router.ring.lookup(lane)
    install_plan(FaultPlan(seed=SEED, faults=[
        FaultSpec(point="fleet.forward", kind="stall", probability=1.0,
                  max_fires=None, after=24, delay_ms=stall_ms, tag=victim),
    ]))
    client = RemoteClient("127.0.0.1", router.port, timeout_s=30.0, seed=SEED)

    # Wall latency at the client, not the replicas' total_ms — the stalled
    # hop happens in the router before admission, so server-side clocks
    # cannot see it (which is exactly why the drill measures at the wall).
    wall: list = []

    async def timed_submit(request):
        t0 = time.perf_counter()
        response = await client.submit(request)
        wall.append((time.perf_counter() - t0) * 1000.0)
        return response

    try:
        await client.connect()
        report = await run_workload(timed_submit, _spec())
    finally:
        clear_plan()
        await client.close()
        await router.stop()
        await supervisor.stop()
    wall.sort()
    return {"hedge": hedge, "p99_ms": percentile(wall, 99.0),
            "p50_ms": percentile(wall, 50.0),
            "errors": report.errors, "ok": report.ok}


def run() -> dict:
    cores = os.cpu_count() or 1
    drill = asyncio.run(_run_drill())

    stall_ms = drill["stall_ms"]
    unhedged = asyncio.run(_stalled_run(hedge=False, stall_ms=stall_ms))
    hedged = asyncio.run(_stalled_run(hedge=True, stall_ms=stall_ms))
    ratio = (unhedged["p99_ms"] / hedged["p99_ms"]
             if hedged["p99_ms"] > 0 else 0.0)
    ablation_armed = stall_ms >= MIN_STALL_MS

    gates = {
        "gray_bounds": drill["ok"],
        "no_errors": (drill["failures"] == [] and unhedged["errors"] == 0
                      and hedged["errors"] == 0),
        "hedge_accounting": (drill["hedges"] > 0 and drill["hedges"]
                             == drill["hedge_wins"] + drill["hedge_losses"]),
        "exactly_once": drill["duplicates"] == 0,
        "warm_gate": (drill["scale_up"]["starting_served"] == 0
                      and drill["scale_up"]["cold_builds"] == 0
                      and drill["scale_up"]["cold_plans"] == 0),
    }
    if ablation_armed:
        gates["hedge_benefit"] = ratio >= MIN_ABLATION_RATIO
    else:
        gates["hedge_no_harm"] = hedged["p99_ms"] <= unhedged["p99_ms"] * 1.25

    return {
        "bench": "gray",
        "cores": cores,
        "ablation_gate_armed": ablation_armed,
        "drill": drill,
        "ablation": {"unhedged": unhedged, "hedged": hedged,
                     "p99_ratio": ratio},
        "gates": gates,
        "ok": all(gates.values()),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="gate the gray-failure bounds and write "
                             "BENCH_gray.json")
    parser.add_argument("--out", type=Path,
                        default=RESULTS_DIR / "BENCH_gray.json")
    args = parser.parse_args()

    # The drill logs every hedge and SLOW transition; that is the drill
    # working, not something a bench reader needs line by line.
    configure_logging(quiet=True)
    result = run()

    drill = result["drill"]
    ablation = result["ablation"]
    print(f"gray bench ({result['cores']} cores, ablation gate "
          f"{'armed' if result['ablation_gate_armed'] else 'disarmed'}):")
    print(f"  drill       : {drill['victim']} stalled "
          f"{drill['stall_ms']:.0f} ms/hop ({drill['stalls_fired']} stalls), "
          f"p99 {drill['gray_p99_ms']:.1f} ms vs healthy "
          f"{drill['baseline_p99_ms']:.1f} ms (bound "
          f"{drill['p99_bound_ms']:.1f})")
    print(f"  hedging     : {drill['hedges']} fired = {drill['hedge_wins']} "
          f"wins + {drill['hedge_losses']} losses, {drill['duplicates']} "
          f"duplicates, {drill['slow_detections']} SLOW detections")
    print(f"  scale-up    : {drill['scale_up']['starting_served']} cold "
          f"serves, {drill['scale_up']['cold_builds']} builds / "
          f"{drill['scale_up']['cold_plans']} compiles after the gate")
    print(f"  ablation    : p99 {ablation['unhedged']['p99_ms']:.1f} ms "
          f"unhedged vs {ablation['hedged']['p99_ms']:.1f} ms hedged "
          f"({ablation['p99_ratio']:.2f}x)")
    for name, passed in result["gates"].items():
        print(f"  gate {name:<16}: {'pass' if passed else 'FAIL'}")

    if args.smoke:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"  wrote {args.out}")
        if not result["ok"]:
            for failure in drill["failures"]:
                print(f"  gray failure: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
