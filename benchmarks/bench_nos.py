"""Extension — §VI: Neural Operator Search ablation.

Not a paper table (the paper proposes NOS as future work); this harness
shows the capacity/latency Pareto frontier that per-layer operator search
spans, with the paper's fixed variants as endpoints.
"""

from collections import Counter

from repro.analysis import format_table
from repro.models import build_model
from repro.nos import pareto_front
from repro.systolic import PAPER_ARRAY, estimate_network


def test_nos_pareto(benchmark, save):
    baseline = build_model("mobilenet_v2")
    base_cycles = estimate_network(baseline, PAPER_ARRAY).total_cycles

    front = benchmark.pedantic(
        lambda: pareto_front(baseline, points=6), rounds=1, iterations=1
    )

    rows = []
    for result in front:
        net = result.build(baseline)
        cycles = estimate_network(net, PAPER_ARRAY).total_cycles
        mix = Counter(result.choices.values())
        rows.append([
            f"{result.cycles:,}",
            f"{mix[None]}/{mix[1]}/{mix[2]}",
            f"{result.params:,}",
            f"{base_cycles / cycles:.2f}x",
        ])
    text = format_table(
        ["cycle budget (searched layers)", "mix dw/full/half",
         "searched params", "net speedup"],
        rows,
        title="SVI extension — NOS capacity/latency frontier, MobileNet-V2",
    )
    save("nos_pareto", text)

    # Frontier endpoints are the paper's corner cases.
    assert all(c == 2 for c in front[0].choices.values())      # all-Half
    assert all(c is None for c in front[-1].choices.values())  # baseline
    # Capacity grows monotonically along the budget axis.
    params = [r.params for r in front]
    assert params == sorted(params)
