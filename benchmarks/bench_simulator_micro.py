"""Micro-benchmarks of the simulator itself (pytest-benchmark timing).

Not a paper artifact — keeps the analytical model fast enough for design
sweeps and catches performance regressions in the lowering/latency path.

The engine-comparison test times the reference per-cycle stepper against
the vectorized wavefront engine on every dataflow, persists the speedup
report to ``results/simulator_engines.json``, and fails if the vector
engine falls below the regression floor (also enforced by ``make
bench-smoke`` via ``python -m repro.systolic.bench``).
"""

import json

import numpy as np

from repro.core import FuSeVariant, to_fuseconv
from repro.models import build_model
from repro.systolic import (
    ArrayConfig,
    Conv1DBank,
    GemmDims,
    broadcast_conv1d_stats,
    estimate_network,
    os_gemm_stats,
    simulate_gemm,
)
from repro.systolic.bench import compare_engines, format_report

from conftest import RESULTS_DIR

#: Regression floor for reference→vector speedup (acceptance asks ≥10×
#: at 32×32; 5× leaves headroom for noisy CI machines in the gate).
MIN_ENGINE_SPEEDUP = 5.0


def test_gemm_stats_speed(benchmark):
    dims = GemmDims(m=12544, k=288, n=96)
    array = ArrayConfig.square(64)
    stats = benchmark(os_gemm_stats, dims, array)
    assert stats.cycles > 0


def test_broadcast_stats_speed(benchmark):
    bank = Conv1DBank(num_convs=7168, out_length=112, kernel=3)
    array = ArrayConfig.square(64)
    stats = benchmark(broadcast_conv1d_stats, bank, array)
    assert stats.cycles > 0


def test_network_latency_speed(benchmark):
    net = build_model("mobilenet_v2")
    array = ArrayConfig.square(64)
    result = benchmark(estimate_network, net, array)
    assert result.total_cycles > 0


def test_transform_speed(benchmark):
    net = build_model("mobilenet_v2")
    out = benchmark(to_fuseconv, net, FuSeVariant.HALF)
    assert out.out_shape == net.out_shape


def test_functional_sim_speed(benchmark):
    rng = np.random.default_rng(0)
    a = rng.normal(size=(16, 12))
    b = rng.normal(size=(12, 16))
    array = ArrayConfig.square(8)
    result = benchmark(simulate_gemm, a, b, array)
    assert np.allclose(result.values, a @ b)


def test_engine_comparison(benchmark, save):
    """Reference vs vector wavefront engine on all four dataflows.

    Records the per-dataflow speedup into ``results/simulator_engines.json``
    (and into the benchmark's ``extra_info``) so regressions show up in the
    stored artifacts, not just in wall time.
    """
    report = benchmark.pedantic(
        compare_engines, kwargs={"size": 32, "repeats": 3}, rounds=1,
        iterations=1,
    )
    save("simulator_engines", format_report(report))
    out = RESULTS_DIR / "simulator_engines.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    benchmark.extra_info["engine_report_json"] = str(out)
    benchmark.extra_info["min_engine_speedup"] = report["min_speedup"]

    for name, row in report["workloads"].items():
        assert row["exact_match"], f"engines disagree on {name}"
    assert report["min_speedup"] >= MIN_ENGINE_SPEEDUP
