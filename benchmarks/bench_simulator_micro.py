"""Micro-benchmarks of the simulator itself (pytest-benchmark timing).

Not a paper artifact — keeps the analytical model fast enough for design
sweeps and catches performance regressions in the lowering/latency path.
"""

import numpy as np

from repro.core import FuSeVariant, to_fuseconv
from repro.models import build_model
from repro.systolic import (
    ArrayConfig,
    Conv1DBank,
    GemmDims,
    broadcast_conv1d_stats,
    estimate_network,
    os_gemm_stats,
    simulate_gemm,
)


def test_gemm_stats_speed(benchmark):
    dims = GemmDims(m=12544, k=288, n=96)
    array = ArrayConfig.square(64)
    stats = benchmark(os_gemm_stats, dims, array)
    assert stats.cycles > 0


def test_broadcast_stats_speed(benchmark):
    bank = Conv1DBank(num_convs=7168, out_length=112, kernel=3)
    array = ArrayConfig.square(64)
    stats = benchmark(broadcast_conv1d_stats, bank, array)
    assert stats.cycles > 0


def test_network_latency_speed(benchmark):
    net = build_model("mobilenet_v2")
    array = ArrayConfig.square(64)
    result = benchmark(estimate_network, net, array)
    assert result.total_cycles > 0


def test_transform_speed(benchmark):
    net = build_model("mobilenet_v2")
    out = benchmark(to_fuseconv, net, FuSeVariant.HALF)
    assert out.out_shape == net.out_shape


def test_functional_sim_speed(benchmark):
    rng = np.random.default_rng(0)
    a = rng.normal(size=(16, 12))
    b = rng.normal(size=(12, 16))
    array = ArrayConfig.square(8)
    result = benchmark(simulate_gemm, a, b, array)
    assert np.allclose(result.values, a @ b)
