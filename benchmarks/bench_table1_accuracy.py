"""E3 — Table I accuracy columns (scaled-down proxy).

The paper trains 25 ImageNet models on V100 GPUs for 350 epochs; with no
GPU and no ImageNet we substitute the experiment that carries the claim:
the *same drop-in replacement* applied to a scaled-down separable network,
trained with the paper's optimizer recipe on a synthetic task hard enough
to separate the operators.

Reproduced shape (paper §V-B.1): FuSe-Full tracks the baseline closely
(more parameters), FuSe-Half may lose a little (fewer parameters); all
remain in the same accuracy band — the operators have comparable
representational power.
"""

from repro.analysis import format_table
from repro.nn import MiniSeparableNet, SyntheticSpec, TrainConfig, make_synthetic, train

SPEC = SyntheticSpec(
    num_classes=8,
    image_size=12,
    noise=2.2,
    max_shift=3,
    train_per_class=40,
    test_per_class=25,
)
CONFIG = TrainConfig(epochs=10, batch_size=32, lr=0.01, seed=0)
SEEDS = (1, 2, 3)

#: nn op name -> Table I variant label
OPS = {
    "depthwise": "baseline",
    "fuse_full": "FuSe-Full",
    "fuse_half": "FuSe-Half",
}


def _train_all():
    train_data, test_data = make_synthetic(SPEC, seed=3)
    results = {}
    for op, label in OPS.items():
        accs = []
        params = 0
        for seed in SEEDS:
            model = MiniSeparableNet(
                num_classes=SPEC.num_classes, width=8, op=op, seed=seed
            )
            history = train(model, train_data, test_data, CONFIG)
            accs.append(history.best_test_accuracy)
            params = model.num_parameters()
        mean = sum(accs) / len(accs)
        spread = (max(accs) - min(accs)) / 2
        results[label] = (params, mean, spread)
    return results


def test_table1_accuracy_proxy(benchmark, save):
    results = benchmark.pedantic(_train_all, rounds=1, iterations=1)
    rows = [
        [label, params, f"{acc * 100:.1f}% ± {spread * 100:.1f}"]
        for label, (params, acc, spread) in results.items()
    ]
    text = format_table(
        ["variant", "params", "test accuracy (mean ± half-range, 3 seeds)"],
        rows,
        title=(
            "Table I accuracy (proxy) — MiniSeparableNet on the synthetic "
            "task, paper training recipe"
        ),
    )
    save("table1_accuracy_proxy", text)

    chance = 1.0 / SPEC.num_classes
    for label, (_, acc, _) in results.items():
        assert acc > 2 * chance, f"{label} failed to learn"
    # Parameter ordering mirrors the paper: Full > baseline > Half.
    assert results["FuSe-Full"][0] > results["baseline"][0] > results["FuSe-Half"][0]
    # Accuracy shape (§V-B.1): Full stays close to the baseline.
    assert results["FuSe-Full"][1] >= results["baseline"][1] - 0.12
