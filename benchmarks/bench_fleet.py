"""Fleet serving: scaling, rerouting, and the chaos drill (docs/fleet.md).

Three measurements, all over real loopback TCP on the analytical engine
(the routing/transport path is the thing under test; per-request compute
is the cost model's):

1. **single-node saturation** — a ramp profile against one replica,
   producing the baseline saturation QPS and p99;
2. **fleet saturation** — the same ramp through a :class:`FleetRouter`
   over four replicas;
3. **chaos drill** — :func:`repro.fleet.run_fleet_chaos`: kill a replica
   mid-run and hold every bound (zero unhandled errors, >=99 % of
   non-shed requests answered, minimal lane movement, identical
   same-seed replay fingerprint).

The scaling gate is core-count-honest.  Four replicas in one Python
process cannot beat one replica on a single-core host — there is no
parallel compute to unlock, only routing overhead to pay — so the
>=3x-saturation / p99<=1.5x acceptance gate arms only when the host has
at least four cores.  Below that the gate degrades to "the router costs
at most half the single-node capacity", and the JSON records which gate
ran (``scaling_gate_armed``) so a reader cannot mistake the floor for
the claim.

Also runnable directly as the ``make fleet-smoke`` gate::

    python benchmarks/bench_fleet.py --smoke

which writes ``benchmarks/results/BENCH_fleet.json`` and exits non-zero
if any gate fails.
"""

import argparse
import asyncio
import json
import os
import sys
from pathlib import Path

from repro.fleet import FleetRouter, FleetSupervisor, RouterConfig, run_fleet_chaos
from repro.obs import configure_logging
from repro.serve import (
    ModelKey,
    RemoteClient,
    ServeConfig,
    WorkloadSpec,
    run_workload,
)

RESULTS_DIR = Path(__file__).parent / "results"

KEY = ModelKey("mobilenet_v3_small", resolution=32)
REPLICAS = 4
SEED = 0

#: Acceptance gates (ISSUE 8), armed when the host can parallelize.
MIN_FLEET_SPEEDUP = 3.0
MAX_FLEET_P99_RATIO = 1.5
#: Single-core fallback: the router hop may cost at most half the
#: single-node saturation (it adds a forward, never compute).
MIN_ROUTER_EFFICIENCY = 0.5

#: Chaos bounds (shared with ``repro loadgen --chaos --fleet``).
MIN_ANSWERED_RATE = 0.99


def _config() -> ServeConfig:
    return ServeConfig(engine="analytical", preload=[KEY], workers=2,
                       slo_ms=30000.0, compile=False, telemetry=False)


def _ramp_spec() -> WorkloadSpec:
    return WorkloadSpec(keys=[KEY], requests=240, clients=8, seed=SEED,
                        mode="open", ramp=(100.0, 900.0, 4))


async def _measure_single() -> dict:
    supervisor = FleetSupervisor(base_config=_config(), mode="inproc")
    try:
        endpoint = await supervisor.spawn()
        client = RemoteClient(endpoint.host, endpoint.port, timeout_s=30.0)
        await client.connect()
        try:
            report = await run_workload(client.submit, _ramp_spec())
        finally:
            await client.close()
    finally:
        await supervisor.stop()
    return {
        "saturation_qps": report.saturation_qps,
        "p99_ms": report.p99_ms,
        "throughput_rps": report.throughput_rps,
        "errors": report.errors,
        "steps": [s.to_dict() for s in report.ramp_steps],
    }


async def _measure_fleet() -> dict:
    supervisor = FleetSupervisor(base_config=_config(), mode="inproc")
    try:
        endpoints = [await supervisor.spawn() for _ in range(REPLICAS)]
        async with FleetRouter(endpoints, RouterConfig(seed=SEED)) as router:
            client = RemoteClient("127.0.0.1", router.port, timeout_s=30.0)
            await client.connect()
            try:
                report = await run_workload(client.submit, _ramp_spec())
                served = sorted(l.replica_id for l in router.links.values()
                                if l.ok > 0)
            finally:
                await client.close()
    finally:
        await supervisor.stop()
    return {
        "replicas": REPLICAS,
        "saturation_qps": report.saturation_qps,
        "p99_ms": report.p99_ms,
        "throughput_rps": report.throughput_rps,
        "errors": report.errors,
        "replicas_serving": served,
        "steps": [s.to_dict() for s in report.ramp_steps],
    }


async def _run_chaos() -> dict:
    spec = WorkloadSpec(keys=[KEY], requests=120, clients=6, seed=SEED)
    report = await run_fleet_chaos(spec, replicas=REPLICAS, config=_config(),
                                   min_answered_rate=MIN_ANSWERED_RATE)
    failures = report.check()
    return {
        "replicas": report.replicas,
        "victim": report.victim,
        "killed_at_completed": report.killed_at_completed,
        "ok_after_kill": report.ok_after_kill,
        "reroutes": report.reroutes,
        "answered_rate": report.answered_rate,
        "errors": report.report.errors,
        "moved_lanes": report.moved_lanes,
        "fingerprint_holds": report.requests_digest == report.replay_digest,
        "failures": failures,
        "ok": not failures,
    }


def run() -> dict:
    cores = os.cpu_count() or 1
    single = asyncio.run(_measure_single())
    fleet = asyncio.run(_measure_fleet())
    chaos = asyncio.run(_run_chaos())

    speedup = (fleet["saturation_qps"] / single["saturation_qps"]
               if single["saturation_qps"] > 0 else 0.0)
    p99_ratio = (fleet["p99_ms"] / single["p99_ms"]
                 if single["p99_ms"] > 0 else 0.0)
    scaling_armed = cores >= REPLICAS

    gates = {"chaos_bounds": chaos["ok"],
             "no_errors": single["errors"] == 0 and fleet["errors"] == 0}
    if scaling_armed:
        gates["fleet_speedup"] = speedup >= MIN_FLEET_SPEEDUP
        gates["fleet_p99"] = p99_ratio <= MAX_FLEET_P99_RATIO
    else:
        gates["router_efficiency"] = speedup >= MIN_ROUTER_EFFICIENCY

    return {
        "bench": "fleet",
        "cores": cores,
        "scaling_gate_armed": scaling_armed,
        "single": single,
        "fleet": fleet,
        "chaos": chaos,
        "fleet_speedup": speedup,
        "fleet_p99_ratio": p99_ratio,
        "gates": gates,
        "ok": all(gates.values()),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="gate the acceptance bounds and write "
                             "BENCH_fleet.json")
    parser.add_argument("--out", type=Path,
                        default=RESULTS_DIR / "BENCH_fleet.json")
    args = parser.parse_args()

    # The chaos drill logs every rerouted forward; that is the drill
    # working, not something a bench reader needs line by line.
    configure_logging(quiet=True)
    result = run()

    print(f"fleet bench ({result['cores']} cores, scaling gate "
          f"{'armed' if result['scaling_gate_armed'] else 'disarmed'}):")
    print(f"  single node : saturation {result['single']['saturation_qps']:.0f}"
          f" req/s   p99 {result['single']['p99_ms']:.1f} ms")
    print(f"  {REPLICAS}-replica   : saturation "
          f"{result['fleet']['saturation_qps']:.0f} req/s   "
          f"p99 {result['fleet']['p99_ms']:.1f} ms   "
          f"({result['fleet_speedup']:.2f}x, "
          f"p99 ratio {result['fleet_p99_ratio']:.2f})")
    chaos = result["chaos"]
    print(f"  chaos drill : victim {chaos['victim']} killed at "
          f"{chaos['killed_at_completed']} completions, "
          f"{chaos['reroutes']} reroutes, "
          f"{chaos['answered_rate'] * 100:.1f}% answered, fingerprint "
          f"{'holds' if chaos['fingerprint_holds'] else 'BROKEN'}")
    for name, passed in result["gates"].items():
        print(f"  gate {name:<17}: {'pass' if passed else 'FAIL'}")

    if args.smoke:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"  wrote {args.out}")
        if not result["ok"]:
            for failure in chaos["failures"]:
                print(f"  chaos failure: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
