"""Extension — calibration ablation: fold pipelining sensitivity.

SCALE-Sim-family simulators differ in how much per-fold overhead (operand
skew fill) consecutive folds amortize.  This ablation recomputes the
Table I speed-ups under both ends of that modeling choice:

* ``pipelined_folds=False`` — every fold pays full fill+drain (our
  default, conservative);
* ``pipelined_folds=True``  — back-to-back folds hide the fill skew.

The pipelined model moves the speed-up factors toward the paper's
reported values (e.g. MobileNet-V1 FuSe-Full 4.9× vs the paper's 4.1×,
versus 6.2× under the conservative model), supporting the calibration
explanation in EXPERIMENTS.md — the *ordering* is identical under both.
"""

from repro.analysis import TABLE1, format_table
from repro.core import ALL_VARIANTS, to_fuseconv
from repro.models import PAPER_NETWORKS, build_model
from repro.systolic import ArrayConfig, estimate_network


def _speedups(pipelined: bool):
    array = ArrayConfig.square(64, pipelined_folds=pipelined)
    out = {}
    for name in PAPER_NETWORKS:
        net = build_model(name)
        base = estimate_network(net, array).total_cycles
        for variant in ALL_VARIANTS:
            cycles = estimate_network(to_fuseconv(net, variant, array), array).total_cycles
            out[(name, variant.label)] = base / cycles
    return out


def test_pipelining_ablation(benchmark, save):
    conservative = benchmark.pedantic(
        lambda: _speedups(False), rounds=1, iterations=1
    )
    pipelined = _speedups(True)

    rows = []
    for (name, label), value in conservative.items():
        paper = TABLE1.get((name, label))
        rows.append([
            name,
            label,
            f"{value:.2f}x",
            f"{pipelined[(name, label)]:.2f}x",
            f"{paper.speedup:.2f}x" if paper else "-",
        ])
    text = format_table(
        ["network", "variant", "conservative", "pipelined", "paper"],
        rows,
        title="Calibration ablation — fold pipelining vs Table I speed-ups",
    )
    save("ablation_pipelining", text)

    # The reproducible claims: every variant still wins under both models,
    # and on average the pipelined model sits closer to the paper's factors
    # (individual Half-variant cases may tick up slightly).
    for key, value in conservative.items():
        assert value > 1.0 and pipelined[key] > 1.0
    ratios_cons = [
        value / TABLE1[key].speedup for key, value in conservative.items()
    ]
    ratios_pipe = [
        value / TABLE1[key].speedup for key, value in pipelined.items()
    ]
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(ratios_pipe) < mean(ratios_cons)
