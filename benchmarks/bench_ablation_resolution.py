"""Extension — speed-up vs input resolution (complements Fig. 8d).

Fig. 8(b) shows larger feature maps benefiting more from the FuSe
transform; sweeping the *input resolution* on a fixed 64×64 array
aggregates that observation: higher resolution → more columns/rows per 1D
convolution → better utilization → larger speed-up.
"""

from repro.analysis import DEFAULT_RESOLUTIONS, format_table, resolution_curve
from repro.core import FuSeVariant

NETWORKS = ("mobilenet_v1", "mobilenet_v2", "mobilenet_v3_small")


def _sweep():
    return {
        name: resolution_curve(name, FuSeVariant.HALF)
        for name in NETWORKS
    }


def test_resolution_ablation(benchmark, save):
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [name] + [f"{p.speedup:.2f}x" for p in points]
        for name, points in data.items()
    ]
    text = format_table(
        ["network"] + [f"{r}px" for r in DEFAULT_RESOLUTIONS],
        rows,
        title="Extension — FuSe-Half speed-up vs input resolution (64x64 array)",
    )
    save("ablation_resolution", text)

    for name, points in data.items():
        speedups = [p.speedup for p in points]
        # Higher resolution never hurts, and the span is meaningful.
        assert speedups[-1] >= speedups[0], name
        assert all(s > 1 for s in speedups), name
