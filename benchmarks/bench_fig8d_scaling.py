"""E7 — Fig. 8(d): speed-up vs systolic-array size (ablation).

Paper: speed-up grows with array size (baseline under-utilization worsens
on bigger arrays), and the larger MobileNet-V1 gains more on big arrays
than MobileNet-V3-Small.
"""

from repro.analysis import DEFAULT_SIZES, figure_8d, format_table
from repro.core import FuSeVariant


def test_fig8d_scaling(benchmark, save, save_data):
    # One process-pool task per network (see repro.systolic.parallel).
    data = benchmark(lambda: figure_8d(variant=FuSeVariant.HALF, jobs=2))
    rows = [
        [network] + [f"{p.speedup:.2f}x" for p in points]
        for network, points in data.items()
    ]
    text = format_table(
        ["network"] + [f"{s}x{s}" for s in DEFAULT_SIZES],
        rows,
        title="Fig 8(d) — FuSe-Half speed-up vs array size",
    )
    save("fig8d_scaling", text)
    save_data(
        "fig8d_scaling",
        ["network"] + [str(s) for s in DEFAULT_SIZES],
        [[network] + [f"{p.speedup:.4f}" for p in points]
         for network, points in data.items()],
    )

    for network, points in data.items():
        speedups = [p.speedup for p in points]
        assert speedups[-1] > speedups[0], network  # grows with array size
    # Cloud-vs-edge observation: V1 beats V3-Small on the largest array.
    assert data["mobilenet_v1"][-1].speedup > data["mobilenet_v3_small"][-1].speedup
