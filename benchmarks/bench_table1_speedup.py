"""E2 — Table I: inference speed-up on the 64×64 systolic array.

Regenerates the "Speedup" column: cycle counts from the SCALE-Sim-style
output-stationary model with the broadcast dataflow for FuSe layers.
Absolute factors differ from the paper's simulator calibration; the
ordering (Half > Full > 50 % variants > 1×) and magnitudes (3×–10×) are
the reproduced shape.
"""

from repro.analysis import calibration_stats, format_table, table1


def test_table1_speedup(benchmark, save):
    # One process-pool task per network (see repro.systolic.parallel).
    rows = benchmark(lambda: table1(jobs=2))
    stats = calibration_stats(rows)
    table_rows = [
        [
            row.network,
            row.variant or "baseline",
            f"{row.cycles:,}",
            f"{row.speedup:.2f}x",
            f"{row.paper.speedup:.2f}x" if row.paper else "-",
        ]
        for row in rows
    ]
    text = format_table(
        ["network", "variant", "cycles@64x64", "speedup", "paper"],
        table_rows,
        title="Table I — speed-up on a 64x64 systolic array (measured vs paper)",
    )
    save("table1_speedup", text + "\n\ncalibration: " + stats.summary())

    by_key = {(r.network, r.variant): r.speedup for r in rows}
    for network in {r.network for r in rows}:
        assert by_key[(network, "FuSe-Half")] > by_key[(network, "FuSe-Full")] > 1.0
        assert by_key[(network, "FuSe-Full")] > by_key[(network, "FuSe-Full-50%")]
    # The ordering across all 20 variant rows matches the paper's almost
    # perfectly, and the magnitude inflation stays below 2x.
    assert stats.rank_correlation > 0.9
    assert stats.mean_ratio < 1.7
