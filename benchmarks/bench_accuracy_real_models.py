"""E3 (secondary) — the *actual* zoo architectures train end-to-end.

While ``bench_table1_accuracy.py`` carries the accuracy-ordering claim at
a scale where operator differences are resolvable, this harness
demonstrates the stronger structural property: the very networks the
latency experiments analyze (here a width-0.25 MobileNet-V1 and its
to_fuseconv() transforms — the same graphs, via GraphExecutor) train
end-to-end with the paper's recipe.

At ~200k parameters and CPU-minutes of training, all three variants learn
far above chance but their accuracy deltas are within seed noise — too
small a scale to resolve the paper's ≤1 % ImageNet gaps, which is recorded
as such in EXPERIMENTS.md.
"""

from repro.analysis import format_table
from repro.core import FuSeVariant, to_fuseconv
from repro.models import build_model
from repro.nn import GraphExecutor, SyntheticSpec, TrainConfig, make_synthetic, train

SPEC = SyntheticSpec(
    num_classes=6,
    image_size=16,
    noise=1.2,
    max_shift=2,
    train_per_class=40,
    test_per_class=20,
)
# 14 epochs puts every variant's best accuracy well clear of the 2x-chance
# assertion; at 10 the runs were still mid-transient and ulp-level gradient
# changes (e.g. a different float summation order in conv backward) could
# swing a variant below the line.
CONFIG = TrainConfig(epochs=14, batch_size=24, lr=0.01, seed=0)


def _train_all():
    train_data, test_data = make_synthetic(SPEC, seed=5)
    baseline = build_model(
        "mobilenet_v1", num_classes=SPEC.num_classes, resolution=16, width_mult=0.25
    )
    results = {}
    for label, net in (
        ("baseline", baseline),
        ("FuSe-Full", to_fuseconv(baseline, FuSeVariant.FULL)),
        ("FuSe-Half", to_fuseconv(baseline, FuSeVariant.HALF)),
    ):
        model = GraphExecutor(net, seed=1)
        history = train(model, train_data, test_data, CONFIG)
        results[label] = (model.num_parameters(), history.best_test_accuracy)
    return results


def test_real_model_accuracy(benchmark, save):
    results = benchmark.pedantic(_train_all, rounds=1, iterations=1)
    rows = [
        [label, f"{params:,}", f"{acc * 100:.1f}%"]
        for label, (params, acc) in results.items()
    ]
    text = format_table(
        ["variant", "params", "best test accuracy"],
        rows,
        title=(
            "Zoo-architecture training (MobileNet-V1 @0.25x width, 16px, "
            "synthetic task) — structural end-to-end check"
        ),
    )
    save("accuracy_real_models", text)

    chance = 1.0 / SPEC.num_classes
    for label, (_, acc) in results.items():
        assert acc > 2 * chance, f"{label} failed to learn"
    # Parameter ordering is exact (it is the Table I accounting).
    assert results["FuSe-Full"][0] > results["baseline"][0] > results["FuSe-Half"][0]
