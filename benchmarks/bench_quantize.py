"""Int8 quantized inference: speed and accuracy gates (docs/runtime.md).

The acceptance claim of the int8 fast path: on MobileNet-V3-Small at
batch 8 / resolution 32, the quantized plan runs >=1.3x faster than the
folded float plan with under 1 % top-1 accuracy drop.

Accuracy needs a *trained* model to mean anything — with random weights
the median top-2 logit margin sits below the int8 error floor, so argmax
agreement measures tie-breaking noise, not fidelity.  The harness
therefore trains V3-Small on the repo's synthetic task (the same recipe
``bench_accuracy_real_models.py`` uses), calibrates the int8 plan on the
training batches, and compares folded vs int8 top-1 on the held-out
test split.

Also runnable directly as the ``make quantize-smoke`` gate::

    python benchmarks/bench_quantize.py --smoke

which writes ``benchmarks/results/BENCH_quantize.json`` and exits
non-zero if the speed or accuracy gate fails.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.models import build_model
from repro.nn import (
    CompileConfig,
    GraphExecutor,
    SyntheticSpec,
    TrainConfig,
    compile_executor,
    make_synthetic,
    train,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Acceptance gates (ISSUE 7): int8 vs folded float on V3-Small batch 8.
MIN_SPEEDUP = 1.3
MAX_ACCURACY_DROP = 0.01

#: 32 px so the served resolution is benchmarked; noise/shift tuned so
#: ten epochs land the eager model around 95 % — high enough that a
#: quantization regression is visible, cheap enough for a smoke gate.
SPEC = SyntheticSpec(
    num_classes=6,
    image_size=32,
    noise=0.8,
    max_shift=2,
    train_per_class=40,
    test_per_class=48,
)
CONFIG = TrainConfig(epochs=10, batch_size=24, lr=0.01, seed=0)
DATA_SEED = 3
MODEL_SEED = 1
BATCH = 8


def _best_ms(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times) * 1000.0


def _plan_accuracy(plan, data) -> float:
    correct = 0
    for images, labels in data.batches(BATCH, shuffle=False):
        if len(images) != BATCH:
            continue  # plans are compiled for one batch shape
        logits = plan.run(images.astype(np.float32))
        correct += int((logits.argmax(axis=1) == labels).sum())
    usable = (len(data) // BATCH) * BATCH
    return correct / usable


def run_quantize_benchmark(repeats: int = 30, verbose: bool = False) -> dict:
    """Train V3-Small, compile folded + int8 plans, measure both gates."""
    train_data, test_data = make_synthetic(SPEC, seed=DATA_SEED)
    net = build_model("mobilenet_v3_small", num_classes=SPEC.num_classes,
                      resolution=SPEC.image_size)
    executor = GraphExecutor(net, seed=MODEL_SEED)
    history = train(executor, train_data, test_data, CONFIG, verbose=verbose)
    executor.eval()

    shape = (BATCH,) + tuple(net.input_shape)
    calibration = [
        images.astype(np.float32)
        for images, _ in train_data.batches(BATCH, shuffle=False)
        if len(images) == BATCH
    ]
    folded = compile_executor(executor, shape)
    int8 = compile_executor(executor, shape,
                            CompileConfig.int8(calibration_data=calibration))

    folded_acc = _plan_accuracy(folded, test_data)
    int8_acc = _plan_accuracy(int8, test_data)

    x = next(test_data.batches(BATCH, shuffle=False))[0].astype(np.float32)
    folded_ms = _best_ms(lambda: folded.run(x), repeats)
    int8_ms = _best_ms(lambda: int8.run(x), repeats)

    s = int8.stats
    return {
        "network": "mobilenet_v3_small",
        "batch": BATCH,
        "resolution": SPEC.image_size,
        "repeats": repeats,
        "train_epochs": CONFIG.epochs,
        "eager_test_accuracy": history.final_test_accuracy,
        "calibration_batches": len(calibration),
        "folded_ms": folded_ms,
        "int8_ms": int8_ms,
        "speedup": folded_ms / int8_ms,
        "folded_accuracy": folded_acc,
        "int8_accuracy": int8_acc,
        "accuracy_drop": folded_acc - int8_acc,
        "int8_ops": s.int8_ops,
        "int8_fallbacks": s.int8_fallbacks,
        "min_speedup_gate": MIN_SPEEDUP,
        "max_accuracy_drop_gate": MAX_ACCURACY_DROP,
    }


def check(result: dict) -> list:
    """The gate: failures as human-readable strings (empty = pass)."""
    problems = []
    if result["speedup"] < MIN_SPEEDUP:
        problems.append(
            f"int8 speedup {result['speedup']:.2f}x < "
            f"required {MIN_SPEEDUP:.2f}x over folded")
    if result["accuracy_drop"] > MAX_ACCURACY_DROP:
        problems.append(
            f"accuracy drop {result['accuracy_drop'] * 100:.2f}pp > "
            f"allowed {MAX_ACCURACY_DROP * 100:.0f}pp")
    if result["int8_ops"] < 10:
        problems.append(
            f"only {result['int8_ops']} int8 ops — plan fell back to float")
    return problems


def render(result: dict) -> str:
    return "\n".join([
        f"int8 quantized inference: {result['network']} "
        f"(batch {result['batch']}, res {result['resolution']}, "
        f"best of {result['repeats']})",
        f"  trained     : {result['train_epochs']} epochs, eager test acc "
        f"{result['eager_test_accuracy'] * 100:.1f}%",
        f"  calibration : {result['calibration_batches']} training batches",
        f"  folded plan : {result['folded_ms']:.2f} ms, "
        f"top-1 {result['folded_accuracy'] * 100:.2f}%",
        f"  int8 plan   : {result['int8_ms']:.2f} ms  "
        f"({result['speedup']:.2f}x), "
        f"top-1 {result['int8_accuracy'] * 100:.2f}%  "
        f"(drop {result['accuracy_drop'] * 100:+.2f}pp)",
        f"  coverage    : {result['int8_ops']} int8 ops, "
        f"{result['int8_fallbacks']} float fallbacks",
        f"  gates       : >={result['min_speedup_gate']}x speedup, "
        f"<={result['max_accuracy_drop_gate'] * 100:.0f}pp drop",
    ])


def write_json(result: dict) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_quantize.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


# ------------------------------------------------------------------ pytest

def test_int8_speed_and_accuracy(benchmark, save):
    """The acceptance benchmark: both int8 gates on a trained V3-Small."""
    result = benchmark.pedantic(run_quantize_benchmark, rounds=1, iterations=1)
    write_json(result)
    save("BENCH_quantize", render(result))
    problems = check(result)
    assert not problems, "; ".join(problems)
    benchmark.extra_info.update(
        speedup=result["speedup"],
        accuracy_drop=result["accuracy_drop"],
        int8_ops=result["int8_ops"],
    )


# ------------------------------------------------------------------- smoke

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="int8 quantization benchmark / smoke gate")
    parser.add_argument("--repeats", type=int, default=30)
    parser.add_argument("--smoke", action="store_true",
                        help="fast gate: fewer latency repeats")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-epoch training progress")
    parser.add_argument("--out", default=None,
                        help="JSON output path "
                             "(default benchmarks/results/BENCH_quantize.json)")
    args = parser.parse_args(argv)
    repeats = 10 if args.smoke and args.repeats == 30 else args.repeats

    result = run_quantize_benchmark(repeats, verbose=args.verbose)
    print(render(result))
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
    else:
        path = write_json(result)
    print(f"wrote {path}")

    problems = check(result)
    if problems:
        print("quantize benchmark FAILED: " + "; ".join(problems),
              file=sys.stderr)
        return 1
    print(f"quantize benchmark ok: {result['speedup']:.2f}x over folded, "
          f"{result['accuracy_drop'] * 100:+.2f}pp top-1")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
