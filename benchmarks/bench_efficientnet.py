"""Extension — FuSeConv on EfficientNet-B0.

§I cites EfficientNet's poor scaling on EdgeTPU as prior evidence of the
depthwise/accelerator mismatch; the paper itself evaluates MobileNets and
MnasNet.  This extension applies the same drop-in transform to
EfficientNet-B0: its 16 depthwise MBConv stages exhibit exactly the same
pathology, and FuSe recovers a comparable speed-up band.
"""

from repro.analysis import format_table
from repro.core import ALL_VARIANTS, to_fuseconv
from repro.ir import macs_millions, params_millions
from repro.models import build_model
from repro.systolic import PAPER_ARRAY, estimate_network


def _rows():
    baseline = build_model("efficientnet_b0")
    base = estimate_network(baseline, PAPER_ARRAY)
    rows = [[
        "baseline", f"{macs_millions(baseline):.0f}",
        f"{params_millions(baseline):.2f}", f"{base.total_cycles:,}", "1.00x",
    ]]
    for variant in ALL_VARIANTS:
        net = to_fuseconv(baseline, variant, PAPER_ARRAY)
        latency = estimate_network(net, PAPER_ARRAY)
        rows.append([
            variant.label,
            f"{macs_millions(net):.0f}",
            f"{params_millions(net):.2f}",
            f"{latency.total_cycles:,}",
            f"{base.total_cycles / latency.total_cycles:.2f}x",
        ])
    return rows


def test_efficientnet_transform(benchmark, save):
    rows = benchmark(_rows)
    text = format_table(
        ["variant", "MACs(M)", "params(M)", "cycles", "speedup"],
        rows,
        title="Extension — EfficientNet-B0 under the FuSe transform (64x64)",
    )
    save("efficientnet", text)

    speedups = {r[0]: float(r[4].rstrip("x")) for r in rows}
    assert speedups["FuSe-Half"] > speedups["FuSe-Full"] > 1.5
