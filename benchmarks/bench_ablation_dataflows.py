"""Extension — GEMM dataflow ablation: OS vs WS vs IS.

The paper fixes the output-stationary dataflow (§V-A.3).  This ablation
answers the natural question: would a different dataflow have rescued the
depthwise baseline?  No — the pathology is in the operator's shape (N=1
GEMMs), not in the dataflow; all three mappings leave the baseline slow,
and the FuSe networks fast.
"""

from repro.analysis import format_table
from repro.core import FuSeVariant, to_fuseconv
from repro.models import build_model
from repro.systolic import ArrayConfig, estimate_network

DATAFLOWS = ("os", "ws", "is")


def _sweep():
    baseline = build_model("mobilenet_v2")
    results = {}
    for flow in DATAFLOWS:
        array = ArrayConfig(64, 64, dataflow=flow)
        fuse = to_fuseconv(baseline, FuSeVariant.HALF, array)
        base_cycles = estimate_network(baseline, array).total_cycles
        fuse_cycles = estimate_network(fuse, array).total_cycles
        results[flow] = (base_cycles, fuse_cycles, base_cycles / fuse_cycles)
    return results


def test_dataflow_ablation(benchmark, save):
    results = benchmark(_sweep)
    rows = [
        [flow, f"{base:,}", f"{fuse:,}", f"{speedup:.2f}x"]
        for flow, (base, fuse, speedup) in results.items()
    ]
    text = format_table(
        ["dataflow", "baseline cycles", "FuSe-Half cycles", "speedup"],
        rows,
        title="Extension — dataflow ablation, MobileNet-V2 @64x64",
    )
    save("ablation_dataflows", text)

    # FuSe wins under every dataflow: the depthwise pathology is not a
    # dataflow artifact.
    for flow, (_, _, speedup) in results.items():
        assert speedup > 3, flow
