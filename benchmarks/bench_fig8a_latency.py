"""E4 — Fig. 8(a): absolute latency of every network variant on 64×64.

The paper plots latency (we report milliseconds at the configured clock
and raw cycles).  Shape: baselines slowest, Half variants fastest.
"""

from repro.analysis import figure_8a, format_table

VARIANT_ORDER = ["baseline", "FuSe-Full", "FuSe-Half", "FuSe-Full-50%", "FuSe-Half-50%"]


def test_fig8a_latency(benchmark, save, save_data):
    # One process-pool task per network (see repro.systolic.parallel).
    data = benchmark(lambda: figure_8a(jobs=2))
    rows = [
        [network] + [f"{data[network][v]:.3f}" for v in VARIANT_ORDER]
        for network in data
    ]
    text = format_table(
        ["network"] + [f"{v} (ms)" for v in VARIANT_ORDER],
        rows,
        title="Fig 8(a) — latency on a 64x64 array (ms @ 700 MHz)",
    )
    save("fig8a_latency", text)
    save_data("fig8a_latency", ["network"] + VARIANT_ORDER, rows)

    for network, series in data.items():
        assert series["FuSe-Half"] < series["FuSe-Full"] < series["baseline"]
