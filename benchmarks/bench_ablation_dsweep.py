"""Extension — §VI: sweeping the design knob D beyond the paper.

The paper evaluates D ∈ {1 (Full), 2 (Half)} and suggests "other variants
to sensitively trade-off latency and accuracy".  This ablation extends the
knob to D ∈ {1, 2, 4, 8}: larger D spatially filters only 2C/D channels,
shrinking parameters, MACs and latency monotonically — at an accuracy cost
this harness proxies by the parameter count.
"""

from repro.analysis import format_table
from repro.core import to_mixed_fuseconv
from repro.ir import DepthwiseConv2D, macs_millions, params_millions
from repro.models import build_model
from repro.systolic import PAPER_ARRAY, estimate_network

D_VALUES = (1, 2, 4, 8)


def _sweep():
    baseline = build_model("mobilenet_v2")
    base_cycles = estimate_network(baseline, PAPER_ARRAY).total_cycles
    rows = [("baseline", macs_millions(baseline), params_millions(baseline),
             base_cycles, 1.0)]
    depthwise = [n.name for n in baseline.find(DepthwiseConv2D)]
    for d in D_VALUES:
        net = to_mixed_fuseconv(
            baseline, {name: d for name in depthwise}, name_suffix=f"FuSe-D{d}"
        )
        cycles = estimate_network(net, PAPER_ARRAY).total_cycles
        rows.append(
            (f"FuSe D={d}", macs_millions(net), params_millions(net),
             cycles, base_cycles / cycles)
        )
    return rows


def test_d_sweep(benchmark, save):
    rows = benchmark(_sweep)
    text = format_table(
        ["variant", "MACs(M)", "params(M)", "cycles", "speedup"],
        [[label, f"{m:.0f}", f"{p:.2f}", f"{c:,}", f"{s:.2f}x"]
         for label, m, p, c, s in rows],
        title="SVI extension — design knob D sweep, MobileNet-V2 @64x64",
    )
    save("ablation_dsweep", text)

    # Larger D ⇒ monotonically fewer params/MACs and higher speed-up.
    fuse = rows[1:]
    params = [p for _, _, p, _, _ in fuse]
    speedups = [s for _, _, _, _, s in fuse]
    assert params == sorted(params, reverse=True)
    assert speedups == sorted(speedups)
    assert all(s > 1 for s in speedups)
