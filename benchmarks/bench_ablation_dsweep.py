"""Extension — §VI: sweeping the design knob D beyond the paper.

The paper evaluates D ∈ {1 (Full), 2 (Half)} and suggests "other variants
to sensitively trade-off latency and accuracy".  This ablation extends the
knob to D ∈ {1, 2, 4, 8}: larger D spatially filters only 2C/D channels,
shrinking parameters, MACs and latency monotonically — at an accuracy cost
this harness proxies by the parameter count.

The sweep itself is :func:`repro.analysis.d_knob_sweep`, run here with a
two-worker process pool (one D point per task).
"""

from repro.analysis import DEFAULT_D_VALUES, d_knob_sweep, format_table


def test_d_sweep(benchmark, save):
    rows = benchmark(lambda: d_knob_sweep("mobilenet_v2", jobs=2))
    text = format_table(
        ["variant", "MACs(M)", "params(M)", "cycles", "speedup"],
        [[label, f"{m:.0f}", f"{p:.2f}", f"{c:,}", f"{s:.2f}x"]
         for label, m, p, c, s in rows],
        title="SVI extension — design knob D sweep, MobileNet-V2 @64x64",
    )
    save("ablation_dsweep", text)

    assert len(rows) == 1 + len(DEFAULT_D_VALUES)
    # Larger D ⇒ monotonically fewer params/MACs and higher speed-up.
    fuse = rows[1:]
    params = [p for _, _, p, _, _ in fuse]
    speedups = [s for _, _, _, _, s in fuse]
    assert params == sorted(params, reverse=True)
    assert speedups == sorted(speedups)
    assert all(s > 1 for s in speedups)
