"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
it, and also writes it to ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture.  Run with::

    pytest benchmarks/ --benchmark-only

(Benchmark timing measures the experiment computation itself; the tables
are the scientific output.)

Observability: each saved result gets a ``<name>.metrics.json`` sidecar —
a snapshot of the process metrics registry (``repro.metrics/v1`` schema) —
and benchmarked tests carry the sidecar path plus series count in their
``extra_info``.  Sidecars are written *compact* by default (one series
per metric name via :func:`repro.obs.summarize_metrics`): the full
per-layer label fan-out runs to megabytes per file and is diagnostic
exhaust, not a result.  Set ``REPRO_BENCH_FULL_METRICS=1`` to keep the
raw snapshots when debugging a specific run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.obs import get_registry, metrics_payload, summarize_metrics

RESULTS_DIR = Path(__file__).parent / "results"


def _write_metrics_sidecar(name: str) -> Path:
    """Snapshot the default registry next to a result file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.metrics.json"
    payload = metrics_payload(extra={"result": name})
    if not os.environ.get("REPRO_BENCH_FULL_METRICS"):
        payload = summarize_metrics(payload)
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path


def save_result(name: str, text: str) -> None:
    """Print a result table and persist it (plus metrics) under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    _write_metrics_sidecar(name)
    print(f"\n{text}\n")


def save_csv(name: str, headers, rows) -> None:
    """Persist plot-ready CSV data under benchmarks/results/."""
    from repro.analysis import to_csv

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.csv").write_text(to_csv(headers, rows))


@pytest.fixture
def save():
    return save_result


@pytest.fixture
def save_data():
    return save_csv


@pytest.fixture(autouse=True)
def attach_metrics(request):
    """Attach the metrics snapshot to every benchmark result."""
    # Resolve the fixture up front: during teardown it may already be
    # finalized and getfixturevalue() would raise.
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    if benchmark is None:
        return
    sidecar = _write_metrics_sidecar(request.node.name)
    benchmark.extra_info["metrics_json"] = str(sidecar)
    benchmark.extra_info["metrics_series"] = len(get_registry())
