"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
it, and also writes it to ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture.  Run with::

    pytest benchmarks/ --benchmark-only

(Benchmark timing measures the experiment computation itself; the tables
are the scientific output.)
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def save_csv(name: str, headers, rows) -> None:
    """Persist plot-ready CSV data under benchmarks/results/."""
    from repro.analysis import to_csv

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.csv").write_text(to_csv(headers, rows))


@pytest.fixture
def save():
    return save_result


@pytest.fixture
def save_data():
    return save_csv
