"""Extension — silicon budgets: SRAM buffer sizing and inference energy.

Two deployment-facing artifacts from the extension models:

* minimum double-buffered SRAM for stall-free execution (the latency
  model's "operands always ready" assumption, priced in KiB);
* energy per inference, split into MAC / data movement / static, for the
  baselines and their FuSe-Half transforms — on the paper's FP16 array
  and on the same array with 8-bit PEs (int8 MACs, int32 accumulation),
  matching the compiled int8 inference plans.

Cycle counts are identical at both datawidths (same array, same fold
schedule); energy is not — int8 MACs are ~5x cheaper and SRAM traffic
moves half the bits, so the 8-bit columns quantify what the quantized
serving path buys in silicon terms.
"""

from repro.analysis import format_table
from repro.core import FuSeVariant, to_fuseconv
from repro.hw import energy_report
from repro.models import PAPER_NETWORKS, build_model
from repro.systolic import PAPER_ARRAY, network_buffer_requirement

INT8_ARRAY = PAPER_ARRAY.with_datawidth(8)


def _measure():
    rows = []
    for name in PAPER_NETWORKS:
        baseline = build_model(name)
        fuse = to_fuseconv(baseline, FuSeVariant.HALF, PAPER_ARRAY)
        buffers = network_buffer_requirement(baseline, PAPER_ARRAY)
        base_energy = energy_report(baseline, PAPER_ARRAY)
        fuse_energy = energy_report(fuse, PAPER_ARRAY)
        base_int8 = energy_report(baseline, INT8_ARRAY)
        fuse_int8 = energy_report(fuse, INT8_ARRAY)
        rows.append(
            (
                name,
                buffers.total_kib,
                base_energy.total_uj,
                fuse_energy.total_uj,
                base_energy.total_uj / fuse_energy.total_uj,
                base_int8.total_uj,
                fuse_int8.total_uj,
                fuse_energy.total_uj / fuse_int8.total_uj,
            )
        )
    return rows


def test_buffers_and_energy(benchmark, save):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_table(
        ["network", "SRAM (KiB)", "baseline uJ", "FuSe-Half uJ",
         "energy gain", "base int8 uJ", "FuSe int8 uJ", "int8 gain"],
        [
            [name, f"{kib:.0f}", f"{base:.0f}", f"{fuse:.0f}",
             f"{gain:.2f}x", f"{b8:.0f}", f"{f8:.0f}", f"{g8:.2f}x"]
            for name, kib, base, fuse, gain, b8, f8, g8 in rows
        ],
        title="Extension — buffer sizing and energy per inference "
              "(64x64, FP16 vs int8 PEs)",
    )
    save("buffers_energy", text)

    for name, kib, base, fuse, gain, b8, f8, g8 in rows:
        assert 4 < kib < 4096, name          # sane SRAM ballpark
        assert gain > 1.5, name               # FuSe saves real energy
        assert b8 < base and f8 < fuse, name  # 8-bit PEs always cheaper
        assert g8 > 1.5, name                 # int8 at least halves energy
