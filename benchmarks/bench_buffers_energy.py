"""Extension — silicon budgets: SRAM buffer sizing and inference energy.

Two deployment-facing artifacts from the extension models:

* minimum double-buffered SRAM for stall-free execution (the latency
  model's "operands always ready" assumption, priced in KiB);
* energy per inference, split into MAC / data movement / static, for the
  baselines and their FuSe-Half transforms.
"""

from repro.analysis import format_table
from repro.core import FuSeVariant, to_fuseconv
from repro.hw import energy_report
from repro.models import PAPER_NETWORKS, build_model
from repro.systolic import PAPER_ARRAY, network_buffer_requirement


def _measure():
    rows = []
    for name in PAPER_NETWORKS:
        baseline = build_model(name)
        fuse = to_fuseconv(baseline, FuSeVariant.HALF, PAPER_ARRAY)
        buffers = network_buffer_requirement(baseline, PAPER_ARRAY)
        base_energy = energy_report(baseline, PAPER_ARRAY)
        fuse_energy = energy_report(fuse, PAPER_ARRAY)
        rows.append(
            (
                name,
                buffers.total_kib,
                base_energy.total_uj,
                fuse_energy.total_uj,
                base_energy.total_uj / fuse_energy.total_uj,
            )
        )
    return rows


def test_buffers_and_energy(benchmark, save):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_table(
        ["network", "SRAM (KiB)", "baseline uJ", "FuSe-Half uJ", "energy gain"],
        [
            [name, f"{kib:.0f}", f"{base:.0f}", f"{fuse:.0f}", f"{gain:.2f}x"]
            for name, kib, base, fuse, gain in rows
        ],
        title="Extension — buffer sizing and energy per inference (64x64)",
    )
    save("buffers_energy", text)

    for name, kib, base, fuse, gain in rows:
        assert 4 < kib < 4096, name          # sane SRAM ballpark
        assert gain > 1.5, name               # FuSe saves real energy