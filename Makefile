# Convenience targets; everything is plain pip + pytest underneath.

.PHONY: install dev test bench results examples clean

install:
	pip install -e .

dev:
	pip install -e .[dev]

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate every paper table/figure from scratch (benchmarks/results/).
results:
	rm -rf benchmarks/results
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/ria_synthesis.py
	python examples/visualize_dataflow.py
	python examples/transform_mobilenet.py
	python examples/design_space.py
	python examples/nos_search.py
	python examples/train_fuse_classifier.py --quick
	python examples/deploy_pipeline.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
