# Convenience targets; everything is plain pip + pytest underneath.

.PHONY: install dev test trace-smoke bench-smoke serve-smoke compile-smoke quantize-smoke sparsity-smoke chaos-smoke telemetry-smoke fleet-smoke gray-smoke bench results examples clean

install:
	pip install -e .

dev:
	pip install -e .[dev]

test: trace-smoke bench-smoke serve-smoke compile-smoke quantize-smoke sparsity-smoke chaos-smoke telemetry-smoke fleet-smoke gray-smoke
	pytest tests/

# Capture one trace + metrics sidecar and validate both against their
# schemas (docs/observability.md) — cheap end-to-end observability check.
trace-smoke:
	python -m repro latency mobilenet_v3_small --resolution 96 --array 32 \
		--quiet --trace-out .smoke-trace.json --metrics-out .smoke-metrics.json
	python -m repro.obs.validate .smoke-trace.json .smoke-metrics.json
	rm -f .smoke-trace.json .smoke-metrics.json

# Performance smoke (each step under a hard time budget):
#  1. regression guard — the vectorized wavefront engine must stay >=5x
#     the reference stepper on every dataflow (and bit-exact);
#  2. a tiny sweep through the process pool (--jobs 2) with a cold then
#     warm analytical disk cache (--cache-dir).
bench-smoke:
	timeout 180 python -m repro.systolic.bench --size 32 --repeats 2 \
		--min-speedup 5
	rm -rf .smoke-cache
	timeout 180 python -m repro latency mobilenet_v3_small --resolution 96 \
		--array 32 --jobs 2 --cache-dir .smoke-cache --quiet
	timeout 60 python -m repro latency mobilenet_v3_small --resolution 96 \
		--array 32 --jobs 2 --cache-dir .smoke-cache --quiet
	rm -rf .smoke-cache

# Serving smoke (docs/serving.md): an in-process server takes 50
# closed-loop requests across two models; --check fails the target on any
# errored request or missing SLO accounting, and the metrics sidecar must
# validate and carry the serve.loadgen.* report gauges.
serve-smoke:
	timeout 180 python -m repro loadgen mobilenet_v3_small mobilenet_v1 \
		--resolution 32 --requests 50 --clients 4 --max-batch 8 \
		--slo-ms 1000 --check --quiet --metrics-out .smoke-serve.json
	python -m repro.obs.validate .smoke-serve.json
	python -c "import json,sys; names={m['name'] for m in json.load(open('.smoke-serve.json'))['metrics']}; missing=[n for n in ('serve.loadgen.throughput_rps','serve.loadgen.p99_ms','serve.loadgen.shed_rate','serve.loadgen.slo_violation_rate') if n not in names]; sys.exit('missing gauges: %s' % missing if missing else 0)"
	rm -f .smoke-serve.json

# Chaos smoke (docs/robustness.md): a seeded fault schedule — engine
# errors and latency spikes, a worker crash, a plan-compile failure,
# garbage frames and a client disconnect — drives the full TCP serving
# path; --check fails the target unless every resilience bound held
# (zero unhandled exceptions, >=99% of non-shed requests answered OK,
# server healthy afterwards, p99 under the degradation bound).  The same
# seed replays the same fault schedule and request stream; the metrics
# sidecar (faults.injected.*, resilience.*, serve.chaos.*) is committed
# as the reference run.
chaos-smoke:
	timeout 300 python -m repro loadgen mobilenet_v3_small:full \
		--resolution 32 --requests 120 --clients 6 --workers 2 \
		--slo-ms 400 --chaos --check --quiet \
		--metrics-out benchmarks/results/BENCH_chaos.json
	python -m repro.obs.validate benchmarks/results/BENCH_chaos.json
	python -c "import json,sys; names={m['name'] for m in json.load(open('benchmarks/results/BENCH_chaos.json'))['metrics']}; missing=[n for n in ('serve.chaos.answered_rate','serve.chaos.faults_fired','serve.chaos.unhandled_failures','resilience.degraded_responses') if n not in names]; sys.exit('missing gauges: %s' % missing if missing else 0)"

# Telemetry smoke (docs/observability.md): a short traced loadgen run
# must leave (1) a metrics sidecar that renders to parseable Prometheus
# exposition with the snapshot loop advanced past its start/stop samples
# and every burn-rate alert evaluated, and (2) a trace sidecar whose
# request spans form linked admit->queue->request chains in Perfetto.
telemetry-smoke:
	timeout 180 python -m repro loadgen mobilenet_v3_small --resolution 32 \
		--requests 40 --clients 4 --slo-ms 1000 --snapshot-interval 0.1 \
		--check --quiet --trace-out .smoke-telemetry-trace.json \
		--metrics-out .smoke-telemetry-metrics.json
	python -m repro.obs.validate .smoke-telemetry-trace.json .smoke-telemetry-metrics.json
	python -c "import json; from repro.obs.expose import render_exposition_dict, parse_exposition; p=parse_exposition(render_exposition_dict(json.load(open('.smoke-telemetry-metrics.json')))); taken=p.value('repro_obs_snapshots_taken'); assert taken is not None and taken > 2, 'snapshot loop did not advance: %r' % taken; ok=p.value('repro_serve_loadgen_ok'); assert ok and ok >= 40, 'exposition missing ok requests: %r' % ok; assert p.value('repro_serve_loadgen_alert_firing', rule='shed-burn') is not None, 'burn-rate alerts were not evaluated'"
	python -c "import json; from repro.obs.tracing import span_topology; topo=span_topology(json.load(open('.smoke-telemetry-trace.json'))['traceEvents']); assert topo, 'no linked request traces recorded'; names={n for shape in topo for n, _ in shape}; assert {'serve.admit', 'serve.queue', 'serve.request'} <= names, 'incomplete request chains: %s' % sorted(names)"
	rm -f .smoke-telemetry-trace.json .smoke-telemetry-metrics.json

# Fleet smoke (docs/fleet.md): four replicas behind the consistent-hash
# router take a seeded workload while one replica is killed mid-run;
# --check fails the target unless every fleet bound held (zero unhandled
# errors, >=99% of non-shed requests answered, only the victim's lanes
# moved, same-seed replay fingerprint identical) and the metrics sidecar
# must carry the fleet.chaos.* / fleet.router.* series.  The scaling
# comparison (single node vs 4 replicas, core-count-honest gates) is
# regenerated by bench_fleet.py into benchmarks/results/BENCH_fleet.json.
fleet-smoke:
	timeout 300 python -m repro loadgen mobilenet_v3_small --resolution 32 \
		--requests 120 --clients 6 --workers 2 --engine analytical \
		--slo-ms 1000 --chaos --fleet 4 --check --quiet \
		--metrics-out .smoke-fleet.json
	python -m repro.obs.validate .smoke-fleet.json
	python -c "import json,sys; names={m['name'] for m in json.load(open('.smoke-fleet.json'))['metrics']}; missing=[n for n in ('fleet.chaos.answered_rate','fleet.chaos.reroutes','fleet.chaos.unhandled_failures','fleet.router.requests') if n not in names]; sys.exit('missing gauges: %s' % missing if missing else 0)"
	rm -f .smoke-fleet.json
	timeout 300 python benchmarks/bench_fleet.py --smoke

# Gray-failure smoke (docs/robustness.md): the gray drill — one replica's
# forward hop stalled ~20x its healthy p50 under live traffic — must hold
# every resilience bound (client-wall p99 within 1.5x of the healthy
# baseline, zero duplicate responses, zero unhandled errors, the victim
# detected SLOW, hedges == wins + losses, identical same-seed fingerprint)
# and the warm-gated scale-up must serve nothing cold and compile nothing
# after its gate opens.  The hedging on/off ablation result is written to
# benchmarks/results/BENCH_gray.json.
gray-smoke:
	timeout 300 python benchmarks/bench_hedging.py --smoke
	timeout 300 python -m repro loadgen mobilenet_v3_small --resolution 32 \
		--requests 120 --clients 4 --engine analytical --slo-ms 30000 \
		--gray --check --quiet

# Compiled-runtime smoke (docs/runtime.md): the exact plan must stay
# bit-identical to eager, the folded plan within 1e-4, and faster than
# eager (the full >=2x claim is asserted by bench_compile.py under
# pytest-benchmark; the smoke floor tolerates loaded CI hosts).  Writes
# benchmarks/results/BENCH_compile.json.
compile-smoke:
	timeout 180 python benchmarks/bench_compile.py --smoke

# Int8 quantization smoke (docs/runtime.md): trains V3-Small on the
# synthetic task (~1 min), calibrates the int8 plan on the training
# batches, and gates the acceptance claims — >=1.3x over the folded
# float plan at batch 8 with <=1pp top-1 drop on the held-out split.
# Writes benchmarks/results/BENCH_quantize.json.
quantize-smoke:
	timeout 300 python benchmarks/bench_quantize.py --smoke

# Sparsity + column-combining smoke (docs/performance.md): trains
# V3-Small, prunes to 75% with the pass pipeline, fine-tunes under the
# masks, and gates the acceptance claims — >=1.5x analytical packed
# speedup at γ=8 on a 32x32 array, <=1pp top-1 drop after fine-tune,
# and the γ=1 identity packing within 1% of the dense schedule.
# Writes benchmarks/results/BENCH_sparsity.json.
sparsity-smoke:
	timeout 900 python benchmarks/bench_sparsity.py --smoke

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate every paper table/figure from scratch (benchmarks/results/).
results:
	rm -rf benchmarks/results
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/ria_synthesis.py
	python examples/visualize_dataflow.py
	python examples/transform_mobilenet.py
	python examples/design_space.py
	python examples/nos_search.py
	python examples/train_fuse_classifier.py --quick
	python examples/deploy_pipeline.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
