# Convenience targets; everything is plain pip + pytest underneath.

.PHONY: install dev test trace-smoke bench results examples clean

install:
	pip install -e .

dev:
	pip install -e .[dev]

test: trace-smoke
	pytest tests/

# Capture one trace + metrics sidecar and validate both against their
# schemas (docs/observability.md) — cheap end-to-end observability check.
trace-smoke:
	python -m repro latency mobilenet_v3_small --resolution 96 --array 32 \
		--quiet --trace-out .smoke-trace.json --metrics-out .smoke-metrics.json
	python -m repro.obs.validate .smoke-trace.json .smoke-metrics.json
	rm -f .smoke-trace.json .smoke-metrics.json

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate every paper table/figure from scratch (benchmarks/results/).
results:
	rm -rf benchmarks/results
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/ria_synthesis.py
	python examples/visualize_dataflow.py
	python examples/transform_mobilenet.py
	python examples/design_space.py
	python examples/nos_search.py
	python examples/train_fuse_classifier.py --quick
	python examples/deploy_pipeline.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
