"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands:

* ``models``    — list the model zoo;
* ``summary``   — layer table, MACs and params of one model;
* ``latency``   — cycles/ms of a model (optionally FuSe-transformed) on a
  configurable systolic array;
* ``table1``    — regenerate Table I (counts + speed-ups) on the terminal;
* ``simulate``  — push real values through the functional PE-grid
  simulator (``--engine vector|reference``) and check them against the
  analytical cycle model;
* ``ria``       — classify an algorithm (or all) under the RIA formalism;
* ``overhead``  — broadcast-link area/power overhead for an array size;
* ``nos``       — per-layer operator search under a latency budget;
* ``compile-stats`` — compile a model into a static inference plan and
  report what folding/fusion/arena planning did (``docs/runtime.md``);
* ``serve``     — async dynamic-batching inference server (JSON-lines TCP)
  with SLO-aware scheduling over the model zoo (``docs/serving.md``);
* ``loadgen``   — deterministic closed/open-loop load generation against
  an in-process server or a running ``serve`` instance (``--connect``);
* ``top``       — live terminal telemetry (QPS, windowed percentiles,
  shed/burn-rate alerts) scraped from a running ``serve`` over the wire
  protocol's ``op: metrics``.

Every subcommand accepts the observability options (after the command
name): ``--trace-out FILE`` dumps a Chrome-trace JSON of the run,
``--metrics-out FILE`` a metrics JSON sidecar (``-`` = stdout for both),
``--log-level`` / ``--quiet`` control the structured diagnostics on
stderr.  Result tables always stay on stdout.  ``repro --version`` prints
the toolkit version and git SHA.  See ``docs/observability.md``.

Sweep commands (``latency``, ``table1``, ``simulate``) additionally take
``--jobs N`` (process-pool fan-out; 0 = all cores) and ``--cache-dir DIR``
(on-disk latency memo) — see ``docs/performance.md``.  ``--trace-out``
forces ``--jobs 1``: spans cannot cross process boundaries.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import Counter
from typing import List, Optional

from . import obs
from .analysis import format_table, table1
from .core import FuSeVariant, to_fuseconv
from .hw import broadcast_overhead, energy_report
from .models import available_models, build_model
from .nos import search_operators
from .ria import ALGORITHMS, check_ria
from .systolic import (
    ENGINES,
    ArrayConfig,
    estimate_network,
    network_buffer_requirement,
    traffic_report,
)

_VARIANTS = {
    "full": FuSeVariant.FULL,
    "half": FuSeVariant.HALF,
    "full_50": FuSeVariant.FULL_50,
    "half_50": FuSeVariant.HALF_50,
}

log = obs.get_logger("cli")


def _array_from_args(args: argparse.Namespace) -> ArrayConfig:
    return ArrayConfig.square(
        args.array,
        dataflow=args.dataflow,
        datawidth=getattr(args, "datawidth", 16),
        pipelined_folds=args.pipelined,
    )


def _add_array_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--array", type=int, default=64,
                        help="square array size (default 64)")
    parser.add_argument("--dataflow", choices=("os", "ws", "is"), default="os",
                        help="GEMM dataflow (default os, as in the paper)")
    parser.add_argument("--pipelined", action="store_true",
                        help="enable fold pipelining (calibration knob)")
    parser.add_argument("--datawidth", type=int, choices=(8, 16), default=16,
                        help="PE datapath width in bits: 16 = FP16 MACs "
                             "(paper), 8 = int8 MACs with int32 accumulation "
                             "(changes energy/area, not cycles)")


def _add_parallel_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("performance")
    group.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for the sweep (default "
                            "$REPRO_JOBS or 1; 0 = all cores)")
    group.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="on-disk memo cache for latency estimates "
                            "(shared across runs; see docs/performance.md)")


def _effective_jobs(args: argparse.Namespace) -> Optional[int]:
    """The ``--jobs`` value, forced to 1 (with a warning) under tracing."""
    jobs = getattr(args, "jobs", None)
    if args.trace_out and jobs not in (None, 1):
        log.warning("tracing forces --jobs 1 (spans cannot cross processes)",
                    requested=jobs)
        return 1
    return jobs


def _obs_options() -> argparse.ArgumentParser:
    """Shared observability options, attached to every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write a Chrome-trace JSON of this run "
                            "('-' = stdout; open in Perfetto)")
    group.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write a metrics JSON sidecar ('-' = stdout)")
    group.add_argument("--log-level", choices=sorted(obs.logs.LEVELS),
                       default="info", help="diagnostic log level (stderr)")
    group.add_argument("--quiet", action="store_true",
                       help="suppress diagnostics (tables still print)")
    return parent


def _add_model_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("model", nargs="?", default=None,
                        help="model name (see 'repro models')")
    parser.add_argument("--net", metavar="MODEL", default=None,
                        help="model name (alternative to the positional)")


def _model_name(args: argparse.Namespace) -> str:
    name = args.net or args.model
    if name is None:
        raise ValueError("no model given (positional MODEL or --net)")
    # Accept paper-style spellings like 'mobilenet-v2'.
    return name.replace("-", "_")


def cmd_models(args: argparse.Namespace) -> int:
    for name in available_models():
        print(name)
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    net = build_model(_model_name(args), resolution=args.resolution)
    if args.variant:
        net = to_fuseconv(net, _VARIANTS[args.variant])
    if args.dot:
        from .ir import network_to_dot

        with open(args.dot, "w") as handle:
            handle.write(network_to_dot(net))
        log.info("wrote DOT graph", path=args.dot, network=net.name)
        return 0
    print(net.summary())
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    array = _array_from_args(args)
    name = _model_name(args)
    variants = (
        (_VARIANTS[args.variant],) if args.variant else tuple(_VARIANTS.values())
    )
    measured = table1(
        networks=(name,),
        variants=variants,
        array=array,
        jobs=_effective_jobs(args),
        cache_dir=args.cache_dir,
        resolution=args.resolution,
    )
    rows = [
        [
            row.variant or "baseline",
            f"{row.macs_millions:.0f}",
            f"{row.params_millions:.2f}",
            f"{row.cycles:,}",
            f"{row.latency_ms:.3f}",
            f"{row.speedup:.2f}x",
        ]
        for row in measured
    ]
    print(format_table(
        ["variant", "MACs(M)", "params(M)", "cycles", "ms", "speedup"],
        rows,
        title=f"{name} on a {array.rows}x{array.cols} array "
              f"({array.dataflow}, {'pipelined' if array.pipelined_folds else 'conservative'})",
    ))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    rows = []
    for row in table1(jobs=_effective_jobs(args), cache_dir=args.cache_dir):
        paper = row.paper
        rows.append([
            row.network,
            row.variant or "baseline",
            f"{row.macs_millions:.0f}",
            f"{row.params_millions:.2f}",
            f"{row.speedup:.2f}x",
            f"{paper.speedup:.2f}x" if paper else "-",
        ])
    print(format_table(
        ["network", "variant", "MACs(M)", "params(M)", "speedup", "paper"],
        rows,
        title="Table I (measured; 64x64 output-stationary array)",
    ))
    return 0


def cmd_sparsity(args: argparse.Namespace) -> int:
    from .analysis import format_table
    from .analysis.sparsity import packing_advantage, sparsity_sweep

    networks = [_model_name(args)] if (args.net or args.model) else [
        "mobilenet_v3_small"]
    sparsities = [float(s) for s in args.sparsities.split(",") if s]
    gammas = [int(g) for g in args.gammas.split(",") if g]
    sizes = [int(s) for s in args.sizes.split(",") if s]
    rows = sparsity_sweep(
        networks=networks, sparsities=sparsities, gammas=gammas,
        sizes=sizes, seed=args.seed, cache_dir=args.cache_dir,
        resolution=args.resolution,
    )
    print(format_table(
        ["network", "variant", "sparsity", "γ", "array", "dense",
         "packed", "speedup", "dw-ratio", "dropped"],
        [[r.network, r.variant or "baseline", f"{r.sparsity:.0%}",
          str(r.gamma), f"{r.rows}x{r.rows}", str(r.dense_cycles),
          str(r.packed_cycles), f"{r.speedup:.2f}x",
          f"{r.dw_packed_ratio:.2f}", f"{r.dw_drop_fraction:.0%}"]
         for r in rows],
        title="Sparsity x column-combining sweep (analytical; "
              "dw-ratio = packed/dense cycles of depthwise-class compute, "
              "dropped = fully-eliminated channels)",
    ))
    pairs = packing_advantage(rows)
    if pairs:
        print()
        print(format_table(
            ["network", "sparsity", "γ", "array", "variant",
             "ratio 2D/FuSe", "dropped 2D/FuSe", "packed cyc 2D/FuSe"],
            [[a.network, f"{a.sparsity:.0%}", str(a.gamma),
              f"{a.rows}x{a.rows}", a.variant,
              f"{a.base_ratio:.2f} / {a.fuse_ratio:.2f}",
              f"{a.base_drop_fraction:.0%} / {a.fuse_drop_fraction:.0%}",
              f"{a.base_packed_cycles} / {a.fuse_packed_cycles}"]
             for a in pairs],
            title="Packing comparison on depthwise-class compute: FuSe's "
                  "independent rows vanish when fully pruned and stay "
                  "cheaper absolute; the 2D schedule recovers a larger "
                  "fraction of its (much larger) dense cost",
        ))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    import numpy as np

    from .systolic.executor import ArrayNetworkExecutor

    array = _array_from_args(args)
    net = _net_for(args)
    executor = ArrayNetworkExecutor(
        net, array=array, seed=args.seed,
        engine=args.engine, jobs=_effective_jobs(args) or 1,
    )
    x = np.random.default_rng(args.seed).standard_normal(net.input_shape)
    start = time.perf_counter()
    run = executor.run(x)
    elapsed = time.perf_counter() - start
    mismatches = [layer for layer in run.layers if not layer.consistent]
    print(f"{net.name} on {array.rows}x{array.cols} "
          f"({array.dataflow}, engine={executor.engine}, jobs={executor.jobs}):")
    print(f"  cycles      : {run.cycles:,}")
    print(f"  latency     : {array.cycles_to_ms(run.cycles):.3f} ms @ "
          f"{array.frequency_mhz:.0f} MHz")
    print(f"  array layers: {len(run.layers)}")
    print(f"  model check : "
          f"{'all layers match the analytical model' if run.all_cycles_consistent else f'{len(mismatches)} layer(s) diverge'}")
    print(f"  wall clock  : {elapsed:.2f} s")
    return 0 if run.all_cycles_consistent else 1


def cmd_ria(args: argparse.Namespace) -> int:
    names = [args.algorithm] if args.algorithm else sorted(ALGORITHMS)
    status = 0
    for name in names:
        try:
            builder = ALGORITHMS[name]
        except KeyError:
            print(f"unknown algorithm {name!r}; choose from: "
                  f"{', '.join(sorted(ALGORITHMS))}", file=sys.stderr)
            return 2
        print(check_ria(builder()).explain())
        print()
    return status


def cmd_overhead(args: argparse.Namespace) -> int:
    width = getattr(args, "datawidth", 16)
    report = broadcast_overhead(args.size, datawidth=width)
    print(f"{args.size}x{args.size} array, {width}-bit PEs, "
          f"45nm structural model:")
    print(f"  area overhead : {report.area_overhead * 100:.2f}%  (paper: 4.35% @32x32)")
    print(f"  power overhead: {report.power_overhead * 100:.2f}%  (paper: 2.25% @32x32)")
    return 0


def cmd_nos(args: argparse.Namespace) -> int:
    array = _array_from_args(args)
    net = build_model(_model_name(args), resolution=args.resolution)
    result = search_operators(net, latency_budget=args.budget, array=array)
    mix = Counter(result.choices.values())
    print(f"searched {len(result.choices)} depthwise layers: "
          f"keep={mix[None]} full={mix[1]} half={mix[2]}")
    print(f"searched-layer cycles: {result.cycles:,}  params: {result.params:,}")
    mixed = result.build(net)
    base = estimate_network(net, array).total_cycles
    cycles = estimate_network(mixed, array).total_cycles
    print(f"whole-network speedup: {base / cycles:.2f}x")
    return 0


def _net_for(args: argparse.Namespace):
    net = build_model(_model_name(args), resolution=args.resolution)
    if getattr(args, "variant", None):
        net = to_fuseconv(net, _VARIANTS[args.variant])
    return net


def cmd_traffic(args: argparse.Namespace) -> int:
    array = _array_from_args(args)
    report = traffic_report(_net_for(args), array)
    print(f"{report.network} on {array.rows}x{array.cols}:")
    print(f"  SRAM reads : {report.total_sram_reads:,} values")
    print(f"  SRAM writes: {report.total_sram_writes:,} values")
    print(f"  DRAM bytes : {report.total_dram_bytes:,} (unique operands, FP16)")
    print(f"  read amplification: {report.mean_read_amplification:.2f}x")
    return 0


def cmd_buffers(args: argparse.Namespace) -> int:
    array = _array_from_args(args)
    req = network_buffer_requirement(_net_for(args), array)
    print(f"minimum stall-free SRAM ({array.rows}x{array.cols}, double-buffered):")
    print(f"  input buffer : {req.input_bytes:,} B")
    print(f"  output buffer: {req.output_bytes:,} B")
    print(f"  total        : {req.total_kib:.1f} KiB")
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    array = _array_from_args(args)
    report = energy_report(_net_for(args), array)
    print(f"{report.network} on {array.rows}x{array.cols}: "
          f"{report.total_uj:.1f} uJ / inference")
    print(f"  MAC        : {report.mac_pj / 1e6:.2f} uJ")
    print(f"  SRAM read  : {report.sram_read_pj / 1e6:.2f} uJ")
    print(f"  SRAM write : {report.sram_write_pj / 1e6:.2f} uJ")
    print(f"  static     : {report.static_pj / 1e6:.2f} uJ")
    print(f"  data movement share: {report.movement_fraction * 100:.1f}%")
    return 0


def cmd_compile_stats(args: argparse.Namespace) -> int:
    import numpy as np

    from .nn.compile import CompileConfig, compile_executor
    from .nn.graph import GraphExecutor
    from .nn.tensor import Tensor

    if args.exact and args.int8:
        print("--exact and --int8 are mutually exclusive", file=sys.stderr)
        return 2
    if args.exact and args.sparsity is not None:
        print("--exact and --sparsity are mutually exclusive (the exact "
              "preset is bit-identical to the unpruned forward)",
              file=sys.stderr)
        return 2
    net = _net_for(args)
    executor = GraphExecutor(net, seed=args.seed)
    executor.eval()
    if args.sparsity is not None:
        if args.int8:
            config = CompileConfig.sparse_int8(sparsity=args.sparsity,
                                               gamma=args.gamma)
        else:
            config = CompileConfig.sparse(sparsity=args.sparsity,
                                          gamma=args.gamma)
    elif args.int8:
        config = CompileConfig.int8()
    elif args.exact:
        config = CompileConfig.exact()
    else:
        config = CompileConfig()
    plan = compile_executor(
        executor, (args.batch,) + tuple(net.input_shape), config
    )
    s = plan.stats
    mode = ("int8 (quantized)" if args.int8
            else "exact (bit-identical)" if args.exact else "folded")
    if args.sparsity is not None:
        mode = f"sparse ({mode}, target {args.sparsity:.0%}, γ={args.gamma})"
    print(f"{s.network}: compiled {mode} plan for input {plan.input_shape}")
    print(f"  nodes -> ops : {s.nodes} -> {s.ops}")
    print(f"  folded BN    : {s.folded_bn}")
    print(f"  fused act    : {s.fused_activations}")
    if args.int8:
        print(f"  int8 ops     : {s.int8_ops} "
              f"({s.int8_fallbacks} float fallbacks)")
    if s.params_removed or s.packed_columns:
        print(f"  sparsity     : {s.sparsity:.1%} "
              f"({s.params_removed} params removed)")
        print(f"  packed cols  : {s.packed_columns} "
              f"({s.columns_combined} combined away)")
    print(f"  arena        : {s.arena_bytes / 1024:.0f} KiB "
          f"(pool {s.pooled_bytes / 1024:.0f} KiB, "
          f"naive {s.naive_bytes / 1024:.0f} KiB, "
          f"saving {s.arena_saving * 100:.1f}%)")
    print(f"  compile time : {s.compile_ms:.1f} ms")
    if args.passes:
        print("  passes:")
        if not plan.pass_results:
            print("    (none — the exact preset runs an empty pipeline)")
        for r in plan.pass_results:
            line = (f"    {r.name:<16} {r.ms:>8.2f} ms"
                    f"  params_removed={r.params_removed}"
                    f"  columns_combined={r.columns_combined}")
            if r.details:
                detail = ", ".join(f"{k}={v}" for k, v in r.details.items())
                line += f"  ({detail})"
            print(line)
    if args.bench:
        x = np.random.default_rng(args.seed + 1).standard_normal(
            plan.input_shape).astype(np.float32)
        ref = executor(Tensor(x)).data
        err = float(np.max(np.abs(
            plan.run(x).astype(np.float64) - ref.astype(np.float64)
        )))

        def best_ms(fn) -> float:
            times = []
            for _ in range(args.bench):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times) * 1000.0

        eager_ms = best_ms(lambda: executor(Tensor(x)))
        plan_ms = best_ms(lambda: plan.run(x))
        print(f"  eager        : {eager_ms:.2f} ms  (best of {args.bench})")
        print(f"  plan         : {plan_ms:.2f} ms  "
              f"({eager_ms / plan_ms:.2f}x)")
        print(f"  max |err|    : {err:.3e}"
              + ("  (bit-identical)" if err == 0.0 else ""))
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    from .analysis import execution_timeline

    array = _array_from_args(args)
    timeline = execution_timeline(_net_for(args), array)
    print(timeline.render(top=args.top))
    return 0


def _add_variant_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--variant", "--fuse", dest="variant",
                        choices=sorted(_VARIANTS),
                        help="FuSe variant to apply (alias: --fuse)")


# ------------------------------------------------------------------ serving

def _add_serve_options(parser: argparse.ArgumentParser) -> None:
    """Knobs shared by ``serve`` and in-process ``loadgen``."""
    group = parser.add_argument_group("serving")
    parser.add_argument("models", nargs="*", metavar="MODEL",
                        help="models to serve; 'name' or 'name:variant' "
                             "(default mobilenet_v3_small mobilenet_v1)")
    parser.add_argument("--net", metavar="MODELS", default=None,
                        help="comma-separated model list (alternative to "
                             "the positionals; same name[:variant] syntax)")
    _add_variant_option(parser)
    parser.add_argument("--resolution", type=int, default=64,
                        help="input resolution served (default 64)")
    parser.add_argument("--seed", type=int, default=0,
                        help="weight seed of every served model")
    group.add_argument("--engine", choices=("graph", "array", "analytical"),
                       default="graph",
                       help="batch executor: numpy forward (graph, default), "
                            "functional simulated hardware (array), or cost "
                            "model only (analytical)")
    group.add_argument("--workers", type=int, default=2,
                       help="concurrent batch executors (default 2)")
    group.add_argument("--max-batch", type=int, default=8,
                       help="dynamic batch ceiling (default 8)")
    group.add_argument("--max-queue", type=int, default=128,
                       help="admission bound; beyond it requests are shed "
                            "(default 128)")
    group.add_argument("--slo-ms", type=float, default=200.0,
                       help="default per-request deadline budget (default 200)")
    group.add_argument("--batch-timeout-ms", type=float, default=2.0,
                       help="linger to fill a batch (default 2)")
    group.add_argument("--no-bitexact", dest="bitexact", action="store_false",
                       help="stacked batch execution (faster, float-close "
                            "instead of bit-identical to unbatched)")
    group.add_argument("--int8", action="store_true",
                       help="serve requests on the int8 quantized plan by "
                            "default (requests may also opt in per-request "
                            "with the 'int8' wire field; with loadgen "
                            "--connect the remote server's --int8 governs)")
    group.add_argument("--no-compile", dest="compile", action="store_false",
                       help="eager graph execution instead of compiled "
                            "inference plans (see docs/runtime.md)")
    group.add_argument("--no-resilience", dest="resilience",
                       action="store_false",
                       help="disable the degradation chain, circuit breakers "
                            "and worker restarts (failures surface as "
                            "errors; see docs/robustness.md)")
    group.add_argument("--no-telemetry", dest="telemetry",
                       action="store_false",
                       help="disable the snapshot loop feeding live stats "
                            "and burn-rate alerts (see docs/observability.md)")
    group.add_argument("--snapshot-interval", type=float, default=1.0,
                       metavar="S",
                       help="telemetry sampling cadence in seconds "
                            "(default 1.0)")
    group.add_argument("--metrics-port", type=int, default=None, metavar="P",
                       help="also expose GET /metrics + /telemetry over HTTP "
                            "on this port (0 = ephemeral; default off — "
                            "'op: metrics' on the main port always works)")
    group.add_argument("--plan-cache-cap", type=int, default=None, metavar="N",
                       help="LRU bound on compiled plans kept per model "
                            "across (batch, flavor) keys; evictions count "
                            "as serve.plan_evictions (default unbounded)")
    group.add_argument("--sparsity", type=float, default=None, metavar="F",
                       help="magnitude-prune + column-combine the non-exact "
                            "plan flavors to this fraction (plan metadata "
                            "on the existing flavors; default dense)")
    group.add_argument("--pack-gamma", type=int, default=8, metavar="G",
                       help="column-combining group-size limit for "
                            "--sparsity (default 8; 1 = identity packing)")
    group.add_argument("--require-warmup", action="store_true",
                       help="hold health at warming (unroutable in a fleet) "
                            "until 'op: warmup' has pre-compiled the served "
                            "lanes — the fleet scale-up gate "
                            "(see docs/robustness.md)")
    _add_array_options(parser)
    _add_parallel_options(parser)


def _serve_keys(args: argparse.Namespace) -> list:
    """The ModelKeys named on a serve/loadgen command line."""
    from .serve import ModelKey

    names: List[str] = list(args.models or [])
    if args.net:
        names.extend(part.strip() for part in args.net.split(",") if part.strip())
    if not names:
        names = ["mobilenet_v3_small", "mobilenet_v1"]
    keys = []
    for name in names:
        variant = args.variant
        if ":" in name:
            name, variant = name.split(":", 1)
        name = name.replace("-", "_")
        if variant is not None and variant not in _VARIANTS:
            raise ValueError(
                f"unknown FuSe variant {variant!r}; choose from "
                f"{', '.join(sorted(_VARIANTS))}"
            )
        keys.append(ModelKey(network=name, variant=variant,
                             resolution=args.resolution, seed=args.seed))
    return keys


def _serve_config(args: argparse.Namespace, keys: list):
    from .serve import ServeConfig

    return ServeConfig(
        engine=args.engine,
        workers=args.workers,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        batch_timeout_ms=args.batch_timeout_ms,
        slo_ms=args.slo_ms,
        bitexact=args.bitexact,
        compile=args.compile,
        int8=args.int8,
        jobs=_effective_jobs(args) or 1,
        cache_dir=args.cache_dir,
        plan_cache_cap=args.plan_cache_cap,
        sparsity=args.sparsity,
        pack_gamma=args.pack_gamma,
        array=_array_from_args(args),
        preload=keys,
        require_warmup=getattr(args, "require_warmup", False),
        resilience=args.resilience,
        telemetry=args.telemetry,
        snapshot_interval_s=args.snapshot_interval,
        metrics_port=args.metrics_port,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import InferenceServer, serve_tcp

    keys = _serve_keys(args)
    config = _serve_config(args, keys)

    async def run() -> int:
        server = InferenceServer(config)
        await server.start()
        tcp = await serve_tcp(server, args.host, args.port)
        bound = tcp.sockets[0].getsockname()[1] if tcp.sockets else args.port
        print(f"serving {len(keys)} model(s) on {args.host}:{bound} "
              f"(engine={config.engine}, workers={config.workers}, "
              f"max_batch={config.max_batch}, slo={config.slo_ms:.0f}ms)")
        for key in keys:
            print(f"  - {key.canonical()}")
        if server.metrics_port is not None:
            print(f"metrics exposition on "
                  f"http://{args.host}:{server.metrics_port}/metrics "
                  f"(watch live: repro top --port {bound})")
        try:
            if args.duration and args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()  # until interrupted
        finally:
            tcp.close()
            await tcp.wait_closed()
            await server.stop()
            stats = server.stats()
            print(f"served: ok={stats['requests_ok']} "
                  f"shed={stats['requests_shed']} "
                  f"expired={stats['requests_expired']} "
                  f"errors={stats['requests_error']} "
                  f"batches={stats['batches']}")
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _parse_ramp(text: str):
    """``start:end:steps`` → the WorkloadSpec ramp tuple."""
    parts = text.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"--ramp wants START:END:STEPS (e.g. 20:200:5), got {text!r}")
    return (float(parts[0]), float(parts[1]), int(parts[2]))


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import InferenceServer, WorkloadSpec, run_workload

    keys = _serve_keys(args)
    ramp = _parse_ramp(args.ramp) if args.ramp else None
    spec = WorkloadSpec(
        keys=keys,
        requests=args.requests,
        mode="open" if ramp else args.mode,  # ramps are open-loop
        clients=args.clients,
        rate=args.rate,
        slo_ms=None,  # server default (--slo-ms) applies
        seed=args.workload_seed,
        ramp=ramp,
    )

    if args.chaos or args.gray:
        if args.connect:
            print("--chaos/--gray run their own in-process servers; "
                  "drop --connect", file=sys.stderr)
            return 2
        chaos_seed = (args.chaos_seed if args.chaos_seed is not None
                      else args.workload_seed)
        p99_bound = (args.chaos_p99_ms if args.chaos_p99_ms is not None
                     else 2.0 * args.slo_ms)
        if args.gray:
            from .fleet import run_gray_chaos

            chaos = asyncio.run(run_gray_chaos(
                spec,
                replicas=args.fleet or 3,
                config=_serve_config(args, keys),
            ))
        elif args.fleet:
            from .fleet import run_fleet_chaos

            chaos = asyncio.run(run_fleet_chaos(
                spec,
                replicas=args.fleet,
                config=_serve_config(args, keys),
                max_p99_ms=p99_bound,
            ))
        else:
            from .serve import default_chaos_plan, run_chaos

            chaos = asyncio.run(run_chaos(
                spec,
                plan=default_chaos_plan(chaos_seed),
                config=_serve_config(args, keys),
                max_p99_ms=p99_bound,
            ))
        print(chaos.render())
        if args.check:
            failures = chaos.check()
            if failures:
                print("chaos check FAILED: " + "; ".join(failures),
                      file=sys.stderr)
                return 1
            print("chaos check ok: all resilience bounds held")
        return 0

    async def run() -> "object":
        if args.connect:
            from .serve import RemoteClient

            host, _, port = args.connect.rpartition(":")
            client = RemoteClient(host or "127.0.0.1", int(port))
            await client.connect()
            try:
                return await run_workload(client.submit, spec)
            finally:
                await client.close()
        if args.fleet:
            # An in-process fleet: N replicas behind a router, every
            # request crossing real loopback sockets through both hops.
            from .fleet import FleetRouter, FleetSupervisor, RouterConfig
            from .serve import RemoteClient

            supervisor = FleetSupervisor(
                base_config=_serve_config(args, keys), mode="inproc")
            endpoints = [await supervisor.spawn()
                         for _ in range(args.fleet)]
            router = FleetRouter(endpoints,
                                 RouterConfig(seed=args.workload_seed))
            await router.start()
            client = RemoteClient("127.0.0.1", router.port)
            try:
                await client.connect()
                return await run_workload(client.submit, spec)
            finally:
                await client.close()
                await router.stop()
                await supervisor.stop()
        server = InferenceServer(_serve_config(args, keys))
        async with server:
            report = await run_workload(server.submit, spec)
            return report.attach_alerts(server.alerts())

    report = asyncio.run(run())
    print(report.render())
    if args.check:
        problems = []
        if report.errors:
            problems.append(f"{report.errors} request(s) errored")
        if report.ok == 0:
            problems.append("no request completed")
        if report.ok and report.p50_ms <= 0:
            problems.append("SLO accounting missing (p50 is zero)")
        if problems:
            print("loadgen check FAILED: " + "; ".join(problems),
                  file=sys.stderr)
            return 1
        print("loadgen check ok: zero errors, SLO accounting present")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.top import run_top

    ports = None
    if args.ports:
        ports = [int(p) for p in args.ports.split(",") if p.strip()]
    try:
        rendered = asyncio.run(run_top(
            host=args.host,
            port=args.port,
            interval_s=args.interval,
            frames=args.frames,
            ports=ports,
            fleet=args.fleet,
        ))
    except KeyboardInterrupt:
        return 0
    if args.frames and rendered < args.frames:
        print(f"top: rendered {rendered}/{args.frames} frames "
              f"(server unreachable?)", file=sys.stderr)
        return 1
    return 0


def _replica_serve_argv(args: argparse.Namespace) -> List[str]:
    """The ``repro serve`` argv tail replicating this command's knobs."""
    argv: List[str] = list(args.models or [])
    if args.net:
        argv += ["--net", args.net]
    if args.variant is not None:
        argv += ["--variant", args.variant]
    argv += [
        "--resolution", str(args.resolution), "--seed", str(args.seed),
        "--engine", args.engine, "--workers", str(args.workers),
        "--max-batch", str(args.max_batch),
        "--max-queue", str(args.max_queue),
        "--slo-ms", str(args.slo_ms),
        "--batch-timeout-ms", str(args.batch_timeout_ms),
        "--quiet",
    ]
    if args.int8:
        argv.append("--int8")
    if not args.compile:
        argv.append("--no-compile")
    if not args.bitexact:
        argv.append("--no-bitexact")
    if not args.resilience:
        argv.append("--no-resilience")
    if args.plan_cache_cap is not None:
        argv += ["--plan-cache-cap", str(args.plan_cache_cap)]
    if args.sparsity is not None:
        argv += ["--sparsity", str(args.sparsity),
                 "--pack-gamma", str(args.pack_gamma)]
    return argv


def cmd_fleet(args: argparse.Namespace) -> int:
    import asyncio

    from .fleet import (
        Autoscaler,
        AutoscalerPolicy,
        FleetRouter,
        FleetSupervisor,
        RouterConfig,
        price_capacity_qps,
    )

    keys = _serve_keys(args)
    config = _serve_config(args, keys)

    async def run() -> int:
        supervisor = FleetSupervisor(
            base_config=config,
            mode=args.replica_mode,
            serve_argv=_replica_serve_argv(args),
        )
        router = FleetRouter([], RouterConfig(seed=args.seed))
        autoscaler = None
        try:
            for _ in range(args.replicas):
                router.add_replica(await supervisor.spawn())
            await router.start(args.host, args.port)
            print(f"fleet router on {args.host}:{router.port} — "
                  f"{len(router.links)} replica(s), mode={args.replica_mode}")
            for link in router.links.values():
                print(f"  - {link.replica_id} @ {link.endpoint.address()}")
            if args.autoscale:
                # Price one replica on the first served model: the cost
                # model's analytical estimate needs the built network.
                from .serve import BatchCostModel, ModelRegistry

                model = ModelRegistry().get(keys[0])
                capacity = price_capacity_qps(
                    BatchCostModel(array=config.array,
                                   cache_dir=config.cache_dir),
                    model, config.workers, config.max_batch,
                )
                policy = AutoscalerPolicy(min_replicas=args.min_replicas,
                                          max_replicas=args.max_replicas)
                autoscaler = Autoscaler(router, supervisor,
                                        capacity_qps=capacity,
                                        policy=policy).start()
                print(f"autoscaler on: {capacity:.1f} req/s priced per "
                      f"replica, {args.min_replicas}..{args.max_replicas} "
                      f"replicas")
            print(f"watch live: repro top --port {router.port} --fleet")
            if args.duration and args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()  # until interrupted
        finally:
            if autoscaler is not None:
                await autoscaler.stop()
            view = router.fleet_view()
            await router.stop()
            await supervisor.stop()
            answered = sum(r["answered"] for r in view["replicas"])
            sheds = sum(r["sheds"] for r in view["replicas"])
            print(f"fleet served: answered={answered} sheds={sheds} "
                  f"replicas={view['total']}")
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FuSeConv (DATE 2021) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=obs.version_string())
    common = _obs_options()
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("models", help="list available models", parents=[common])
    p.set_defaults(fn=cmd_models)

    p = sub.add_parser("summary", help="print a model's layer table",
                       parents=[common])
    _add_model_argument(p)
    p.add_argument("--resolution", type=int, default=224)
    _add_variant_option(p)
    p.add_argument("--dot", metavar="FILE",
                   help="write a Graphviz DOT graph instead of the table")
    p.set_defaults(fn=cmd_summary)

    p = sub.add_parser("latency", help="estimate latency and speed-ups",
                       parents=[common])
    _add_model_argument(p)
    p.add_argument("--resolution", type=int, default=224)
    _add_variant_option(p)
    _add_array_options(p)
    _add_parallel_options(p)
    p.set_defaults(fn=cmd_latency)

    p = sub.add_parser("table1", help="regenerate Table I", parents=[common])
    _add_parallel_options(p)
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser(
        "sparsity",
        help="sparsity x column-combining sweep "
             "(FuSe variant x sparsity x array size)",
        parents=[common],
    )
    _add_model_argument(p)
    p.add_argument("--resolution", type=int, default=32)
    p.add_argument("--sparsities", default="0.5,0.75,0.9", metavar="LIST",
                   help="comma-separated magnitude-prune targets "
                        "(default 0.5,0.75,0.9)")
    p.add_argument("--gammas", default="8", metavar="LIST",
                   help="comma-separated column-combining group limits "
                        "(default 8)")
    p.add_argument("--sizes", default="32,64", metavar="LIST",
                   help="comma-separated square array sizes (default 32,64)")
    p.add_argument("--seed", type=int, default=0,
                   help="deterministic weight seed (default 0)")
    _add_parallel_options(p)
    p.set_defaults(fn=cmd_sparsity)

    p = sub.add_parser(
        "simulate",
        help="run real values through the functional PE-grid simulator",
        parents=[common],
    )
    _add_model_argument(p)
    p.add_argument("--resolution", type=int, default=96)
    _add_variant_option(p)
    _add_array_options(p)
    _add_parallel_options(p)
    p.add_argument("--engine", choices=ENGINES, default="vector",
                   help="simulator engine (default vector; reference = "
                        "scalar per-cycle stepper)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for weights and the input tensor")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("ria", help="RIA classification of an algorithm",
                       parents=[common])
    p.add_argument("algorithm", nargs="?")
    p.set_defaults(fn=cmd_ria)

    p = sub.add_parser("overhead", help="broadcast-link area/power overhead",
                       parents=[common])
    p.add_argument("--size", type=int, default=32)
    p.add_argument("--datawidth", type=int, choices=(8, 16), default=16,
                   help="PE datapath width in bits (default 16 = FP16)")
    p.set_defaults(fn=cmd_overhead)

    for cmd, fn, help_text in (
        ("traffic", cmd_traffic, "SRAM/DRAM traffic of a model"),
        ("buffers", cmd_buffers, "minimum stall-free SRAM buffer sizes"),
        ("energy", cmd_energy, "energy per inference"),
    ):
        p = sub.add_parser(cmd, help=help_text, parents=[common])
        _add_model_argument(p)
        p.add_argument("--resolution", type=int, default=224)
        _add_variant_option(p)
        _add_array_options(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser("timeline", help="Gantt view of array occupation",
                       parents=[common])
    _add_model_argument(p)
    p.add_argument("--resolution", type=int, default=224)
    _add_variant_option(p)
    p.add_argument("--top", type=int, default=20,
                   help="show only the N longest layers (0 = all)")
    _add_array_options(p)
    p.set_defaults(fn=cmd_timeline)

    p = sub.add_parser(
        "compile-stats",
        help="compile an inference plan and report fusion/arena statistics",
        parents=[common],
    )
    _add_model_argument(p)
    p.add_argument("--resolution", type=int, default=32)
    _add_variant_option(p)
    p.add_argument("--batch", type=int, default=8,
                   help="batch size the plan is compiled for (default 8)")
    p.add_argument("--seed", type=int, default=0,
                   help="weight seed (and bench-input seed)")
    p.add_argument("--int8", action="store_true",
                   help="compile the int8 quantized plan "
                        "(integer GEMMs; see docs/runtime.md)")
    p.add_argument("--exact", action="store_true",
                   help="bit-exact preset: no folding/fusion "
                        "(output bit-identical to the eager forward)")
    p.add_argument("--sparsity", type=float, default=None, metavar="F",
                   help="magnitude-prune to this fraction and column-"
                        "combine (composes with --int8; see docs/runtime.md)")
    p.add_argument("--gamma", type=int, default=8,
                   help="column-combining group-size limit (default 8; "
                        "1 = identity packing)")
    p.add_argument("--passes", action="store_true",
                   help="print the per-pass pipeline table (timing, params "
                        "removed, columns combined)")
    p.add_argument("--bench", type=int, default=0, metavar="N",
                   help="time N eager-vs-plan repeats and report the "
                        "speedup and max abs error (default off)")
    p.set_defaults(fn=cmd_compile_stats)

    p = sub.add_parser("nos", help="per-layer operator search", parents=[common])
    _add_model_argument(p)
    p.add_argument("--resolution", type=int, default=224)
    p.add_argument("--budget", type=int, default=None,
                   help="latency budget in cycles for the searched layers")
    _add_array_options(p)
    p.set_defaults(fn=cmd_nos)

    p = sub.add_parser(
        "serve",
        help="async dynamic-batching inference server (JSON-lines TCP)",
        parents=[common],
    )
    _add_serve_options(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8707,
                   help="TCP port (0 = ephemeral; default 8707)")
    p.add_argument("--duration", type=float, default=0.0,
                   help="seconds to serve (0 = until Ctrl-C)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="deterministic load generation against a serving instance",
        parents=[common],
    )
    _add_serve_options(p)
    p.add_argument("--requests", type=int, default=500,
                   help="total requests to issue (default 500)")
    p.add_argument("--mode", choices=("closed", "open"), default="closed",
                   help="closed loop (concurrent clients) or open loop "
                        "(Poisson arrivals; exercises shedding)")
    p.add_argument("--clients", type=int, default=8,
                   help="closed-loop virtual users (default 8)")
    p.add_argument("--rate", type=float, default=50.0,
                   help="open-loop arrival rate in req/s (default 50)")
    p.add_argument("--workload-seed", type=int, default=0,
                   help="seed of the deterministic request stream")
    p.add_argument("--connect", metavar="HOST:PORT", default=None,
                   help="target a running 'repro serve' instead of an "
                        "in-process server")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero unless zero errors and SLO "
                        "accounting present (smoke gate)")
    p.add_argument("--chaos", action="store_true",
                   help="drive a seeded fault schedule (repro.faults) "
                        "against an in-process server and assert the "
                        "resilience bounds (see docs/robustness.md)")
    p.add_argument("--chaos-seed", type=int, default=None,
                   help="fault-schedule seed (default: --workload-seed)")
    p.add_argument("--chaos-p99-ms", type=float, default=None,
                   help="p99 degradation bound under chaos "
                        "(default: 2 x --slo-ms)")
    p.add_argument("--gray", action="store_true",
                   help="gray-failure drill: stall one replica's forward "
                        "hop 20x and assert hedging + slow-detection hold "
                        "the fleet p99 within 1.5x of healthy "
                        "(uses --fleet N replicas, default 3; "
                        "see docs/robustness.md)")
    p.add_argument("--ramp", metavar="START:END:STEPS", default=None,
                   help="open-loop stair profile: split the run into STEPS "
                        "slices at rates linspace(START, END) req/s and "
                        "report per-step stats + a saturation estimate "
                        "(implies --mode open)")
    p.add_argument("--fleet", type=int, default=None, metavar="N",
                   help="drive the workload through an in-process fleet of "
                        "N replicas behind a FleetRouter (with --chaos: "
                        "kill a replica mid-run and assert the fleet "
                        "bounds; see docs/fleet.md)")
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser(
        "fleet",
        help="replica fleet behind a consistent-hash router "
             "(see docs/fleet.md)",
        parents=[common],
    )
    _add_serve_options(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8710,
                   help="router TCP port (0 = ephemeral; default 8710)")
    p.add_argument("--replicas", type=int, default=2,
                   help="replicas to start (default 2)")
    p.add_argument("--replica-mode", choices=("process", "inproc"),
                   default="process",
                   help="replicas as 'repro serve' child processes "
                        "(default; true per-replica telemetry) or "
                        "in-process servers (single process, shared "
                        "metrics registry)")
    p.add_argument("--autoscale", action="store_true",
                   help="add/drain replicas from live load, priced by the "
                        "batch cost model")
    p.add_argument("--min-replicas", type=int, default=1,
                   help="autoscaler floor (default 1)")
    p.add_argument("--max-replicas", type=int, default=8,
                   help="autoscaler ceiling (default 8)")
    p.add_argument("--duration", type=float, default=0.0,
                   help="seconds to serve (0 = until Ctrl-C)")
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser(
        "top",
        help="live telemetry view of a running 'repro serve'",
        parents=[common],
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8707,
                   help="serving port to scrape (default 8707)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between frames (default 1)")
    p.add_argument("--frames", type=int, default=None, metavar="N",
                   help="stop after N frames (default: until Ctrl-C)")
    p.add_argument("--ports", metavar="P1,P2,...", default=None,
                   help="scrape several replicas directly and render one "
                        "fleet frame (per-replica columns + totals)")
    p.add_argument("--fleet", action="store_true",
                   help="treat the target as a fleet router: one scrape "
                        "returns every replica's telemetry, rendered as "
                        "a fleet frame")
    p.set_defaults(fn=cmd_top)
    return parser


def _export_artifacts(args: argparse.Namespace) -> None:
    """Write the ``--trace-out`` / ``--metrics-out`` sidecars of one run."""
    array = _array_from_args(args) if hasattr(args, "array") else None
    extra = {"command": args.command}
    if args.trace_out:
        obs.write_trace(args.trace_out, array=array, extra=extra)
        log.info("wrote trace", path=args.trace_out,
                 events=len(obs.get_tracer()))
    if args.metrics_out:
        obs.write_metrics(args.metrics_out, array=array, extra=extra)
        log.info("wrote metrics", path=args.metrics_out,
                 series=len(obs.get_registry()))


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    obs.configure_logging(level=args.log_level, quiet=args.quiet)
    tracer = obs.get_tracer()
    if args.trace_out:
        tracer.clear()
        tracer.enable()
    if args.metrics_out:
        # Fresh run scope so the sidecar describes this invocation only.
        obs.get_registry().reset()
    start = time.perf_counter()
    try:
        with tracer.span("cli.command", category="cli", command=args.command):
            status = args.fn(args)
    except BrokenPipeError:
        return 0  # output piped into a pager/head that closed early
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if args.trace_out:
            tracer.disable()
    log.debug("command finished", command=args.command, status=status,
              seconds=f"{time.perf_counter() - start:.3f}")
    try:
        _export_artifacts(args)
    except OSError as exc:
        print(f"error: cannot write export: {exc}", file=sys.stderr)
        return 2
    return status


if __name__ == "__main__":
    raise SystemExit(main())
