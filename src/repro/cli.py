"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands:

* ``models``    — list the model zoo;
* ``summary``   — layer table, MACs and params of one model;
* ``latency``   — cycles/ms of a model (optionally FuSe-transformed) on a
  configurable systolic array;
* ``table1``    — regenerate Table I (counts + speed-ups) on the terminal;
* ``ria``       — classify an algorithm (or all) under the RIA formalism;
* ``overhead``  — broadcast-link area/power overhead for an array size;
* ``nos``       — per-layer operator search under a latency budget.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import List, Optional

from .analysis import format_table, table1
from .core import FuSeVariant, to_fuseconv
from .hw import broadcast_overhead, energy_report
from .ir import macs_millions, params_millions
from .models import available_models, build_model
from .nos import search_operators
from .ria import ALGORITHMS, check_ria
from .systolic import (
    ArrayConfig,
    estimate_network,
    network_buffer_requirement,
    traffic_report,
)

_VARIANTS = {
    "full": FuSeVariant.FULL,
    "half": FuSeVariant.HALF,
    "full_50": FuSeVariant.FULL_50,
    "half_50": FuSeVariant.HALF_50,
}


def _array_from_args(args: argparse.Namespace) -> ArrayConfig:
    return ArrayConfig.square(
        args.array,
        dataflow=args.dataflow,
        pipelined_folds=args.pipelined,
    )


def _add_array_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--array", type=int, default=64,
                        help="square array size (default 64)")
    parser.add_argument("--dataflow", choices=("os", "ws", "is"), default="os",
                        help="GEMM dataflow (default os, as in the paper)")
    parser.add_argument("--pipelined", action="store_true",
                        help="enable fold pipelining (calibration knob)")


def cmd_models(args: argparse.Namespace) -> int:
    for name in available_models():
        print(name)
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    net = build_model(args.model, resolution=args.resolution)
    if args.variant:
        net = to_fuseconv(net, _VARIANTS[args.variant])
    if args.dot:
        from .ir import network_to_dot

        with open(args.dot, "w") as handle:
            handle.write(network_to_dot(net))
        print(f"wrote {args.dot}")
        return 0
    print(net.summary())
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    array = _array_from_args(args)
    net = build_model(args.model, resolution=args.resolution)
    base = estimate_network(net, array)
    rows = [["baseline", f"{macs_millions(net):.0f}",
             f"{params_millions(net):.2f}", f"{base.total_cycles:,}",
             f"{base.total_ms:.3f}", "1.00x"]]
    variants = (
        [_VARIANTS[args.variant]] if args.variant else list(_VARIANTS.values())
    )
    for variant in variants:
        fuse = to_fuseconv(net, variant, array)
        latency = estimate_network(fuse, array)
        rows.append([
            variant.label,
            f"{macs_millions(fuse):.0f}",
            f"{params_millions(fuse):.2f}",
            f"{latency.total_cycles:,}",
            f"{latency.total_ms:.3f}",
            f"{base.total_cycles / latency.total_cycles:.2f}x",
        ])
    print(format_table(
        ["variant", "MACs(M)", "params(M)", "cycles", "ms", "speedup"],
        rows,
        title=f"{args.model} on a {array.rows}x{array.cols} array "
              f"({array.dataflow}, {'pipelined' if array.pipelined_folds else 'conservative'})",
    ))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    rows = []
    for row in table1():
        paper = row.paper
        rows.append([
            row.network,
            row.variant or "baseline",
            f"{row.macs_millions:.0f}",
            f"{row.params_millions:.2f}",
            f"{row.speedup:.2f}x",
            f"{paper.speedup:.2f}x" if paper else "-",
        ])
    print(format_table(
        ["network", "variant", "MACs(M)", "params(M)", "speedup", "paper"],
        rows,
        title="Table I (measured; 64x64 output-stationary array)",
    ))
    return 0


def cmd_ria(args: argparse.Namespace) -> int:
    names = [args.algorithm] if args.algorithm else sorted(ALGORITHMS)
    status = 0
    for name in names:
        try:
            builder = ALGORITHMS[name]
        except KeyError:
            print(f"unknown algorithm {name!r}; choose from: "
                  f"{', '.join(sorted(ALGORITHMS))}", file=sys.stderr)
            return 2
        print(check_ria(builder()).explain())
        print()
    return status


def cmd_overhead(args: argparse.Namespace) -> int:
    report = broadcast_overhead(args.size)
    print(f"{args.size}x{args.size} array, 45nm structural model:")
    print(f"  area overhead : {report.area_overhead * 100:.2f}%  (paper: 4.35% @32x32)")
    print(f"  power overhead: {report.power_overhead * 100:.2f}%  (paper: 2.25% @32x32)")
    return 0


def cmd_nos(args: argparse.Namespace) -> int:
    array = _array_from_args(args)
    net = build_model(args.model, resolution=args.resolution)
    result = search_operators(net, latency_budget=args.budget, array=array)
    mix = Counter(result.choices.values())
    print(f"searched {len(result.choices)} depthwise layers: "
          f"keep={mix[None]} full={mix[1]} half={mix[2]}")
    print(f"searched-layer cycles: {result.cycles:,}  params: {result.params:,}")
    mixed = result.build(net)
    base = estimate_network(net, array).total_cycles
    cycles = estimate_network(mixed, array).total_cycles
    print(f"whole-network speedup: {base / cycles:.2f}x")
    return 0


def _net_for(args: argparse.Namespace):
    net = build_model(args.model, resolution=args.resolution)
    if getattr(args, "variant", None):
        net = to_fuseconv(net, _VARIANTS[args.variant])
    return net


def cmd_traffic(args: argparse.Namespace) -> int:
    array = _array_from_args(args)
    report = traffic_report(_net_for(args), array)
    print(f"{report.network} on {array.rows}x{array.cols}:")
    print(f"  SRAM reads : {report.total_sram_reads:,} values")
    print(f"  SRAM writes: {report.total_sram_writes:,} values")
    print(f"  DRAM bytes : {report.total_dram_bytes:,} (unique operands, FP16)")
    print(f"  read amplification: {report.mean_read_amplification:.2f}x")
    return 0


def cmd_buffers(args: argparse.Namespace) -> int:
    array = _array_from_args(args)
    req = network_buffer_requirement(_net_for(args), array)
    print(f"minimum stall-free SRAM ({array.rows}x{array.cols}, double-buffered):")
    print(f"  input buffer : {req.input_bytes:,} B")
    print(f"  output buffer: {req.output_bytes:,} B")
    print(f"  total        : {req.total_kib:.1f} KiB")
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    array = _array_from_args(args)
    report = energy_report(_net_for(args), array)
    print(f"{report.network} on {array.rows}x{array.cols}: "
          f"{report.total_uj:.1f} uJ / inference")
    print(f"  MAC        : {report.mac_pj / 1e6:.2f} uJ")
    print(f"  SRAM read  : {report.sram_read_pj / 1e6:.2f} uJ")
    print(f"  SRAM write : {report.sram_write_pj / 1e6:.2f} uJ")
    print(f"  static     : {report.static_pj / 1e6:.2f} uJ")
    print(f"  data movement share: {report.movement_fraction * 100:.1f}%")
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    from .analysis import execution_timeline

    array = _array_from_args(args)
    timeline = execution_timeline(_net_for(args), array)
    print(timeline.render(top=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FuSeConv (DATE 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list available models").set_defaults(fn=cmd_models)

    p = sub.add_parser("summary", help="print a model's layer table")
    p.add_argument("model")
    p.add_argument("--resolution", type=int, default=224)
    p.add_argument("--variant", choices=sorted(_VARIANTS))
    p.add_argument("--dot", metavar="FILE",
                   help="write a Graphviz DOT graph instead of the table")
    p.set_defaults(fn=cmd_summary)

    p = sub.add_parser("latency", help="estimate latency and speed-ups")
    p.add_argument("model")
    p.add_argument("--resolution", type=int, default=224)
    p.add_argument("--variant", choices=sorted(_VARIANTS))
    _add_array_options(p)
    p.set_defaults(fn=cmd_latency)

    p = sub.add_parser("table1", help="regenerate Table I")
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("ria", help="RIA classification of an algorithm")
    p.add_argument("algorithm", nargs="?")
    p.set_defaults(fn=cmd_ria)

    p = sub.add_parser("overhead", help="broadcast-link area/power overhead")
    p.add_argument("--size", type=int, default=32)
    p.set_defaults(fn=cmd_overhead)

    for cmd, fn, help_text in (
        ("traffic", cmd_traffic, "SRAM/DRAM traffic of a model"),
        ("buffers", cmd_buffers, "minimum stall-free SRAM buffer sizes"),
        ("energy", cmd_energy, "energy per inference"),
    ):
        p = sub.add_parser(cmd, help=help_text)
        p.add_argument("model")
        p.add_argument("--resolution", type=int, default=224)
        p.add_argument("--variant", choices=sorted(_VARIANTS))
        _add_array_options(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser("timeline", help="Gantt view of array occupation")
    p.add_argument("model")
    p.add_argument("--resolution", type=int, default=224)
    p.add_argument("--variant", choices=sorted(_VARIANTS))
    p.add_argument("--top", type=int, default=20,
                   help="show only the N longest layers (0 = all)")
    _add_array_options(p)
    p.set_defaults(fn=cmd_timeline)

    p = sub.add_parser("nos", help="per-layer operator search")
    p.add_argument("model")
    p.add_argument("--resolution", type=int, default=224)
    p.add_argument("--budget", type=int, default=None,
                   help="latency budget in cycles for the searched layers")
    _add_array_options(p)
    p.set_defaults(fn=cmd_nos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        return 0  # output piped into a pager/head that closed early
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
