"""repro — reproduction of FuSeConv (DATE 2021).

Public API highlights:

* :mod:`repro.ir` — layer specs, networks, MAC/param counting;
* :mod:`repro.models` — MobileNet-V1/V2/V3, MnasNet-B1, ResNet-50;
* :mod:`repro.core` — the FuSeConv operator and the drop-in transform;
* :mod:`repro.systolic` — SCALE-Sim-style systolic array simulator with the
  paper's row-broadcast dataflow;
* :mod:`repro.ria` — Regular Iterative Algorithm formalism (§II-III);
* :mod:`repro.nn` — numpy training substrate (autograd, layers, RMSprop);
* :mod:`repro.hw` — area/power model of the broadcast-link overhead;
* :mod:`repro.analysis` — drivers for the paper's tables and figures.
"""

__version__ = "1.0.0"
