"""JSON-lines TCP transport: a network front-end for the server.

Wire format: newline-delimited JSON, one object per request/response.
Responses carry the client's ``id`` echo and may complete out of order
(dynamic batching reorders freely) — clients correlate by ``id``.

Request fields (all optional except ``net``)::

    {"id": 7, "net": "mobilenet_v1", "variant": "half", "resolution": 64,
     "seed": 0, "input_seed": 123, "slo_ms": 80, "priority": 0,
     "int8": false, "return_output": false}

Inputs travel as seeds, not tensors — a request is a few dozen bytes and
fully reproducible.  ``return_output: true`` inlines the output tensor as
a nested list (debugging; the digest is always included).

Two control ops bypass the scheduler entirely:

* ``{"op": "health"}`` → the server's liveness/readiness snapshot
  (:meth:`~repro.serve.server.InferenceServer.health`), answered even
  while the queue is saturated or the server is draining;
* ``{"op": "ping"}`` → ``{"op": "pong"}``, a pure transport round-trip.

Robustness (``docs/robustness.md``): a malformed or oversized line gets a
structured error reply and the connection **stays open** — one bad frame
must not kill the client's other in-flight requests.  Lines longer than
``MAX_LINE_BYTES`` are discarded without buffering them whole.  The
:class:`RemoteClient` side is symmetric: unparseable reply lines are
counted and skipped, and ``retries``/``timeout_s`` turn transient
failures (disconnects, timeouts) into bounded, jittered reconnect-and-
resend loops.  The ``transport.disconnect`` / ``transport.garbage`` fault
points of :mod:`repro.faults` are injected here.

This is deliberately framework-free (stdlib ``asyncio`` streams): the
reproduction's no-new-dependencies rule applies to the serving layer too.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from ..faults import should_fire
from ..obs import get_logger, get_registry, get_tracer, render_exposition
from ..obs.context import SpanContext
from .request import InferenceRequest, InferenceResponse, ModelKey, Status
from .resilience import RetryPolicy
from .server import InferenceServer

__all__ = [
    "MAX_LINE_BYTES",
    "request_from_wire",
    "response_to_wire",
    "serve_tcp",
    "RemoteClient",
]

_log = get_logger("serve.transport")

#: Hard cap on one wire line (request or response).  Requests are tiny
#: (seeds, not tensors); anything near this size is garbage or abuse.
MAX_LINE_BYTES = 1 << 20

_READ_CHUNK = 1 << 16


def request_from_wire(payload: dict) -> Tuple[InferenceRequest, dict]:
    """Decode one wire object → (request, client envelope)."""
    key = ModelKey(
        network=payload["net"],
        variant=payload.get("variant"),
        resolution=int(payload.get("resolution", 64)),
        seed=int(payload.get("seed", 0)),
    )
    fields = dict(
        key=key,
        input_seed=int(payload.get("input_seed", 0)),
        slo_ms=payload.get("slo_ms"),
        priority=int(payload.get("priority", 0)),
        int8=bool(payload.get("int8", False)),
        trace=SpanContext.from_wire(payload.get("trace")),
        want_timings=bool(payload.get("timings", False)),
    )
    # Cross-hop identity and deadline budget: a router forwarding (or
    # hedging) a client's request preserves the originating request id —
    # the dedupe/cancellation key — and the milliseconds of client
    # deadline still unspent at this hop.
    if payload.get("request_id") is not None:
        fields["request_id"] = int(payload["request_id"])
    if payload.get("deadline_ms") is not None:
        fields["deadline_ms"] = float(payload["deadline_ms"])
    request = InferenceRequest(**fields)
    envelope = {
        "id": payload.get("id"),
        "return_output": bool(payload.get("return_output", False)),
    }
    return request, envelope


def response_to_wire(response: InferenceResponse, envelope: dict) -> dict:
    """Encode one response → wire object (outputs only on request)."""
    out = {
        "id": envelope.get("id"),
        "request_id": response.request_id,
        "model": response.key.canonical(),
        "status": response.status.value,
        "digest": response.digest,
        "queue_ms": round(response.queue_ms, 3),
        "execute_ms": round(response.execute_ms, 3),
        "total_ms": round(response.total_ms, 3),
        "simulated_ms": round(response.simulated_ms, 6),
        "batch_size": response.batch_size,
        "slo_ms": response.slo_ms,
        "slo_met": response.slo_met,
    }
    if response.retry_after_ms is not None:
        out["retry_after_ms"] = round(response.retry_after_ms, 3)
    if response.error is not None:
        out["error"] = response.error
    if response.degraded:
        out["degraded"] = True
        out["degraded_reason"] = response.degraded_reason
    if response.trace_id is not None:
        out["trace_id"] = response.trace_id
    if response.timings is not None:
        out["timings"] = response.timings
    if envelope.get("return_output") and response.output is not None:
        out["output"] = response.output.tolist()
    return out


async def _read_line(
    reader: asyncio.StreamReader, buffer: bytearray, max_line: int
) -> Optional[bytes]:
    """Next newline-terminated line, or ``None`` at EOF.

    Unlike ``StreamReader.readline`` this enforces ``max_line`` without
    dying: an overlong line raises ``ValueError`` *once* after discarding
    up to its newline, leaving the stream positioned at the next frame.
    """
    discarding = False
    while True:
        newline = buffer.find(b"\n")
        if newline >= 0:
            line = bytes(buffer[:newline])
            del buffer[: newline + 1]
            if discarding or newline > max_line:
                raise ValueError(f"line exceeded {max_line} bytes")
            return line.strip()
        if len(buffer) > max_line:
            del buffer[:]
            discarding = True  # swallow until the newline, then report
        chunk = await reader.read(_READ_CHUNK)
        if not chunk:
            if discarding:
                raise ValueError(f"line exceeded {max_line} bytes")
            return None
        if not discarding:
            buffer.extend(chunk)
        else:
            newline = chunk.find(b"\n")
            if newline >= 0:
                buffer.extend(chunk[newline + 1:])
                raise ValueError(f"line exceeded {max_line} bytes")


async def _handle_connection(
    server: InferenceServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    max_line: int = MAX_LINE_BYTES,
) -> None:
    peer = writer.get_extra_info("peername")
    _log.debug("connection opened", peer=str(peer))
    metrics = get_registry()
    metrics.counter("serve.transport.connections").inc()
    write_lock = asyncio.Lock()
    tasks = set()

    async def send(reply: dict) -> None:
        async with write_lock:
            spec = should_fire("transport.garbage")
            if spec is not None:
                # A corrupt frame ahead of the real reply: clients must
                # skip it and still correlate the good one.
                writer.write(b"\x00{not json]\n")
            writer.write(json.dumps(reply).encode() + b"\n")
            await writer.drain()

    async def respond(line: bytes) -> None:
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError(f"expected an object, got {type(payload).__name__}")
        except ValueError as exc:
            metrics.counter("serve.transport.bad_lines").inc()
            _log.warning("malformed request line", peer=str(peer),
                         error=str(exc))
            await send({"status": "error", "error": f"bad request: {exc}"})
            return
        op = payload.get("op")
        if op == "health":
            await send({"id": payload.get("id"), "op": "health",
                        **server.health()})
            return
        if op == "ping":
            await send({"id": payload.get("id"), "op": "pong"})
            return
        if op == "metrics":
            # Live telemetry over the same wire: Prometheus-style text
            # plus the derived live/alert view, scheduler-independent so
            # a saturated queue cannot starve the scrape.
            await send({"id": payload.get("id"), "op": "metrics",
                        "exposition": render_exposition(),
                        "telemetry": server.telemetry_payload()})
            return
        if op == "warmup":
            # Warm-up gate: pre-build the named lanes' models and plans
            # before health may report ready (fleet scale-up path).
            try:
                result = await server.warmup(payload.get("lanes"))
            except Exception as exc:
                metrics.counter("serve.transport.bad_lines").inc()
                await send({"id": payload.get("id"), "op": "warmup",
                            "status": "error",
                            "error": f"warmup failed: {exc}"})
                return
            await send({"id": payload.get("id"), "op": "warmup",
                        "ready": server.health()["ready"], **result})
            return
        if op == "cancel":
            # Hedge-loser cancellation, keyed by the originating request
            # id; best-effort (a dispatched request runs to completion).
            try:
                request_id = int(payload["request_id"])
            except (KeyError, TypeError, ValueError) as exc:
                await send({"id": payload.get("id"), "op": "cancel",
                            "status": "error",
                            "error": f"bad cancel: {exc}"})
                return
            await send({"id": payload.get("id"), "op": "cancel",
                        "cancelled": server.cancel_request(request_id)})
            return
        # The transport span joins the client's trace (carried in the
        # wire ``trace`` object) and becomes the server-side parent of
        # the admit/queue/request chain.
        with get_tracer().span(
            "transport.request", category="serve",
            ctx=SpanContext.from_wire(payload.get("trace")),
        ) as tspan:
            try:
                request, envelope = request_from_wire(payload)
            except (ValueError, KeyError, TypeError) as exc:
                metrics.counter("serve.transport.bad_lines").inc()
                await send({"id": payload.get("id"), "status": "error",
                            "error": f"bad request: {exc}"})
                return
            if tspan.context is not None:
                request.trace = tspan.context
            tspan.set(request_id=request.request_id,
                      model=request.key.canonical())
            response = await server.submit(request)
            tspan.set(status=response.status.value)
            await send(response_to_wire(response, envelope))

    buffer = bytearray()
    try:
        while True:
            if should_fire("transport.disconnect") is not None:
                _log.warning("injected disconnect", peer=str(peer))
                break
            try:
                line = await _read_line(reader, buffer, max_line)
            except ValueError as exc:  # oversized line: report, keep going
                metrics.counter("serve.transport.oversized_lines").inc()
                _log.warning("oversized request line", peer=str(peer),
                             error=str(exc))
                await send({"status": "error", "error": f"bad request: {exc}"})
                continue
            if line is None:
                break
            if not line:
                continue
            task = asyncio.create_task(respond(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
    except (ConnectionResetError, asyncio.IncompleteReadError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        _log.debug("connection closed", peer=str(peer))


async def serve_tcp(
    server: InferenceServer, host: str = "127.0.0.1", port: int = 8707,
    max_line: int = MAX_LINE_BYTES,
) -> asyncio.AbstractServer:
    """Expose an (already started) :class:`InferenceServer` over TCP."""
    tcp = await asyncio.start_server(
        lambda r, w: _handle_connection(server, r, w, max_line), host, port
    )
    addr = tcp.sockets[0].getsockname() if tcp.sockets else (host, port)
    _log.info("listening", host=str(addr[0]), port=addr[1])
    return tcp


class RemoteClient:
    """Async JSON-lines client correlating responses by ``id``.

    With ``retries > 0`` a request that times out or loses its connection
    is re-sent (after a seeded full-jitter backoff, reconnecting if
    needed) up to ``retries`` extra times; ``timeout_s`` bounds each
    attempt.  Defaults keep the legacy fail-fast behavior.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8707,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        backoff_ms: float = 50.0,
        seed: int = 0,
        span_name: str = "client.request",
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        #: Span opened around each request.  End clients keep the default;
        #: the fleet router names its forwarding hop ``router.forward`` so
        #: traces read client → router → replica (docs/fleet.md).
        self.span_name = span_name
        self.retry_policy = RetryPolicy(retries=retries, backoff_ms=backoff_ms,
                                        seed=seed)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: dict = {}
        self._next_id = 0
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._conn_lock = asyncio.Lock()
        self._closed = False

    async def connect(self) -> "RemoteClient":
        self._closed = False
        await self._ensure_connected()
        return self

    async def _ensure_connected(self) -> None:
        # One reconnect services every concurrent failed request: without
        # the lock, N in-flight requests losing one connection would race
        # N reconnects, orphaning all but the last reader task.
        async with self._conn_lock:
            if self._writer is not None and not self._writer.is_closing():
                return
            await self._teardown()
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
            self._reader_task = asyncio.create_task(
                self._read_loop(self._reader)
            )

    async def _teardown(self) -> None:
        # Dropping the connection orphans every reply still in flight:
        # fail those futures so their senders retry on the new connection
        # instead of sitting out their timeout.
        failed = ConnectionError("connection replaced")
        for future in self._pending.values():
            if not future.done():
                future.set_exception(failed)
        self._pending.clear()
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def close(self) -> None:
        self._closed = True
        await self._teardown()

    async def __aenter__(self) -> "RemoteClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        buffer = bytearray()
        while True:
            try:
                line = await _read_line(reader, buffer, MAX_LINE_BYTES)
            except ValueError:
                get_registry().counter("serve.client.bad_lines").inc()
                continue
            if line is None:
                failed = ConnectionError("server closed connection")
                for future in self._pending.values():
                    if not future.done():
                        future.set_exception(failed)
                self._pending.clear()
                # Mark the connection dead *now*: a request that raced past
                # _ensure_connected would otherwise write into the dead
                # socket and sit out its whole timeout with no reader left
                # to fail its future.
                if self._writer is not None:
                    self._writer.close()
                return
            if not line:
                continue
            try:
                reply = json.loads(line)
                if not isinstance(reply, dict):
                    raise ValueError("reply is not an object")
            except ValueError:
                # A garbage frame must not kill correlation for the
                # replies behind it: count it and read on.
                get_registry().counter("serve.client.bad_lines").inc()
                _log.debug("skipping unparseable reply line")
                continue
            future = self._pending.pop(reply.get("id"), None)
            if future is not None and not future.done():
                future.set_result(reply)

    async def _send_payload(self, payload: dict) -> dict:
        wire_id = payload["id"]
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[wire_id] = future
        try:
            async with self._write_lock:
                assert self._writer is not None
                self._writer.write(json.dumps(payload).encode() + b"\n")
                await self._writer.drain()
            if self.timeout_s is None:
                return await future
            return await asyncio.wait_for(future, self.timeout_s)
        finally:
            self._pending.pop(wire_id, None)
            # If the waiter is leaving without consuming the future (a
            # timeout/cancel racing a teardown that failed it), retrieve
            # the exception so asyncio does not log it as orphaned.
            if future.done() and not future.cancelled():
                future.exception()

    async def _roundtrip(self, payload: dict) -> dict:
        """Send with bounded retries; reconnects between attempts."""
        if self._closed:
            raise RuntimeError("client is closed")
        attempts = self.retry_policy.retries + 1
        last_error: Optional[BaseException] = None
        for attempt in range(1, attempts + 1):
            try:
                await self._ensure_connected()
                return await self._send_payload(payload)
            except (ConnectionError, asyncio.TimeoutError, OSError) as exc:
                last_error = exc
                if attempt >= attempts:
                    break
                get_registry().counter("resilience.retries").inc()
                _log.debug("retrying request", id=payload["id"],
                           attempt=attempt,
                           error=f"{type(exc).__name__}: {exc}")
                await asyncio.sleep(self.retry_policy.delay_s(attempt))
        assert last_error is not None
        raise last_error

    async def request(self, request: InferenceRequest,
                      return_output: bool = False,
                      timings: bool = False) -> dict:
        """Send one request; returns the decoded wire response.

        When tracing is enabled the client mints the request's root span
        here and carries its context on the wire, so the server-side
        stages link under one end-to-end trace.  A request that already
        carries a :class:`SpanContext` (a retry, or a router forwarding a
        client's request) *joins* that trace instead of minting a new
        root.  ``timings=True`` asks the server to echo the per-stage
        breakdown on the reply.
        """
        if self._writer is None and self._closed:
            raise RuntimeError("client is not connected")
        self._next_id += 1
        payload = {
            "id": self._next_id,
            "net": request.key.network,
            "variant": request.key.variant,
            "resolution": request.key.resolution,
            "seed": request.key.seed,
            "input_seed": request.input_seed,
            "slo_ms": request.slo_ms,
            "priority": request.priority,
            "request_id": request.request_id,
            "return_output": return_output,
        }
        # Deadline propagation: carry the unspent deadline budget (or, at
        # the originating client, the full SLO) so downstream hops can
        # expire stale work at admission.  Stamped once per request()
        # call — a wire-level retry resends the same budget; the replica
        # restamps arrival, which is the conservative direction.
        budget = (request.deadline_ms if request.deadline_ms is not None
                  else request.slo_ms)
        if budget is not None:
            payload["deadline_ms"] = round(float(budget), 3)
        if request.int8:
            payload["int8"] = True
        if timings or request.want_timings:
            payload["timings"] = True
        with get_tracer().span(
            self.span_name, category="serve", ctx=request.trace,
            new_trace=request.trace is None,
            request_id=request.request_id, model=request.key.canonical(),
        ) as span:
            if span.context is not None:
                payload["trace"] = span.context.to_wire()
                request.trace = span.context
            reply = await self._roundtrip(payload)
            span.set(status=str(reply.get("status")))
            return reply

    async def health(self) -> dict:
        """The server's liveness/readiness snapshot (``op: health``)."""
        self._next_id += 1
        return await self._roundtrip({"id": self._next_id, "op": "health"})

    async def metrics(self) -> dict:
        """The server's live telemetry (``op: metrics``): a Prometheus
        ``exposition`` text block plus the derived ``telemetry`` view."""
        self._next_id += 1
        return await self._roundtrip({"id": self._next_id, "op": "metrics"})

    async def warmup(self, lanes: Optional[list] = None) -> dict:
        """Drive the server's warm-up gate (``op: warmup``).

        ``lanes`` is a list of wire lane specs (``{"net": ..., "variant":
        ..., "resolution": ..., "seed": ..., "int8": ...}``); ``None``
        warms every preloaded model.  Returns the server's warm-up report
        including the post-warm-up ``ready`` flag.
        """
        self._next_id += 1
        payload: dict = {"id": self._next_id, "op": "warmup"}
        if lanes is not None:
            payload["lanes"] = lanes
        return await self._roundtrip(payload)

    async def cancel(self, request_id: int) -> bool:
        """Best-effort cancel of one queued request (``op: cancel``)."""
        self._next_id += 1
        reply = await self._roundtrip(
            {"id": self._next_id, "op": "cancel", "request_id": request_id}
        )
        return bool(reply.get("cancelled"))

    async def submit(self, request: InferenceRequest) -> InferenceResponse:
        """Loadgen-compatible submit: wire response → InferenceResponse.

        Never raises on transport failure: an exhausted retry budget
        surfaces as an ERROR response, so load generation keeps its
        accounting under chaos.
        """
        try:
            reply = await self.request(request, timings=request.want_timings)
        except (ConnectionError, asyncio.TimeoutError, OSError, RuntimeError) as exc:
            get_registry().counter("serve.client.transport_errors").inc()
            return InferenceResponse(
                request_id=request.request_id,
                key=request.key,
                status=Status.ERROR,
                error=f"transport: {type(exc).__name__}: {exc}",
                slo_ms=request.slo_ms or 0.0,
                trace_id=request.trace.trace_id if request.trace else None,
            )
        return InferenceResponse(
            request_id=reply.get("request_id", request.request_id),
            key=request.key,
            status=Status(reply["status"]),
            digest=reply.get("digest"),
            error=reply.get("error"),
            queue_ms=reply.get("queue_ms", 0.0),
            execute_ms=reply.get("execute_ms", 0.0),
            total_ms=reply.get("total_ms", 0.0),
            simulated_ms=reply.get("simulated_ms", 0.0),
            batch_size=reply.get("batch_size", 0),
            slo_ms=reply.get("slo_ms", 0.0) or 0.0,
            retry_after_ms=reply.get("retry_after_ms"),
            degraded=bool(reply.get("degraded", False)),
            degraded_reason=reply.get("degraded_reason"),
            trace_id=reply.get("trace_id"),
            timings=reply.get("timings"),
        )
