"""JSON-lines TCP transport: a network front-end for the server.

Wire format: newline-delimited JSON, one object per request/response.
Responses carry the client's ``id`` echo and may complete out of order
(dynamic batching reorders freely) — clients correlate by ``id``.

Request fields (all optional except ``net``)::

    {"id": 7, "net": "mobilenet_v1", "variant": "half", "resolution": 64,
     "seed": 0, "input_seed": 123, "slo_ms": 80, "priority": 0,
     "return_output": false}

Inputs travel as seeds, not tensors — a request is a few dozen bytes and
fully reproducible.  ``return_output: true`` inlines the output tensor as
a nested list (debugging; the digest is always included).

This is deliberately framework-free (stdlib ``asyncio`` streams): the
reproduction's no-new-dependencies rule applies to the serving layer too.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from ..obs import get_logger, get_registry
from .request import InferenceRequest, InferenceResponse, ModelKey
from .server import InferenceServer

__all__ = [
    "request_from_wire",
    "response_to_wire",
    "serve_tcp",
    "RemoteClient",
]

_log = get_logger("serve.transport")


def request_from_wire(payload: dict) -> Tuple[InferenceRequest, dict]:
    """Decode one wire object → (request, client envelope)."""
    key = ModelKey(
        network=payload["net"],
        variant=payload.get("variant"),
        resolution=int(payload.get("resolution", 64)),
        seed=int(payload.get("seed", 0)),
    )
    request = InferenceRequest(
        key=key,
        input_seed=int(payload.get("input_seed", 0)),
        slo_ms=payload.get("slo_ms"),
        priority=int(payload.get("priority", 0)),
    )
    envelope = {
        "id": payload.get("id"),
        "return_output": bool(payload.get("return_output", False)),
    }
    return request, envelope


def response_to_wire(response: InferenceResponse, envelope: dict) -> dict:
    """Encode one response → wire object (outputs only on request)."""
    out = {
        "id": envelope.get("id"),
        "request_id": response.request_id,
        "model": response.key.canonical(),
        "status": response.status.value,
        "digest": response.digest,
        "queue_ms": round(response.queue_ms, 3),
        "execute_ms": round(response.execute_ms, 3),
        "total_ms": round(response.total_ms, 3),
        "simulated_ms": round(response.simulated_ms, 6),
        "batch_size": response.batch_size,
        "slo_ms": response.slo_ms,
        "slo_met": response.slo_met,
    }
    if response.retry_after_ms is not None:
        out["retry_after_ms"] = round(response.retry_after_ms, 3)
    if response.error is not None:
        out["error"] = response.error
    if envelope.get("return_output") and response.output is not None:
        out["output"] = response.output.tolist()
    return out


async def _handle_connection(
    server: InferenceServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    peer = writer.get_extra_info("peername")
    _log.debug("connection opened", peer=str(peer))
    get_registry().counter("serve.transport.connections").inc()
    write_lock = asyncio.Lock()
    tasks = set()

    async def respond(line: bytes) -> None:
        try:
            request, envelope = request_from_wire(json.loads(line))
        except (ValueError, KeyError) as exc:
            reply = {"status": "error", "error": f"bad request: {exc}"}
        else:
            response = await server.submit(request)
            reply = response_to_wire(response, envelope)
        async with write_lock:
            writer.write(json.dumps(reply).encode() + b"\n")
            await writer.drain()

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            task = asyncio.create_task(respond(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
    except (ConnectionResetError, asyncio.IncompleteReadError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        _log.debug("connection closed", peer=str(peer))


async def serve_tcp(
    server: InferenceServer, host: str = "127.0.0.1", port: int = 8707
) -> asyncio.AbstractServer:
    """Expose an (already started) :class:`InferenceServer` over TCP."""
    tcp = await asyncio.start_server(
        lambda r, w: _handle_connection(server, r, w), host, port
    )
    addr = tcp.sockets[0].getsockname() if tcp.sockets else (host, port)
    _log.info("listening", host=str(addr[0]), port=addr[1])
    return tcp


class RemoteClient:
    """Async JSON-lines client correlating responses by ``id``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8707) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: dict = {}
        self._next_id = 0
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()

    async def connect(self) -> "RemoteClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def __aenter__(self) -> "RemoteClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        while True:
            line = await self._reader.readline()
            if not line:
                for future in self._pending.values():
                    if not future.done():
                        future.set_exception(ConnectionError("server closed"))
                self._pending.clear()
                return
            reply = json.loads(line)
            future = self._pending.pop(reply.get("id"), None)
            if future is not None and not future.done():
                future.set_result(reply)

    async def request(self, request: InferenceRequest,
                      return_output: bool = False) -> dict:
        """Send one request; returns the decoded wire response."""
        if self._writer is None:
            raise RuntimeError("client is not connected")
        self._next_id += 1
        wire_id = self._next_id
        payload = {
            "id": wire_id,
            "net": request.key.network,
            "variant": request.key.variant,
            "resolution": request.key.resolution,
            "seed": request.key.seed,
            "input_seed": request.input_seed,
            "slo_ms": request.slo_ms,
            "priority": request.priority,
            "return_output": return_output,
        }
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[wire_id] = future
        async with self._write_lock:
            self._writer.write(json.dumps(payload).encode() + b"\n")
            await self._writer.drain()
        return await future

    async def submit(self, request: InferenceRequest) -> InferenceResponse:
        """Loadgen-compatible submit: wire response → InferenceResponse."""
        from .request import Status

        reply = await self.request(request)
        return InferenceResponse(
            request_id=reply.get("request_id", request.request_id),
            key=request.key,
            status=Status(reply["status"]),
            digest=reply.get("digest"),
            error=reply.get("error"),
            queue_ms=reply.get("queue_ms", 0.0),
            execute_ms=reply.get("execute_ms", 0.0),
            total_ms=reply.get("total_ms", 0.0),
            simulated_ms=reply.get("simulated_ms", 0.0),
            batch_size=reply.get("batch_size", 0),
            slo_ms=reply.get("slo_ms", 0.0) or 0.0,
            retry_after_ms=reply.get("retry_after_ms"),
        )
