"""Model registry: preload and share executable models across workers.

Building a model for serving is expensive relative to a request — the IR
graph is constructed, FuSe-transformed, and a :class:`GraphExecutor`
materializes deterministic weights from the key's seed — so the registry
builds each :class:`~repro.serve.request.ModelKey` once and shares the
result across every worker thread.  Sharing is safe because serving only
runs forward passes in eval mode: modules are read-only at inference.

The registry also owns the per-model lazy :class:`ArrayNetworkExecutor`
(the simulated-hardware engine) and caches the analytical latency of the
network so the cost model can price batches without re-estimating.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import to_fuseconv
from ..ir.network import Network
from ..models import build_model
from ..nn.graph import GraphExecutor
from ..obs import get_logger, get_registry
from ..systolic import ArrayConfig
from .request import ModelKey

__all__ = ["RegisteredModel", "ModelRegistry"]

_log = get_logger("serve.registry")


@dataclass
class RegisteredModel:
    """One preloaded, shareable model."""

    key: ModelKey
    network: Network                  # FuSe-transformed IR graph
    executor: GraphExecutor           # eval-mode weights (seeded by key.seed)
    input_shape: Tuple[int, int, int]

    # Simulated-hardware executors, one per (array geometry, engine, jobs).
    _array_executors: Dict[Tuple, object] = field(default_factory=dict)
    # Compiled inference plans, one per (batch, flavor); None latches a
    # compilation failure so workers fall back without retrying.  LRU
    # order: a hit moves its entry to the end, inserts evict the front
    # when ``plan_cache_cap`` is set.
    _plans: "OrderedDict[Tuple[int, str], object]" = field(
        default_factory=OrderedDict)
    #: Max cached plans across (batch, flavor) keys; ``None`` = unbounded.
    plan_cache_cap: Optional[int] = None
    #: Prune+pack the non-exact flavors to this sparsity (``None`` = dense).
    #: A pruned network is still one ModelKey — the sparse pipeline rides
    #: the existing ``folded``/``int8`` flavors as plan metadata
    #: (``plan.stats.sparsity`` / ``plan.packing``), never a new lane key.
    sparsity: Optional[float] = None
    #: Column-combining group-size limit for the sparse flavors.
    pack_gamma: int = 8
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def array_executor(self, array: ArrayConfig, engine: str = "vector",
                       jobs: int = 1):
        """Lazy :class:`ArrayNetworkExecutor` sharing this model's weights."""
        from ..systolic.executor import ArrayNetworkExecutor

        # datawidth and frequency_mhz are deliberately absent: neither
        # changes what the functional simulator computes.
        cache_key = (array.rows, array.cols, array.broadcast, array.dataflow,
                     array.pipelined_folds, engine, jobs)
        with self._lock:
            executor = self._array_executors.get(cache_key)
            if executor is None:
                executor = ArrayNetworkExecutor(
                    self.network, model=self.executor, array=array,
                    engine=engine, jobs=jobs,
                )
                self._array_executors[cache_key] = executor
        return executor

    #: Plan flavors → CompileConfig factories (see ``plan_for``).
    FLAVORS = ("exact", "folded", "int8")

    def plan_for(self, batch: int, exact: Optional[bool] = None,
                 flavor: Optional[str] = None):
        """Lazy compiled :class:`~repro.nn.compile.InferencePlan`.

        Three flavors, each cached independently per batch size:

        * ``"exact"`` — no folding; output is bit-identical to the eager
          forward (the serving determinism contract);
        * ``"folded"`` — fully folded/fused float plan for throughput;
        * ``"int8"`` — the quantized plan (compile-time PTQ + integer
          kernels; float-close, never bit-exact).

        ``exact=True/False`` is the legacy boolean spelling of
        exact/folded.  Returns ``None`` (latched) if compilation fails,
        so callers degrade down the chain without retrying the build.

        With ``sparsity`` set on the model, ``folded`` and ``int8``
        compile through the sparse pass pipeline (magnitude prune +
        column combining) instead — same flavor keys, and the packing
        rides on the returned plan (``plan.packing``, ``plan.stats``).
        ``exact`` always stays dense: its bit-exactness contract is
        against the unpruned eager forward.

        The cache is LRU-bounded by ``plan_cache_cap`` (a compiled plan
        pins its weight tensors — across many (batch, flavor) pairs an
        unbounded cache is a slow leak); evictions are counted as
        ``serve.plan_evictions`` and an evicted plan simply recompiles
        on its next use.
        """
        from ..nn.compile import CompileConfig, compile_executor

        if flavor is None:
            flavor = "folded" if exact is False else "exact"
        if flavor not in self.FLAVORS:
            raise ValueError(
                f"plan flavor must be one of {self.FLAVORS}, got {flavor!r}")
        cache_key = (int(batch), flavor)
        with self._lock:
            if cache_key in self._plans:
                self._plans.move_to_end(cache_key)
                return self._plans[cache_key]
        if self.sparsity is not None and flavor != "exact":
            config = {
                "folded": CompileConfig.sparse,
                "int8": CompileConfig.sparse_int8,
            }[flavor](sparsity=self.sparsity, gamma=self.pack_gamma)
        else:
            config = {
                "exact": CompileConfig.exact,
                "folded": CompileConfig,
                "int8": CompileConfig.int8,
            }[flavor]()
        try:
            plan = compile_executor(
                self.executor, (int(batch),) + tuple(self.input_shape), config
            )
        except Exception as exc:  # degrade down the chain, never kill serving
            get_registry().counter("resilience.compile_fallbacks",
                                   model=self.key.canonical()).inc()
            _log.warning("plan compilation failed; degrading",
                         model=self.key.canonical(), batch=batch,
                         flavor=flavor,
                         error=f"{type(exc).__name__}: {exc}")
            plan = None
        with self._lock:
            if cache_key in self._plans:  # a racing builder won: keep theirs
                self._plans.move_to_end(cache_key)
                return self._plans[cache_key]
            self._plans[cache_key] = plan
            while (self.plan_cache_cap is not None
                   and len(self._plans) > self.plan_cache_cap):
                evicted_key, _ = self._plans.popitem(last=False)
                get_registry().counter(
                    "serve.plan_evictions", model=self.key.canonical()
                ).inc()
                _log.info("plan evicted (LRU)", model=self.key.canonical(),
                          batch=evicted_key[0], flavor=evicted_key[1],
                          cap=self.plan_cache_cap)
            return plan


class ModelRegistry:
    """Get-or-build store of :class:`RegisteredModel`, keyed by ModelKey.

    ``plan_cache_cap`` bounds every registered model's compiled-plan LRU
    (see :meth:`RegisteredModel.plan_for`); ``None`` keeps the legacy
    unbounded behavior.  ``sparsity``/``pack_gamma`` switch the non-exact
    plan flavors onto the pruned + column-combined pipeline.
    """

    def __init__(self, plan_cache_cap: Optional[int] = None,
                 sparsity: Optional[float] = None,
                 pack_gamma: int = 8) -> None:
        if plan_cache_cap is not None and plan_cache_cap < 1:
            raise ValueError(
                f"plan_cache_cap must be >= 1 or None, got {plan_cache_cap}")
        if sparsity is not None and not 0.0 <= sparsity < 1.0:
            raise ValueError(
                f"sparsity must be in [0, 1) or None, got {sparsity}")
        if pack_gamma < 1:
            raise ValueError(f"pack_gamma must be >= 1, got {pack_gamma}")
        self.plan_cache_cap = plan_cache_cap
        self.sparsity = sparsity
        self.pack_gamma = pack_gamma
        self._models: Dict[ModelKey, RegisteredModel] = {}
        self._lock = threading.Lock()
        self._building: Dict[ModelKey, threading.Event] = {}

    def keys(self) -> List[ModelKey]:
        with self._lock:
            return list(self._models)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def get(self, key: ModelKey) -> RegisteredModel:
        """The registered model for ``key``, building it on first use.

        Concurrent callers for the same key block on one build instead of
        duplicating it (build-once latching, same idea as the parallel
        module's pool reuse).
        """
        while True:
            with self._lock:
                model = self._models.get(key)
                if model is not None:
                    return model
                event = self._building.get(key)
                if event is None:
                    event = threading.Event()
                    self._building[key] = event
                    break  # this thread builds
            event.wait()  # another thread is building: wait and re-check

        try:
            model = self._build(key)
            with self._lock:
                self._models[key] = model
        finally:
            with self._lock:
                self._building.pop(key, None)
            event.set()
        return model

    def preload(self, keys) -> List[RegisteredModel]:
        """Build a batch of keys up front (server start-up)."""
        return [self.get(key) for key in keys]

    def _build(self, key: ModelKey) -> RegisteredModel:
        network = build_model(key.network, resolution=key.resolution)
        if key.fuse_variant is not None:
            network = to_fuseconv(network, key.fuse_variant)
        executor = GraphExecutor(network, seed=key.seed)
        executor.eval()
        get_registry().counter("serve.registry.builds",
                               model=key.canonical()).inc()
        _log.info("registered model", model=key.canonical(),
                  layers=len(list(network)))
        return RegisteredModel(
            key=key,
            network=network,
            executor=executor,
            input_shape=network.input_shape,
            plan_cache_cap=self.plan_cache_cap,
            sparsity=self.sparsity,
            pack_gamma=self.pack_gamma,
        )
