"""Chaos mode: seeded fault schedules driven against a live server.

``repro loadgen --chaos`` (and ``make chaos-smoke``) runs an end-to-end
resilience exercise: an :class:`InferenceServer` behind the TCP transport
takes a deterministic workload while a seeded :class:`FaultPlan` fires
engine exceptions, latency spikes, a worker crash, a plan-compile
failure, garbage frames and a client disconnect — and a raw "garbage
feeder" connection pokes the transport with malformed and oversized
lines the whole time.  :class:`ChaosReport.check` then asserts the
resilience bounds:

* zero unhandled exceptions (every request got *an* answer: OK —
  possibly degraded — or an accounted SHED/EXPIRED/ERROR);
* ≥ ``min_answered_rate`` of non-shed requests answered OK;
* the server still reports healthy and ready afterwards;
* p99 latency stayed under the degradation bound;
* live telemetry stayed alive: the snapshot loop advanced during the
  run (chaos must not be able to kill observability either), and the
  report carries the burn-rate alert verdicts.

Determinism: the request stream and the fault *schedule* (which
evaluations fire, per point) replay exactly for a given seed — the
report carries both fingerprints so a re-run can prove it.  Which
in-flight request a firing lands on may vary with thread interleaving;
the asserted bounds are aggregate for exactly that reason (see
:mod:`repro.faults.plan`).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..faults import FaultPlan, FaultSpec, clear_plan, current_injector, install_plan
from ..obs import get_logger, get_registry
from .loadgen import LoadReport, WorkloadSpec, build_requests, run_workload
from .request import ModelKey
from .server import InferenceServer, ServeConfig
from .transport import MAX_LINE_BYTES, RemoteClient, serve_tcp

__all__ = ["ChaosReport", "default_chaos_plan", "run_chaos"]

_log = get_logger("serve.chaos")

#: Counters snapshotted before/after the run (deltas in the report).
_TRACKED = (
    "resilience.retries",
    "resilience.degraded_responses",
    "resilience.worker_restarts",
    "resilience.requeued",
    "resilience.compile_fallbacks",
    "resilience.breaker_short_circuits",
    "serve.transport.bad_lines",
    "serve.transport.oversized_lines",
    "serve.client.bad_lines",
)


def default_chaos_plan(seed: int = 0) -> FaultPlan:
    """The standard chaos schedule: every serving fault point, bounded.

    Sized for a few-hundred-request workload: a handful of engine
    errors and delays, one worker crash after warm-up, one plan-compile
    failure, a few garbage frames and one client disconnect.
    """
    return FaultPlan(seed=seed, faults=[
        FaultSpec(point="serve.engine", kind="error",
                  probability=0.05, max_fires=4, after=5),
        FaultSpec(point="serve.engine", kind="delay",
                  probability=0.05, max_fires=5, delay_ms=25.0),
        FaultSpec(point="serve.worker", kind="error", after=10, max_fires=1),
        FaultSpec(point="nn.compile", kind="error", max_fires=1),
        FaultSpec(point="transport.garbage", kind="error",
                  probability=0.05, max_fires=3),
        FaultSpec(point="transport.disconnect", kind="error",
                  after=40, max_fires=1),
    ])


def _requests_digest(spec: WorkloadSpec) -> str:
    """SHA-256 over the deterministic request stream (replay proof)."""
    h = hashlib.sha256()
    for r in build_requests(spec):
        h.update(f"{r.key.canonical()}|{r.input_seed}|{r.priority}\n".encode())
    return h.hexdigest()


def _counter_values() -> Dict[str, float]:
    registry = get_registry()
    out = {}
    for name in _TRACKED:
        metric = registry.get(name)
        out[name] = float(metric.value) if metric is not None else 0.0
    return out


@dataclass
class ChaosReport:
    """Everything a chaos run observed, plus the bound checks."""

    report: LoadReport
    plan_fingerprint: str
    requests_digest: str
    faults_injected: Dict[str, int]
    resilience: Dict[str, float]
    health_after: dict
    garbage_answered: bool
    min_answered_rate: float = 0.99
    max_p99_ms: Optional[float] = None
    failures: List[str] = field(default_factory=list)
    telemetry_enabled: bool = False   #: server ran its snapshot loop
    telemetry_snapshots: int = 0      #: ring samples taken over the run

    @property
    def answered_rate(self) -> float:
        """OK responses over requests that were not shed/expired."""
        denom = self.report.total - self.report.shed
        return self.report.ok / denom if denom > 0 else 1.0

    def check(self) -> List[str]:
        """Evaluate the resilience bounds; the (cached) list of failures."""
        failures: List[str] = []
        if self.answered_rate < self.min_answered_rate:
            failures.append(
                f"answered rate {self.answered_rate:.4f} < "
                f"{self.min_answered_rate} ({self.report.ok} ok of "
                f"{self.report.total - self.report.shed} non-shed)"
            )
        if not self.health_after.get("ready", False):
            failures.append(f"server not ready after chaos: {self.health_after}")
        if not self.garbage_answered:
            failures.append("garbage feeder got no structured error replies")
        if self.max_p99_ms is not None and self.report.p99_ms > self.max_p99_ms:
            failures.append(
                f"p99 {self.report.p99_ms:.1f} ms exceeded the degradation "
                f"bound {self.max_p99_ms:.1f} ms"
            )
        if sum(self.faults_injected.values()) == 0:
            failures.append("no faults fired — the chaos schedule is inert")
        if self.telemetry_enabled and self.telemetry_snapshots < 2:
            failures.append(
                f"telemetry snapshot loop did not advance "
                f"({self.telemetry_snapshots} snapshots taken)"
            )
        self.failures = failures
        return failures

    @property
    def ok(self) -> bool:
        return not self.check()

    def record(self) -> None:
        """Publish chaos gauges next to the ``serve.loadgen.*`` ones."""
        registry = get_registry()
        registry.gauge("serve.chaos.answered_rate").set(self.answered_rate)
        registry.gauge("serve.chaos.faults_fired").set(
            float(sum(self.faults_injected.values()))
        )
        registry.gauge("serve.chaos.unhandled_failures").set(
            float(len(self.check()))
        )

    def render(self) -> str:
        lines = [
            self.report.render(),
            f"  chaos       : plan {self.plan_fingerprint[:12]}  "
            f"requests {self.requests_digest[:12]}",
            "  faults      : " + (", ".join(
                f"{point}={count}"
                for point, count in sorted(self.faults_injected.items())
            ) or "none fired"),
            "  resilience  : " + ", ".join(
                f"{name.split('.', 1)[1]}={int(value)}"
                for name, value in sorted(self.resilience.items())
                if value
            ),
            f"  answered    : {self.answered_rate * 100:.2f}% of non-shed "
            f"(bound {self.min_answered_rate * 100:.0f}%)",
            f"  health      : ready={self.health_after.get('ready')}  "
            f"workers={self.health_after.get('workers_alive')}  "
            f"restarts={self.health_after.get('worker_restarts')}",
        ]
        if self.telemetry_enabled:
            lines.append(
                f"  telemetry   : {self.telemetry_snapshots} snapshots taken "
                f"during the run"
            )
        failures = self.check()
        if failures:
            lines.append("  CHAOS FAIL  : " + "; ".join(failures))
        else:
            lines.append("  chaos check : all resilience bounds held")
        return "\n".join(lines)


async def _garbage_feeder(host: str, port: int, frames: int = 4) -> bool:
    """Poke the transport with malformed + oversized lines.

    Returns ``True`` iff every bad frame got a structured error reply and
    the connection still answered a well-formed op at the end.  An
    injected ``transport.disconnect`` may land on *this* connection, so
    each frame tolerates a reconnect — what is asserted is the structured
    reply, not connection affinity.
    """
    reader = writer = None

    async def reconnect():
        nonlocal reader, writer
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        reader, writer = await asyncio.open_connection(host, port)

    async def exchange(payload: bytes) -> Optional[dict]:
        for _ in range(3):
            try:
                if writer is None or writer.is_closing():
                    await reconnect()
                writer.write(payload)
                await writer.drain()
                # The server may inject a garbage frame ahead of the real
                # reply (transport.garbage) — skip unparseable lines.
                for _skip in range(4):
                    line = await asyncio.wait_for(reader.readline(),
                                                  timeout=10.0)
                    if not line:
                        break
                    try:
                        return json.loads(line)
                    except ValueError:
                        continue
            except (ConnectionError, asyncio.TimeoutError, OSError):
                pass
            await reconnect()
        return None

    answered = 0
    try:
        await reconnect()
        payloads = [b"{this is not json]\n", b"[1, 2, 3]\n"] * frames
        payloads.append(b"x" * (MAX_LINE_BYTES + 512) + b"\n")
        for payload in payloads:
            reply = await exchange(payload)
            if (reply is not None and reply.get("status") == "error"
                    and "bad request" in reply.get("error", "")):
                answered += 1
        pong = await exchange(b'{"op": "ping"}\n')
        return (pong is not None and pong.get("op") == "pong"
                and answered == len(payloads))
    finally:
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def run_chaos(
    spec: WorkloadSpec,
    plan: Optional[FaultPlan] = None,
    config: Optional[ServeConfig] = None,
    min_answered_rate: float = 0.99,
    max_p99_ms: Optional[float] = None,
    client_retries: int = 3,
    client_timeout_s: float = 30.0,
) -> ChaosReport:
    """One full chaos exercise: server + transport + faults + workload."""
    plan = plan if plan is not None else default_chaos_plan(spec.seed)
    config = config or ServeConfig(preload=list(spec.keys))
    previous = current_injector()
    injector = install_plan(plan)
    assert injector is not None
    before = _counter_values()
    _log.info("chaos run starting", seed=spec.seed,
              plan=plan.fingerprint()[:12], requests=spec.requests)
    try:
        server = InferenceServer(config)
        await server.start()
        tcp = await serve_tcp(server, host="127.0.0.1", port=0)
        port = tcp.sockets[0].getsockname()[1]
        client = RemoteClient("127.0.0.1", port, timeout_s=client_timeout_s,
                              retries=client_retries, seed=spec.seed)
        try:
            await client.connect()
            feeder = asyncio.create_task(_garbage_feeder("127.0.0.1", port))
            report = await run_workload(client.submit, spec)
            try:
                garbage_answered = bool(await feeder)
            except Exception as exc:  # a dead feeder is a finding, not a crash
                _log.warning("garbage feeder failed",
                             error=f"{type(exc).__name__}: {exc}")
                garbage_answered = False
            health = await client.health()
            alerts = server.alerts()
        finally:
            await client.close()
            tcp.close()
            await tcp.wait_closed()
            await server.stop()
        telemetry_enabled = server.snapshots is not None
        telemetry_snapshots = (
            server.snapshots.ring.taken if server.snapshots else 0
        )
        snapshot = injector.snapshot()
        faults = {point: info["fired"] for point, info in snapshot.items()
                  if info["fired"]}
        after = _counter_values()
    finally:
        # Restore whatever plan (or none) was active before the run.
        if previous is not None:
            install_plan(previous.plan)
        else:
            clear_plan()
    report.attach_alerts(alerts)
    chaos = ChaosReport(
        report=report,
        plan_fingerprint=plan.fingerprint(),
        requests_digest=_requests_digest(spec),
        faults_injected=faults,
        resilience={k: after[k] - before[k] for k in after},
        health_after=health,
        garbage_answered=garbage_answered,
        min_answered_rate=min_answered_rate,
        max_p99_ms=max_p99_ms,
        telemetry_enabled=telemetry_enabled,
        telemetry_snapshots=telemetry_snapshots,
    )
    chaos.record()
    return chaos
