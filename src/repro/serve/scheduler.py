"""SLO-aware scheduling: admission control, priorities, expiry, backpressure.

The scheduler is the single writer of the pending store and runs entirely
on the server's event loop.  Its contract:

* :meth:`submit` — admit a request (stamping arrival and deadline) or
  *shed* it immediately when the bounded queue is full, attaching a
  ``retry_after_ms`` hint derived from the cost model's calibrated drain
  estimate (classic load-shedding backpressure).
* :meth:`next_batch` — block until work is available, pick the most
  urgent lane (priority, then deadline), drop requests whose deadline
  already passed (*expiry* — executing them would waste array time a
  live request could use), size the batch with the cost model against
  the earliest deadline's slack, and optionally linger up to
  ``batch_timeout_ms`` to let compatible requests arrive and fill the
  batch (bounded by the slack itself, so lingering never causes the
  miss it is trying to amortize).
* :meth:`close` — wake every waiter; undrained requests resolve as
  ``CANCELLED``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from ..obs import get_logger, get_registry, get_tracer
from .batcher import Batch, Pending, PendingStore
from .costmodel import BatchCostModel
from .registry import ModelRegistry, RegisteredModel
from .request import InferenceRequest, InferenceResponse, Status

__all__ = ["SLOScheduler"]

_log = get_logger("serve.scheduler")


class SLOScheduler:
    """Priority admission queue + deadline-aware dynamic batcher."""

    def __init__(
        self,
        registry: ModelRegistry,
        cost_model: BatchCostModel,
        max_queue: int = 128,
        max_batch: int = 8,
        batch_timeout_ms: float = 2.0,
        default_slo_ms: float = 100.0,
        workers: int = 1,
    ) -> None:
        self.registry = registry
        self.cost_model = cost_model
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.batch_timeout_ms = batch_timeout_ms
        self.default_slo_ms = default_slo_ms
        self.workers = workers
        self.store = PendingStore()
        self._wakeup = asyncio.Condition()
        self._closed = False
        self._draining = False
        self._metrics = get_registry()

    # ------------------------------------------------------------ admission

    async def submit(self, request: InferenceRequest) -> "asyncio.Future":
        """Admit (or shed) one request; returns the completion future."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        now = time.monotonic()
        request.arrival = now
        request.arrival_ns = time.perf_counter_ns()
        slo = request.slo_ms if request.slo_ms is not None else self.default_slo_ms
        request.slo_ms = slo
        # Deadline propagation: a request arriving over the wire carries
        # the client deadline's unspent budget (``deadline_ms``, already
        # decremented by every upstream hop).  The effective deadline is
        # the tighter of that budget and the server SLO — a stale hedged
        # duplicate whose budget is spent expires below without ever
        # taking a batch slot.
        budget = slo if request.deadline_ms is None else min(
            slo, request.deadline_ms)
        request.deadline = now + budget / 1000.0

        # The admission decision is one span of the request's trace: a
        # child of the wire context when the client minted one, a fresh
        # trace root for in-process submissions, nothing when disabled.
        tracer = get_tracer()
        span = tracer.span(
            "serve.admit", category="serve",
            ctx=request.trace, new_trace=request.trace is None,
            request_id=request.request_id, model=request.key.canonical(),
        )
        with span:
            if span.context is not None:
                request.trace = span.context

            if self._closed:
                if self._draining:
                    # Graceful drain: refuse politely with a retry hint sized to
                    # the work still queued, instead of a hard CANCELLED.
                    model = self._model_if_loaded(request)
                    retry = self.cost_model.drain_ms(
                        len(self.store) + 1, model, self.workers
                    )
                    self._metrics.counter("serve.requests",
                                          status=Status.SHED.value).inc()
                    self._metrics.counter("serve.drain_rejections").inc()
                    span.set(outcome="shed", reason="draining")
                    future.set_result(
                        self._terminal(request, Status.SHED, retry_after_ms=retry)
                    )
                else:
                    span.set(outcome="cancelled", reason="closed")
                    future.set_result(self._terminal(request, Status.CANCELLED))
                return future

            if budget <= 0.0:
                self._metrics.counter("serve.requests",
                                      status=Status.EXPIRED.value).inc()
                self._metrics.counter("serve.expired_at_admission").inc()
                span.set(outcome="expired", reason="deadline_budget_spent")
                _log.debug("expired at admission", id=request.request_id,
                           deadline_ms=request.deadline_ms)
                future.set_result(self._terminal(request, Status.EXPIRED))
                return future

            if len(self.store) >= self.max_queue:
                model = self._model_if_loaded(request)
                retry = self.cost_model.drain_ms(
                    len(self.store), model, self.workers
                )
                self._metrics.counter("serve.requests",
                                      status=Status.SHED.value).inc()
                self._metrics.counter("serve.shed").inc()
                span.set(outcome="shed", reason="queue_full",
                         queue=len(self.store))
                _log.debug("shed request", id=request.request_id,
                           queue=len(self.store), retry_after_ms=f"{retry:.1f}")
                future.set_result(
                    self._terminal(request, Status.SHED, retry_after_ms=retry)
                )
                return future

            self.store.push(Pending(request, future))
            span.set(outcome="admitted", queue=len(self.store))
            self._metrics.gauge("serve.queue.depth").set(len(self.store))
        async with self._wakeup:
            self._wakeup.notify_all()
        return future

    async def requeue(self, items) -> None:
        """Put a dispatched batch back in the queue (crashed worker).

        Deadlines are unchanged, so a request whose SLO lapsed while its
        worker died expires on the next :meth:`next_batch` pass rather
        than silently getting a second budget.
        """
        requeued = 0
        for pending in items:
            if not pending.future.done():
                self.store.push(pending)
                requeued += 1
        if requeued:
            self._metrics.counter("resilience.requeued").inc(requeued)
            self._metrics.gauge("serve.queue.depth").set(len(self.store))
            _log.warning("requeued batch from crashed worker", count=requeued)
        async with self._wakeup:
            self._wakeup.notify_all()

    def cancel(self, request_id: int) -> bool:
        """Cancel one *queued* request by id (the ``op: cancel`` wire op).

        The hedge loser's slot is released and its future resolves
        CANCELLED; a request already dispatched to a worker runs to
        completion (its answer is simply discarded by the hedging
        router), so cancellation is best-effort by design.
        """
        pending = self.store.remove(request_id)
        if pending is None:
            return False
        self._metrics.counter("serve.requests",
                              status=Status.CANCELLED.value).inc()
        self._metrics.counter("serve.cancelled_queued").inc()
        self._metrics.gauge("serve.queue.depth").set(len(self.store))
        if not pending.future.done():
            pending.future.set_result(
                self._terminal(pending.request, Status.CANCELLED)
            )
        _log.debug("cancelled queued request", id=request_id)
        return True

    def _model_if_loaded(self, request: InferenceRequest) -> Optional[RegisteredModel]:
        """A registered model for the retry hint, without triggering a build."""
        keys = self.registry.keys()
        if request.key in keys:
            return self.registry.get(request.key)
        return self.registry.get(keys[0]) if keys else None

    # ------------------------------------------------------------- batching

    async def next_batch(self) -> Optional[Batch]:
        """The next batch to execute, or ``None`` once closed and drained."""
        while True:
            async with self._wakeup:
                while not self._closed and self.store.next_key() is None:
                    await self._wakeup.wait()
            if self.store.next_key() is None:
                if self._closed:
                    return None
                continue

            lane = self.store.next_key()
            now = time.monotonic()
            head = self._reap_expired(lane, now)
            if head is None:
                continue  # whole lane had expired; pick again

            try:
                model = await self._model_for(head)
            except Exception as exc:  # unknown net, bad variant, OOM, ...
                # A failed build must resolve the request, not kill the
                # worker that pulled it: surface it as an ERROR response.
                self._metrics.counter("serve.requests",
                                      status=Status.ERROR.value).inc()
                _log.warning("model build failed",
                             model=head.request.key.canonical(),
                             error=f"{type(exc).__name__}: {exc}")
                if not head.future.done():
                    response = self._terminal(head.request, Status.ERROR)
                    response.error = f"{type(exc).__name__}: {exc}"
                    head.future.set_result(response)
                continue
            slack = max(0.0, head.request.slack_ms(now))
            flavor = "int8" if head.request.int8 else "float"
            planned = self.cost_model.plan_batch_size(
                model, slack, self.max_batch, flavor=flavor
            )
            items = [head] + self.store.take(lane, planned - 1)

            # Linger: let compatible requests arrive to fill the batch, but
            # never longer than the slack that remains on the batch head.
            linger_ms = min(self.batch_timeout_ms, slack)
            deadline = time.monotonic() + linger_ms / 1000.0
            while len(items) < planned and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                async with self._wakeup:
                    try:
                        await asyncio.wait_for(self._wakeup.wait(), remaining)
                    except asyncio.TimeoutError:
                        break
                items.extend(self.store.take(lane, planned - len(items)))

            self._metrics.gauge("serve.queue.depth").set(len(self.store))
            batch = Batch(key=head.request.key, items=items,
                          planned_size=planned, int8=head.request.int8)
            self._metrics.counter("serve.batches").inc()
            self._metrics.histogram(
                "serve.batch.size", buckets=(1, 2, 4, 8, 16, 32, 64)
            ).observe(len(batch))
            return batch

    def _reap_expired(self, lane, now: float) -> Optional[Pending]:
        """Pop the lane head, resolving already-dead requests as EXPIRED."""
        while True:
            taken = self.store.take(lane, 1)
            if not taken:
                return None
            pending = taken[0]
            if pending.request.deadline >= now:
                return pending
            self._metrics.counter("serve.requests",
                                  status=Status.EXPIRED.value).inc()
            self._metrics.counter("serve.expired").inc()
            request = pending.request
            if request.arrival_ns:
                # The queue wait still happened; close its span so the
                # trace shows where the expired request's budget went.
                get_tracer().complete(
                    "serve.queue", request.arrival_ns, time.perf_counter_ns(),
                    category="serve", ctx=request.trace,
                    request_id=request.request_id, outcome="expired",
                )
            pending.future.set_result(
                self._terminal(pending.request, Status.EXPIRED)
            )

    async def _model_for(self, pending: Pending) -> RegisteredModel:
        """Resolve the model; a cold build runs off-loop in a thread."""
        key = pending.request.key
        if key in self.registry.keys():
            return self.registry.get(key)
        return await asyncio.to_thread(self.registry.get, key)

    # ------------------------------------------------------------- shutdown

    async def close(self, drain: bool = True) -> None:
        """Stop admitting; optionally cancel whatever is still queued.

        With ``drain=True`` late submissions are SHED with a retry-after
        hint while the queue empties; with ``drain=False`` they (and the
        queue) resolve CANCELLED.
        """
        self._closed = True
        self._draining = drain
        if not drain:
            for pending in self.store.drain_all():
                if not pending.future.done():
                    pending.future.set_result(
                        self._terminal(pending.request, Status.CANCELLED)
                    )
        async with self._wakeup:
            self._wakeup.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def draining(self) -> bool:
        """Closed for admission but still completing queued work."""
        return self._closed and self._draining

    # -------------------------------------------------------------- helpers

    @staticmethod
    def _terminal(
        request: InferenceRequest,
        status: Status,
        retry_after_ms: Optional[float] = None,
    ) -> InferenceResponse:
        now = time.monotonic()
        waited = max(0.0, (now - request.arrival) * 1000.0) if request.arrival else 0.0
        return InferenceResponse(
            request_id=request.request_id,
            key=request.key,
            status=status,
            queue_ms=waited,
            total_ms=waited,
            slo_ms=request.slo_ms or 0.0,
            retry_after_ms=retry_after_ms,
            trace_id=request.trace.trace_id if request.trace else None,
        )
