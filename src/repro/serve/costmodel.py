"""Cost model pricing dynamic batches with the analytical latency model.

This is where the serving layer closes the paper's loop: batch sizing and
admission decisions are driven by the *simulated systolic-array cost* of
each FuSeConv network, computed by :func:`repro.systolic.latency.
estimate_network` (optionally memoized on disk via
:mod:`repro.systolic.diskcache`, the PR-2 cache).

Simulated milliseconds are not wall-clock milliseconds — the host that
runs the numpy forward is not a 700 MHz systolic array — so the model
keeps a per-process *calibration* factor: an EWMA of observed
``wall_ms / simulated_ms`` per model, updated after every executed batch.
Predictions used against SLO budgets are calibrated; the raw simulated
cost is also reported per response (it is the paper-relevant number).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple, Union

from ..obs import get_logger, get_registry
from ..systolic import ArrayConfig
from ..systolic.diskcache import estimate_network_cached
from .registry import RegisteredModel
from .request import ModelKey

__all__ = ["BatchCostModel"]

_log = get_logger("serve.costmodel")

#: EWMA smoothing for the wall/simulated calibration factor.
_CALIBRATION_ALPHA = 0.3


class BatchCostModel:
    """Predict batch latency from the systolic-array analytical model.

    Args:
        array: the modeled accelerator (defaults to the paper's 64×64
            output-stationary array).
        cache_dir: optional on-disk memo for the per-(network, batch)
            estimates, shared across processes and runs.
    """

    def __init__(
        self,
        array: Optional[ArrayConfig] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        if array is None:
            from ..systolic.config import PAPER_ARRAY

            array = PAPER_ARRAY
        self.array = array
        self.cache_dir = cache_dir
        self._sim_ms: Dict[Tuple[ModelKey, int], float] = {}
        # Wall/simulated calibration, learned per (model, plan flavor):
        # the int8 plan executes a different kernel set than the float
        # plans, so its wall-clock-per-simulated-ms ratio is its own.
        self._calibration: Dict[Tuple[ModelKey, str], float] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------- simulated cost

    def simulated_ms(self, model: RegisteredModel, batch: int = 1) -> float:
        """Analytical systolic-array latency of one batch, in milliseconds."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        memo_key = (model.key, batch)
        with self._lock:
            cached = self._sim_ms.get(memo_key)
        if cached is not None:
            return cached
        latency = estimate_network_cached(
            model.network, self.array, batch=batch, cache_dir=self.cache_dir
        )
        ms = latency.total_ms
        with self._lock:
            self._sim_ms[memo_key] = ms
        get_registry().counter("serve.costmodel.estimates").inc()
        return ms

    # -------------------------------------------------------- wall estimate

    def calibration(self, key: ModelKey, flavor: str = "float") -> float:
        """Wall-per-simulated-ms factor for (model, flavor).

        An unseen int8 flavor borrows the float factor (better than 1.0:
        the plans differ by a bounded kernel-speed ratio, not by orders
        of magnitude); a completely unseen model starts at 1.0.
        """
        with self._lock:
            value = self._calibration.get((key, flavor))
            if value is None and flavor != "float":
                value = self._calibration.get((key, "float"))
            return 1.0 if value is None else value

    def observe(self, model: RegisteredModel, batch: int, wall_ms: float,
                flavor: str = "float") -> None:
        """Fold one executed batch into the per-flavor calibration EWMA."""
        sim = self.simulated_ms(model, batch)
        if sim <= 0 or wall_ms <= 0:
            return
        ratio = wall_ms / sim
        with self._lock:
            previous = self._calibration.get((model.key, flavor))
            value = (
                ratio if previous is None
                else previous + _CALIBRATION_ALPHA * (ratio - previous)
            )
            self._calibration[(model.key, flavor)] = value
        get_registry().gauge(
            "serve.costmodel.calibration", model=model.key.canonical(),
            flavor=flavor,
        ).set(value)

    def predicted_wall_ms(self, model: RegisteredModel, batch: int = 1,
                          flavor: str = "float") -> float:
        """Calibrated wall-clock prediction for one batch."""
        return self.simulated_ms(model, batch) * self.calibration(
            model.key, flavor)

    # ---------------------------------------------------------- batch sizing

    def plan_batch_size(
        self,
        model: RegisteredModel,
        slack_ms: float,
        max_batch: int,
        flavor: str = "float",
    ) -> int:
        """Largest batch (≤ ``max_batch``) predicted to finish within ``slack_ms``.

        Batch latency is non-decreasing in the batch size, so a linear
        scan from 1 terminates at the first violation.  At least 1 is
        always returned — a single request that cannot meet its deadline
        is the scheduler's problem (expiry), not the batcher's.
        """
        max_batch = max(1, max_batch)
        planned = 1
        for n in range(2, max_batch + 1):
            if self.predicted_wall_ms(model, n, flavor) > slack_ms:
                break
            planned = n
        return planned

    # ------------------------------------------------------------- backlog

    def drain_ms(self, backlog: Union[int, list], model: Optional[RegisteredModel],
                 workers: int = 1) -> float:
        """Rough time to drain a backlog — the SHED ``retry_after`` hint.

        ``backlog`` is a queue depth (requests); the estimate assumes each
        drains at the model's calibrated single-request rate across the
        worker pool.  With no model yet registered the hint degrades to a
        fixed small pause.
        """
        depth = backlog if isinstance(backlog, int) else len(backlog)
        if model is None or depth <= 0:
            return 10.0
        per_request = self.predicted_wall_ms(model, 1)
        return depth * per_request / max(1, workers)
