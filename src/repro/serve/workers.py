"""Worker pool: execute formed batches on one of three engines.

Each worker is an asyncio task that pulls batches from the scheduler and
runs them in a thread (``asyncio.to_thread``), so N workers give N
concurrently-executing batches while the event loop keeps admitting and
batching.  numpy releases the GIL inside its kernels, so worker threads
overlap for the compute-heavy engines.

Engines:

* ``graph`` — the pure :mod:`repro.nn` forward path
  (:class:`GraphExecutor`).  Default execution is *lockstep*: each batch
  item runs as its own single-sample forward, which makes a batch of N
  identical requests **bit-identical** to N unbatched calls (the einsum
  contraction path inside the vectorized forward depends on the batch
  dimension, so stacked execution is only float-close).  ``bitexact=False``
  switches to stacked ``(N, C, H, W)`` execution for throughput.  With
  ``compiled=True`` (the default) both modes run through a cached
  :class:`~repro.nn.compile.InferencePlan` — an exact (no-fold) plan in
  lockstep mode, which keeps the bit-identity contract, and a fully
  folded/fused plan in stacked mode.  Plan compilation failure degrades
  to the eager executor without surfacing an error.
* ``array`` — the simulated-hardware path: every item runs through
  :class:`repro.systolic.executor.ArrayNetworkExecutor` (which fans its
  heavy layers across the PR-2 process pool when ``jobs > 1``), and the
  response's ``simulated_ms`` is the *measured* cycle count instead of
  the analytical estimate.  Use small arrays/resolutions: the functional
  simulator is the slow, faithful machine.
* ``analytical`` — no numerics at all: the batch "executes" in zero work
  and responses carry only the cost model's simulated latency.  This is
  the engine for scheduler/batcher experiments at high request rates.

Resilience (``docs/robustness.md``): with ``resilience=True`` (default)
a failing batch walks the **degradation chain** — compiled plan → eager
graph → analytical estimate; int8 batches prepend their flavor, walking
int8 plan → folded plan → eager → analytical — instead of erroring, and
the surviving response carries ``degraded=True`` with the reason.  A per-model
:class:`~repro.serve.resilience.CircuitBreaker` short-circuits repeated
primary failures straight to the analytical stage until a cooldown
passes.  Crashed worker tasks re-queue their batch and are restarted by
the pool supervisor (``resilience.worker_restarts``).  The
``serve.engine`` / ``serve.worker`` fault points of :mod:`repro.faults`
are injected here.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..faults import inject
from ..nn.tensor import Tensor
from ..obs import get_logger, get_registry, get_tracer
from ..systolic import ArrayConfig
from .batcher import Batch
from .costmodel import BatchCostModel
from .registry import ModelRegistry, RegisteredModel
from .request import InferenceResponse, Status, output_digest
from .resilience import CircuitBreaker
from .scheduler import SLOScheduler

__all__ = ["ENGINES", "WorkerPool", "execute_batch"]

ENGINES = ("graph", "array", "analytical")

_log = get_logger("serve.workers")


def _run_graph(model: RegisteredModel, inputs: List[np.ndarray],
               bitexact: bool, compiled: bool = True,
               int8: bool = False) -> List[np.ndarray]:
    if compiled:
        if int8:
            # The quantized plan: stacked execution on integer kernels.
            # int8 takes precedence over bitexact (a quantized answer is
            # never bit-identical to eager by construction).  A latched
            # build failure falls through to the float plans below.
            plan = model.plan_for(len(inputs), flavor="int8")
            if plan is not None:
                stacked = np.stack(inputs).astype(np.float32, copy=False)
                out = plan.run(stacked)
                return [out[i] for i in range(out.shape[0])]
        if bitexact and not int8:
            # Exact (no-fold) single-sample plan: bit-identical to the
            # eager unbatched forward, preserving the determinism contract.
            plan = model.plan_for(1, exact=True)
            if plan is not None:
                return [plan.run(x[None].astype(np.float32, copy=False))[0]
                        for x in inputs]
        else:
            plan = model.plan_for(len(inputs), exact=False)
            if plan is not None:
                stacked = np.stack(inputs).astype(np.float32, copy=False)
                out = plan.run(stacked)
                return [out[i] for i in range(out.shape[0])]
    if bitexact:
        return [
            model.executor(Tensor(x[None])).data[0] for x in inputs
        ]
    stacked = np.stack(inputs)
    out = model.executor(Tensor(stacked)).data
    return [out[i] for i in range(out.shape[0])]


def _run_array(model: RegisteredModel, inputs: List[np.ndarray],
               array: ArrayConfig, sim_engine: str,
               jobs: int) -> tuple:
    executor = model.array_executor(array, engine=sim_engine, jobs=jobs)
    outputs, cycles = [], 0
    for x in inputs:
        run = executor.run(np.asarray(x, dtype=np.float64))
        outputs.append(np.asarray(run.values, dtype=np.float32))
        cycles += run.cycles
    return outputs, cycles


def _run_engine(
    batch: Batch,
    model: RegisteredModel,
    cost_model: BatchCostModel,
    engine: str,
    bitexact: bool,
    jobs: int,
    sim_engine: str,
    compiled: bool,
    int8: Optional[bool] = None,
) -> Tuple[List[Optional[np.ndarray]], Optional[float]]:
    """One attempt of one engine; (outputs, simulated_ms override).

    ``int8=None`` follows the batch's flavor; the degradation chain
    passes ``int8=False`` to retry the same batch on the float path.
    """
    requests = batch.requests
    use_int8 = batch.int8 if int8 is None else int8
    if engine == "graph":
        inputs = [r.resolve_input(model.input_shape) for r in requests]
        return _run_graph(model, inputs, bitexact, compiled, use_int8), None
    if engine == "array":
        inputs = [r.resolve_input(model.input_shape) for r in requests]
        outputs, cycles = _run_array(
            model, inputs, cost_model.array, sim_engine, jobs
        )
        return outputs, cost_model.array.cycles_to_ms(cycles)
    if engine == "analytical":
        return [None] * len(requests), None  # cost only; no numerics
    raise ValueError(f"unknown serve engine {engine!r}")


def execute_batch(
    batch: Batch,
    model: RegisteredModel,
    cost_model: BatchCostModel,
    engine: str = "graph",
    bitexact: bool = True,
    jobs: int = 1,
    sim_engine: str = "vector",
    compiled: bool = True,
    breaker: Optional[CircuitBreaker] = None,
    resilience: bool = True,
) -> List[InferenceResponse]:
    """Run one batch synchronously (worker-thread body); returns responses.

    The responses are in batch order and not yet delivered — the caller
    resolves the futures back on the event loop.

    With ``resilience=True`` a primary-path failure degrades instead of
    erroring: ``graph``-engine batches retry on the eager executor, and
    any engine's last resort is an analytical-estimate response flagged
    ``degraded`` (no output tensor, but a priced answer within the SLO
    machinery).  ``resilience=False`` restores the pre-hardening
    behavior: the failure surfaces as an ERROR response per request.
    """
    n = len(batch)
    requests = batch.requests
    dispatch = time.monotonic()
    dispatch_ns = time.perf_counter_ns()
    simulated_ms = cost_model.simulated_ms(model, n)
    error: Optional[str] = None
    degraded = False
    degraded_reason: Optional[str] = None
    outputs: List[Optional[np.ndarray]] = [None] * n
    registry = get_registry()
    tracer = get_tracer()

    start = time.perf_counter()
    # One batch span (its own trace — N request traces fan into it via the
    # trace_ids annotation and the per-request spans recorded below); the
    # engine/degradation spans nest inside it through the ambient context.
    with tracer.span(
        "serve.batch", category="serve", new_trace=True,
        model=batch.key.canonical(), batch=n, engine=engine,
        int8=batch.int8,
        trace_ids=[r.trace.trace_id for r in requests if r.trace],
    ) as batch_span:
        if breaker is not None and not breaker.allow():
            # Open breaker: skip the primary entirely; the analytical estimate
            # is the fastest truthful answer while the model cools down.
            degraded = True
            degraded_reason = "circuit breaker open"
            registry.counter("resilience.breaker_short_circuits").inc()
            tracer.instant("resilience.breaker_open", category="serve",
                           model=batch.key.canonical())
        else:
            try:
                with tracer.span("serve.execute", category="serve",
                                 model=batch.key.canonical(), batch=n,
                                 engine=engine):
                    inject("serve.engine")
                    outputs, sim_override = _run_engine(
                        batch, model, cost_model, engine, bitexact, jobs,
                        sim_engine, compiled,
                    )
                    if sim_override is not None:
                        simulated_ms = sim_override
                if breaker is not None:
                    breaker.record(True)
            except Exception as exc:  # surfaces per-request, never kills the worker
                failure = f"{type(exc).__name__}: {exc}"
                if breaker is not None:
                    breaker.record(False)
                _log.warning("batch execution failed",
                             model=batch.key.canonical(),
                             batch=n, engine=engine, error=failure)
                if not resilience:
                    error = failure
                elif engine == "graph" and compiled:
                    # Degradation chain: int8 batches first retry the
                    # folded float plan, then everything retries the
                    # eager graph, and the last resort is the analytical
                    # estimate.  Each stage's reason names the stage that
                    # answered and the failure it is covering for.
                    stages = []
                    if batch.int8:
                        stages.append(("folded", {"int8": False}))
                    stages.append(("eager", {"int8": False,
                                             "compiled": False}))
                    for stage, overrides in stages:
                        try:
                            with tracer.span("resilience.degrade",
                                             category="serve", stage=stage,
                                             model=batch.key.canonical()):
                                outputs, _ = _run_engine(
                                    batch, model, cost_model, "graph",
                                    bitexact, jobs, sim_engine,
                                    overrides.get("compiled", True),
                                    int8=overrides["int8"],
                                )
                            degraded = True
                            degraded_reason = (
                                f"{stage} fallback after: {failure}"
                            )
                            break
                        except Exception as exc2:
                            failure = f"{type(exc2).__name__}: {exc2}"
                    else:
                        degraded = True
                        degraded_reason = (
                            f"analytical fallback after: {failure}"
                        )
                        outputs = [None] * n
                else:
                    # Chain stage 3 directly: analytical estimate only.
                    degraded = True
                    degraded_reason = f"analytical fallback after: {failure}"
                    outputs = [None] * n
                if degraded:
                    tracer.instant("resilience.degraded", category="serve",
                                   model=batch.key.canonical(),
                                   reason=degraded_reason)
        if degraded:
            batch_span.set(degraded=True, reason=degraded_reason)
        if error is not None:
            batch_span.set(failed=True)
    execute_ms = (time.perf_counter() - start) * 1000.0
    end_ns = dispatch_ns + int(execute_ms * 1e6)
    batch_ms = max(0.0, (dispatch - batch.formed_at) * 1000.0)

    if error is None and not degraded:
        cost_model.observe(model, n, execute_ms,
                           flavor="int8" if batch.int8 else "float")

    responses = []
    for request, out in zip(requests, outputs):
        status = Status.ERROR if error is not None else Status.OK
        queue_ms = max(0.0, (dispatch - request.arrival) * 1000.0)
        total_ms = queue_ms + execute_ms
        response = InferenceResponse(
            request_id=request.request_id,
            key=request.key,
            status=status,
            output=out,
            digest=output_digest(out),
            error=error,
            queue_ms=queue_ms,
            execute_ms=execute_ms,
            total_ms=total_ms,
            simulated_ms=simulated_ms,
            batch_size=n,
            slo_ms=request.slo_ms or 0.0,
            degraded=degraded,
            degraded_reason=degraded_reason,
            trace_id=request.trace.trace_id if request.trace else None,
        )
        if request.want_timings:
            response.timings = {
                "queue_ms": round(queue_ms, 3),
                "batch_ms": round(batch_ms, 3),
                "execute_ms": round(execute_ms, 3),
                "total_ms": round(total_ms, 3),
            }
        responses.append(response)
        if request.arrival_ns:
            # Retroactive per-request slices: queue wait (admission →
            # dispatch, only knowable now) and this request's ride through
            # the shared batch execution, both in the *request's* trace.
            queue_ctx = tracer.complete(
                "serve.queue", request.arrival_ns, dispatch_ns,
                category="serve", ctx=request.trace,
                request_id=request.request_id, outcome="dispatched",
            )
            tracer.complete(
                "serve.request", dispatch_ns, end_ns,
                category="serve", ctx=queue_ctx or request.trace,
                request_id=request.request_id, status=status.value,
                engine=engine, batch=n, degraded=degraded,
            )
        registry.counter("serve.requests", status=status.value).inc()
        if degraded:
            registry.counter("resilience.degraded_responses").inc()
        registry.histogram("serve.latency.seconds").observe(total_ms / 1000.0)
        registry.histogram("serve.queue.wait_seconds").observe(queue_ms / 1000.0)
        if status is Status.OK and not responses[-1].slo_met:
            registry.counter("serve.slo.violations").inc()
    registry.histogram("serve.execute.seconds").observe(execute_ms / 1000.0)
    registry.counter("serve.batch.requests").inc(n)
    return responses


class WorkerPool:
    """N asyncio worker tasks draining the scheduler, with supervision.

    The pool restarts crashed workers (their in-hand batch is re-queued
    first, so no admitted request is lost) up to ``max_restarts`` times
    and keeps one :class:`CircuitBreaker` per served model.  With
    ``resilience=False`` a crash is logged and the worker stays down —
    the pre-hardening baseline.
    """

    def __init__(
        self,
        scheduler: SLOScheduler,
        registry: ModelRegistry,
        cost_model: BatchCostModel,
        workers: int = 2,
        engine: str = "graph",
        bitexact: bool = True,
        jobs: int = 1,
        sim_engine: str = "vector",
        compiled: bool = True,
        resilience: bool = True,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 2.0,
        max_restarts: int = 100,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.scheduler = scheduler
        self.registry = registry
        self.cost_model = cost_model
        self.workers = max(1, workers)
        self.engine = engine
        self.bitexact = bitexact
        self.jobs = jobs
        self.sim_engine = sim_engine
        self.compiled = compiled
        self.resilience = resilience
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.max_restarts = max_restarts
        self.restarts = 0
        self._tasks: Set[asyncio.Task] = set()
        self._breakers: Dict[object, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()

    # ------------------------------------------------------------- breakers

    def breaker_for(self, key) -> Optional[CircuitBreaker]:
        """The per-model breaker (lazily created); ``None`` when disabled."""
        if not self.resilience:
            return None
        with self._breaker_lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    threshold=self.breaker_threshold,
                    cooldown_s=self.breaker_cooldown_s,
                    label=key.canonical(),
                )
                self._breakers[key] = breaker
                breaker.publish()
        return breaker

    def breaker_states(self) -> Dict[str, str]:
        """Model → breaker state, for health introspection."""
        with self._breaker_lock:
            return {
                key.canonical(): breaker.state
                for key, breaker in self._breakers.items()
            }

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        for i in range(self.workers):
            self._spawn(i)

    def _spawn(self, index: int) -> None:
        task = asyncio.create_task(self._loop(index), name=f"serve-worker-{index}")
        self._tasks.add(task)
        task.add_done_callback(lambda t, i=index: self._on_worker_done(i, t))

    def _on_worker_done(self, index: int, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            return  # normal exit: scheduler closed and drained
        _log.warning("serve worker crashed", worker=index,
                     error=f"{type(exc).__name__}: {exc}")
        if not self.resilience:
            _log.error("worker left down (resilience disabled)", worker=index)
            return
        if self.restarts >= self.max_restarts:
            _log.error("worker restart limit reached; leaving worker down",
                       worker=index, restarts=self.restarts)
            return
        self.restarts += 1
        get_registry().counter("resilience.worker_restarts").inc()
        get_tracer().instant("resilience.worker_restart", category="serve",
                             worker=index)
        self._spawn(index)

    @property
    def alive(self) -> int:
        """Currently-running worker tasks."""
        return sum(1 for t in self._tasks if not t.done())

    async def join(self) -> None:
        """Wait for every worker to exit (after the scheduler closes).

        Restarted workers spawned while joining are waited on too: the
        loop drains until the supervisor has nothing left alive.
        """
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
            await asyncio.sleep(0)  # let done-callbacks (restarts) run
        self._tasks.clear()

    async def _loop(self, index: int) -> None:
        while True:
            batch = await self.scheduler.next_batch()
            if batch is None:
                return
            try:
                inject("serve.worker")
                model = self.registry.get(batch.key)  # hot: built at batch time
            except BaseException:
                # Crash with a batch in hand: put the work back before
                # dying so the restarted worker (or a sibling) re-forms it.
                await self.scheduler.requeue(batch.items)
                raise
            responses = await asyncio.to_thread(
                execute_batch, batch, model, self.cost_model,
                self.engine, self.bitexact, self.jobs, self.sim_engine,
                self.compiled, self.breaker_for(batch.key), self.resilience,
            )
            for pending, response in zip(batch.items, responses):
                if not pending.future.done():
                    pending.future.set_result(response)
