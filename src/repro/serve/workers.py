"""Worker pool: execute formed batches on one of three engines.

Each worker is an asyncio task that pulls batches from the scheduler and
runs them in a thread (``asyncio.to_thread``), so N workers give N
concurrently-executing batches while the event loop keeps admitting and
batching.  numpy releases the GIL inside its kernels, so worker threads
overlap for the compute-heavy engines.

Engines:

* ``graph`` — the pure :mod:`repro.nn` forward path
  (:class:`GraphExecutor`).  Default execution is *lockstep*: each batch
  item runs as its own single-sample forward, which makes a batch of N
  identical requests **bit-identical** to N unbatched calls (the einsum
  contraction path inside the vectorized forward depends on the batch
  dimension, so stacked execution is only float-close).  ``bitexact=False``
  switches to stacked ``(N, C, H, W)`` execution for throughput.  With
  ``compiled=True`` (the default) both modes run through a cached
  :class:`~repro.nn.compile.InferencePlan` — an exact (no-fold) plan in
  lockstep mode, which keeps the bit-identity contract, and a fully
  folded/fused plan in stacked mode.  Plan compilation failure degrades
  to the eager executor without surfacing an error.
* ``array`` — the simulated-hardware path: every item runs through
  :class:`repro.systolic.executor.ArrayNetworkExecutor` (which fans its
  heavy layers across the PR-2 process pool when ``jobs > 1``), and the
  response's ``simulated_ms`` is the *measured* cycle count instead of
  the analytical estimate.  Use small arrays/resolutions: the functional
  simulator is the slow, faithful machine.
* ``analytical`` — no numerics at all: the batch "executes" in zero work
  and responses carry only the cost model's simulated latency.  This is
  the engine for scheduler/batcher experiments at high request rates.
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Optional

import numpy as np

from ..nn.tensor import Tensor
from ..obs import get_logger, get_registry, get_tracer
from ..systolic import ArrayConfig
from .batcher import Batch
from .costmodel import BatchCostModel
from .registry import ModelRegistry, RegisteredModel
from .request import InferenceResponse, Status, output_digest
from .scheduler import SLOScheduler

__all__ = ["ENGINES", "WorkerPool", "execute_batch"]

ENGINES = ("graph", "array", "analytical")

_log = get_logger("serve.workers")


def _run_graph(model: RegisteredModel, inputs: List[np.ndarray],
               bitexact: bool, compiled: bool = True) -> List[np.ndarray]:
    if compiled:
        if bitexact:
            # Exact (no-fold) single-sample plan: bit-identical to the
            # eager unbatched forward, preserving the determinism contract.
            plan = model.plan_for(1, exact=True)
            if plan is not None:
                return [plan.run(x[None].astype(np.float32, copy=False))[0]
                        for x in inputs]
        else:
            plan = model.plan_for(len(inputs), exact=False)
            if plan is not None:
                stacked = np.stack(inputs).astype(np.float32, copy=False)
                out = plan.run(stacked)
                return [out[i] for i in range(out.shape[0])]
    if bitexact:
        return [
            model.executor(Tensor(x[None])).data[0] for x in inputs
        ]
    stacked = np.stack(inputs)
    out = model.executor(Tensor(stacked)).data
    return [out[i] for i in range(out.shape[0])]


def _run_array(model: RegisteredModel, inputs: List[np.ndarray],
               array: ArrayConfig, sim_engine: str,
               jobs: int) -> tuple:
    executor = model.array_executor(array, engine=sim_engine, jobs=jobs)
    outputs, cycles = [], 0
    for x in inputs:
        run = executor.run(np.asarray(x, dtype=np.float64))
        outputs.append(np.asarray(run.values, dtype=np.float32))
        cycles += run.cycles
    return outputs, cycles


def execute_batch(
    batch: Batch,
    model: RegisteredModel,
    cost_model: BatchCostModel,
    engine: str = "graph",
    bitexact: bool = True,
    jobs: int = 1,
    sim_engine: str = "vector",
    compiled: bool = True,
) -> List[InferenceResponse]:
    """Run one batch synchronously (worker-thread body); returns responses.

    The responses are in batch order and not yet delivered — the caller
    resolves the futures back on the event loop.
    """
    n = len(batch)
    requests = batch.requests
    dispatch = time.monotonic()
    simulated_ms = cost_model.simulated_ms(model, n)
    error: Optional[str] = None
    outputs: List[Optional[np.ndarray]] = [None] * n

    start = time.perf_counter()
    try:
        with get_tracer().span("serve.execute", category="serve",
                               model=batch.key.canonical(), batch=n,
                               engine=engine):
            if engine == "graph":
                inputs = [r.resolve_input(model.input_shape) for r in requests]
                outputs = _run_graph(model, inputs, bitexact, compiled)
            elif engine == "array":
                inputs = [r.resolve_input(model.input_shape) for r in requests]
                outputs, cycles = _run_array(
                    model, inputs, cost_model.array, sim_engine, jobs
                )
                simulated_ms = cost_model.array.cycles_to_ms(cycles)
            elif engine == "analytical":
                pass  # cost only; no numerics
            else:
                raise ValueError(f"unknown serve engine {engine!r}")
    except Exception as exc:  # surfaces per-request, never kills the worker
        error = f"{type(exc).__name__}: {exc}"
        _log.warning("batch execution failed", model=batch.key.canonical(),
                     batch=n, error=error)
    execute_ms = (time.perf_counter() - start) * 1000.0

    if error is None:
        cost_model.observe(model, n, execute_ms)

    registry = get_registry()
    responses = []
    for request, out in zip(requests, outputs):
        status = Status.ERROR if error is not None else Status.OK
        queue_ms = max(0.0, (dispatch - request.arrival) * 1000.0)
        total_ms = queue_ms + execute_ms
        responses.append(InferenceResponse(
            request_id=request.request_id,
            key=request.key,
            status=status,
            output=out,
            digest=output_digest(out),
            error=error,
            queue_ms=queue_ms,
            execute_ms=execute_ms,
            total_ms=total_ms,
            simulated_ms=simulated_ms,
            batch_size=n,
            slo_ms=request.slo_ms or 0.0,
        ))
        registry.counter("serve.requests", status=status.value).inc()
        registry.histogram("serve.latency.seconds").observe(total_ms / 1000.0)
        registry.histogram("serve.queue.wait_seconds").observe(queue_ms / 1000.0)
        if status is Status.OK and not responses[-1].slo_met:
            registry.counter("serve.slo.violations").inc()
    registry.histogram("serve.execute.seconds").observe(execute_ms / 1000.0)
    registry.counter("serve.batch.requests").inc(n)
    return responses


class WorkerPool:
    """N asyncio worker tasks draining the scheduler."""

    def __init__(
        self,
        scheduler: SLOScheduler,
        registry: ModelRegistry,
        cost_model: BatchCostModel,
        workers: int = 2,
        engine: str = "graph",
        bitexact: bool = True,
        jobs: int = 1,
        sim_engine: str = "vector",
        compiled: bool = True,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.scheduler = scheduler
        self.registry = registry
        self.cost_model = cost_model
        self.workers = max(1, workers)
        self.engine = engine
        self.bitexact = bitexact
        self.jobs = jobs
        self.sim_engine = sim_engine
        self.compiled = compiled
        self._tasks: List[asyncio.Task] = []

    def start(self) -> None:
        for i in range(self.workers):
            self._tasks.append(
                asyncio.create_task(self._loop(i), name=f"serve-worker-{i}")
            )

    async def join(self) -> None:
        """Wait for every worker to exit (after the scheduler closes)."""
        if self._tasks:
            await asyncio.gather(*self._tasks)
            self._tasks = []

    async def _loop(self, index: int) -> None:
        while True:
            batch = await self.scheduler.next_batch()
            if batch is None:
                return
            model = self.registry.get(batch.key)  # hot: built at batch time
            responses = await asyncio.to_thread(
                execute_batch, batch, model, self.cost_model,
                self.engine, self.bitexact, self.jobs, self.sim_engine,
                self.compiled,
            )
            for pending, response in zip(batch.items, responses):
                if not pending.future.done():
                    pending.future.set_result(response)
