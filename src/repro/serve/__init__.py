"""Async inference serving over the FuSeConv reproduction stack.

The subsystem that turns the offline toolkit into a request path:

* :mod:`repro.serve.request` — request/response model with deadlines and
  batch-compatibility keys;
* :mod:`repro.serve.registry` — preloaded, shared FuSe-transformed models;
* :mod:`repro.serve.costmodel` — batch pricing from the systolic-array
  analytical model (calibrated to wall clock);
* :mod:`repro.serve.batcher` / :mod:`repro.serve.scheduler` — dynamic
  batching with SLO-aware sizing, priority queues, admission control,
  load shedding and deadline expiry;
* :mod:`repro.serve.workers` — batch execution engines (``graph`` /
  ``array`` / ``analytical``);
* :mod:`repro.serve.server` — the :class:`InferenceServer` facade;
* :mod:`repro.serve.transport` — JSON-lines TCP front-end and client;
* :mod:`repro.serve.loadgen` — deterministic closed/open-loop load
  generation and the benchmark report;
* :mod:`repro.serve.resilience` — circuit breaker and retry policy;
* :mod:`repro.serve.chaos` — seeded chaos runs over :mod:`repro.faults`;
* :mod:`repro.serve.top` — the live ``repro top`` terminal view over the
  ``op: metrics`` telemetry scrape.

Observability (``docs/observability.md``): every request carries a
:class:`~repro.obs.context.SpanContext` across the wire, so a loadgen or
chaos run exports one Perfetto timeline of linked
client→transport→admit→queue→batch→engine spans, and the server feeds a
snapshot ring that serves live QPS/latency/shed/burn-rate telemetry.

See ``docs/serving.md`` for the architecture and an example session, and
``docs/robustness.md`` for the fault-injection and resilience story.
"""

from .batcher import Batch, Pending, PendingStore
from .chaos import ChaosReport, default_chaos_plan, run_chaos
from .costmodel import BatchCostModel
from .loadgen import LoadReport, WorkloadSpec, build_requests, run_workload
from .registry import ModelRegistry, RegisteredModel
from .request import (
    InferenceRequest,
    InferenceResponse,
    ModelKey,
    Status,
    make_input,
    output_digest,
)
from .resilience import CircuitBreaker, RetryPolicy
from .scheduler import SLOScheduler
from .server import InferenceServer, ServeConfig
from .top import render_frame, run_top
from .transport import (
    MAX_LINE_BYTES,
    RemoteClient,
    request_from_wire,
    response_to_wire,
    serve_tcp,
)
from .workers import ENGINES as SERVE_ENGINES
from .workers import WorkerPool, execute_batch

__all__ = [
    "Batch",
    "Pending",
    "PendingStore",
    "BatchCostModel",
    "LoadReport",
    "WorkloadSpec",
    "build_requests",
    "run_workload",
    "ModelRegistry",
    "RegisteredModel",
    "InferenceRequest",
    "InferenceResponse",
    "ModelKey",
    "Status",
    "make_input",
    "output_digest",
    "SLOScheduler",
    "InferenceServer",
    "ServeConfig",
    "CircuitBreaker",
    "RetryPolicy",
    "ChaosReport",
    "default_chaos_plan",
    "run_chaos",
    "MAX_LINE_BYTES",
    "RemoteClient",
    "request_from_wire",
    "response_to_wire",
    "serve_tcp",
    "SERVE_ENGINES",
    "WorkerPool",
    "execute_batch",
    "render_frame",
    "run_top",
]
