"""The inference server: registry + scheduler + workers behind one facade.

:class:`InferenceServer` is transport-agnostic — callers ``await
submit(request)`` from any coroutine on the server's loop; the TCP
JSON-lines front-end in :mod:`repro.serve.transport` and the in-process
load generator in :mod:`repro.serve.loadgen` are both thin clients of
this interface.

Lifecycle::

    server = InferenceServer(ServeConfig(preload=[key1, key2]))
    await server.start()          # builds models off-loop, starts workers
    response = await server.submit(InferenceRequest(key=key1))
    await server.stop()           # drains the queue, joins the workers

Everything observable funnels through :mod:`repro.obs`: per-status
request counters, queue-depth gauge, batch-size / latency / queue-wait
histograms, SLO-violation and shed counters, plus ``serve.*`` spans when
tracing is enabled.  ``stats()`` snapshots the serving-relevant slice of
the registry for reports and smoke checks.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..obs import get_logger, get_registry
from ..obs.alerts import evaluate_alerts
from ..obs.expose import ExpositionServer, render_exposition
from ..obs.snapshots import LiveStats, SnapshotLoop, derive_live
from ..systolic import ArrayConfig
from .costmodel import BatchCostModel
from .registry import ModelRegistry
from .request import InferenceRequest, InferenceResponse, ModelKey
from .scheduler import SLOScheduler
from .workers import ENGINES, WorkerPool

__all__ = ["ServeConfig", "InferenceServer"]

_log = get_logger("serve.server")


@dataclass
class ServeConfig:
    """Every serving knob in one place (CLI flags map 1:1 onto fields)."""

    engine: str = "graph"            #: graph | array | analytical
    workers: int = 2                 #: concurrent batch executors
    max_batch: int = 8               #: dynamic batch ceiling
    max_queue: int = 128             #: admission bound (backpressure)
    batch_timeout_ms: float = 2.0    #: linger to fill a batch
    slo_ms: float = 100.0            #: default per-request deadline budget
    bitexact: bool = True            #: lockstep batch execution (see workers)
    compile: bool = True             #: compiled InferencePlan graph path
    int8: bool = False               #: default requests onto the int8 plan
    jobs: int = 1                    #: process fan-out of the array engine
    sim_engine: str = "vector"       #: functional-simulator engine
    cache_dir: Optional[str] = None  #: disk cache for cost-model estimates
    plan_cache_cap: Optional[int] = None  #: LRU bound on compiled plans/model
    sparsity: Optional[float] = None  #: prune+pack non-exact plan flavors
    pack_gamma: int = 8              #: column-combining group-size limit
    array: Optional[ArrayConfig] = None  #: modeled accelerator (default 64x64)
    preload: List[ModelKey] = field(default_factory=list)
    resilience: bool = True          #: degradation chain / breakers / restarts
    # Warm-up gate (docs/fleet.md): with ``require_warmup`` the health op
    # reports ``ready: false, warming: true`` until :meth:`warmup` has
    # pre-built the preloaded models and compiled the plans the hot path
    # will use — a fleet supervisor drives ``op: warmup`` with the lanes
    # the ring assigns before the router may route here, so a scale-up
    # never serves a cold plan.
    require_warmup: bool = False
    breaker_threshold: int = 3       #: consecutive failures before open
    breaker_cooldown_s: float = 2.0  #: open → half-open probe delay
    telemetry: bool = True           #: snapshot loop feeding live stats/alerts
    snapshot_interval_s: float = 1.0  #: registry sampling cadence
    metrics_port: Optional[int] = None  #: HTTP exposition port (0 = ephemeral)

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")


class InferenceServer:
    """Async dynamic-batching inference server over the reproduction stack."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.registry = ModelRegistry(
            plan_cache_cap=self.config.plan_cache_cap,
            sparsity=self.config.sparsity,
            pack_gamma=self.config.pack_gamma,
        )
        self.cost_model = BatchCostModel(
            array=self.config.array, cache_dir=self.config.cache_dir
        )
        self.scheduler = SLOScheduler(
            self.registry,
            self.cost_model,
            max_queue=self.config.max_queue,
            max_batch=self.config.max_batch,
            batch_timeout_ms=self.config.batch_timeout_ms,
            default_slo_ms=self.config.slo_ms,
            workers=self.config.workers,
        )
        self.pool = WorkerPool(
            self.scheduler,
            self.registry,
            self.cost_model,
            workers=self.config.workers,
            engine=self.config.engine,
            bitexact=self.config.bitexact,
            jobs=self.config.jobs,
            sim_engine=self.config.sim_engine,
            compiled=self.config.compile,
            resilience=self.config.resilience,
            breaker_threshold=self.config.breaker_threshold,
            breaker_cooldown_s=self.config.breaker_cooldown_s,
        )
        self._started = False
        self._warmed = not self.config.require_warmup
        self._snapshots: Optional[SnapshotLoop] = None
        self._exposition: Optional[ExpositionServer] = None

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> "InferenceServer":
        if self._started:
            return self
        if self.config.preload:
            await asyncio.to_thread(self.registry.preload, self.config.preload)
        self.pool.start()
        if self.config.telemetry:
            self._snapshots = SnapshotLoop(
                interval_s=self.config.snapshot_interval_s
            ).start()
        if self.config.metrics_port is not None:
            self._exposition = ExpositionServer(
                port=self.config.metrics_port,
                metrics_fn=render_exposition,
                telemetry_fn=self.telemetry_payload,
            ).start()
            _log.info("metrics exposition listening",
                      port=self._exposition.port)
        self._started = True
        _log.info(
            "server started", engine=self.config.engine,
            workers=self.config.workers, max_batch=self.config.max_batch,
            max_queue=self.config.max_queue, slo_ms=self.config.slo_ms,
            preloaded=len(self.registry),
        )
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop admitting, then drain (default) or cancel queued work."""
        if not self._started:
            return
        await self.scheduler.close(drain=drain)
        await self.pool.join()
        if self._exposition is not None:
            self._exposition.stop()
            self._exposition = None
        if self._snapshots is not None:
            await asyncio.to_thread(self._snapshots.stop)
        self._started = False
        _log.info("server stopped", drained=drain)

    async def __aenter__(self) -> "InferenceServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -------------------------------------------------------------- serving

    async def submit(self, request: InferenceRequest) -> InferenceResponse:
        """Serve one request end to end (admission → batch → response).

        With ``ServeConfig.int8`` the server defaults every request onto
        the quantized plan flavor; requests can still opt in per-request
        via ``InferenceRequest.int8`` when the server default is float.
        """
        if not self._started:
            raise RuntimeError("server is not started")
        if self.config.int8:
            request.int8 = True
        future = await self.scheduler.submit(request)
        return await future

    async def submit_many(
        self, requests: List[InferenceRequest]
    ) -> List[InferenceResponse]:
        """Submit a burst concurrently; responses in request order."""
        if self.config.int8:
            for request in requests:
                request.int8 = True
        futures = [await self.scheduler.submit(r) for r in requests]
        return list(await asyncio.gather(*futures))

    def cancel_request(self, request_id: int) -> bool:
        """Cancel one queued request by id (the ``op: cancel`` wire op).

        Best-effort: ``True`` when the request was still queued (its slot
        is released and its future resolves CANCELLED), ``False`` when it
        already dispatched, completed, or never existed here.
        """
        return self.scheduler.cancel(request_id)

    # --------------------------------------------------------------- warm-up

    async def warmup(self, lanes: Optional[List[dict]] = None) -> dict:
        """Pre-build models and compile the hot-path plans (``op: warmup``).

        ``lanes`` is a list of wire-shaped lane specs (``{"net": ...,
        "variant": ..., "resolution": ..., "seed": ..., "int8": ...}``) —
        the lanes a fleet ring assigns this replica; ``None`` warms every
        preloaded model.  For each lane the model is built and the exact
        plan flavors the serving path will request are compiled (exact@1
        under ``bitexact``, folded at batch 1/``max_batch`` otherwise,
        the int8 plan — including its compile-time calibration — for int8
        lanes).  Runs off-loop; flips the warm-up gate so ``health()``
        reports ready.  Idempotent — re-warming a warm lane hits the plan
        cache and costs nothing.
        """
        specs = self._warm_lanes(lanes)
        start = time.perf_counter()

        def _warm() -> List[str]:
            warmed = []
            for key, int8 in specs:
                model = self.registry.get(key)
                for batch, kwargs in self._warm_shapes(int8):
                    model.plan_for(batch, **kwargs)
                warmed.append(key.canonical() + ("|int8" if int8 else ""))
            return warmed

        warmed = await asyncio.to_thread(_warm)
        warmup_ms = (time.perf_counter() - start) * 1000.0
        self._warmed = True
        registry = get_registry()
        registry.counter("serve.warmups").inc()
        registry.gauge("serve.warmup.lanes").set(float(len(warmed)))
        registry.gauge("serve.warmup.ms").set(warmup_ms)
        _log.info("warmup complete", lanes=len(warmed),
                  ms=f"{warmup_ms:.1f}")
        return {"warmed": len(warmed), "lanes": warmed,
                "warmup_ms": round(warmup_ms, 3)}

    def _warm_lanes(self, lanes: Optional[List[dict]]) -> List[tuple]:
        """Normalize wire lane specs → ``[(ModelKey, int8), ...]``."""
        if lanes is None:
            return [(key, self.config.int8) for key in self.config.preload]
        specs = []
        for lane in lanes:
            key = ModelKey(
                network=lane.get("net") or lane["network"],
                variant=lane.get("variant"),
                resolution=int(lane.get("resolution", 64)),
                seed=int(lane.get("seed", 0)),
            )
            specs.append((key, bool(lane.get("int8", False)) or self.config.int8))
        return specs

    def _warm_shapes(self, int8: bool) -> List[tuple]:
        """The ``plan_for`` calls the hot path will make for one lane.

        Mirrors :func:`repro.serve.workers._run_graph`: nothing to
        compile off the graph engine, exact@1 under ``bitexact``, the
        folded plan at the batch sizes the batcher forms otherwise, and
        the quantized plan (PTQ calibration included) for int8 lanes.
        """
        if self.config.engine != "graph" or not self.config.compile:
            return []
        batches = sorted({1, self.config.max_batch})
        if int8:
            return [(b, {"flavor": "int8"}) for b in batches]
        if self.config.bitexact:
            return [(1, {"exact": True})]
        return [(b, {"exact": False}) for b in batches]

    # ---------------------------------------------------------------- stats

    def health(self) -> dict:
        """Liveness/readiness snapshot (the transport's ``health`` op).

        ``ready`` means the server accepts new work; during a graceful
        drain it flips to ``False`` while ``draining`` is ``True`` and
        queued requests are still being completed.  With
        ``require_warmup`` it also stays ``False`` — with ``warming:
        true`` — until :meth:`warmup` completed, so a fleet router holds
        traffic off a replica that would serve cold plans.
        """
        draining = self.scheduler.draining and (
            self._started or len(self.scheduler.store) > 0
        )
        warming = not self._warmed
        return {
            "status": "ok",
            "ready": self._started and not self.scheduler.closed
            and not warming,
            "warming": warming,
            "draining": draining,
            "queue_depth": len(self.scheduler.store),
            "workers_alive": self.pool.alive,
            "worker_restarts": self.pool.restarts,
            "models": [k.canonical() for k in self.registry.keys()],
            "breakers": self.pool.breaker_states(),
            "engine": self.config.engine,
            "resilience": self.config.resilience,
        }

    def stats(self) -> dict:
        """Snapshot of the serving metrics (counts, queue, batch sizes)."""
        registry = get_registry()
        out = {"queue_depth": len(self.scheduler.store),
               "models": [k.canonical() for k in self.registry.keys()]}
        for status in ("ok", "shed", "expired", "error", "cancelled"):
            metric = registry.get("serve.requests", status=status)
            out[f"requests_{status}"] = int(metric.value) if metric else 0
        batches = registry.get("serve.batches")
        out["batches"] = int(batches.value) if batches else 0
        sizes = registry.get("serve.batch.size")
        if sizes is not None and sizes.count:
            out["mean_batch"] = sizes.mean
            out["max_batch"] = sizes.max
        violations = registry.get("serve.slo.violations")
        out["slo_violations"] = int(violations.value) if violations else 0
        return out

    # ------------------------------------------------------------- telemetry

    @property
    def snapshots(self) -> Optional[SnapshotLoop]:
        """The live snapshot loop (``None`` with telemetry disabled).

        Kept after :meth:`stop` so post-run reports can still read the
        ring; only the sampling thread is stopped.
        """
        return self._snapshots

    @property
    def metrics_port(self) -> Optional[int]:
        """The bound exposition port (resolves ``metrics_port=0``)."""
        return self._exposition.port if self._exposition is not None else None

    def live(self, window_s: float = 10.0) -> LiveStats:
        """The derived live view (QPS, windowed percentiles, sheds...)."""
        if self._snapshots is None:
            return LiveStats()
        return derive_live(self._snapshots.ring, window_s=window_s)

    def alerts(self) -> list:
        """Current burn-rate alert states over the snapshot ring."""
        if self._snapshots is None:
            return []
        return evaluate_alerts(self._snapshots.ring, slo_ms=self.config.slo_ms)

    def telemetry_payload(self) -> dict:
        """JSON view served by ``op: metrics`` and ``GET /telemetry``."""
        return {
            "live": self.live().to_dict(),
            "alerts": [a.to_dict() for a in self.alerts()],
            "health": self.health(),
        }
