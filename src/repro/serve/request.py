"""Request/response data model of the serving subsystem.

A request names *what* to run — a :class:`ModelKey` (network, FuSe
variant, resolution, weight seed) — and *how urgently* — an SLO deadline
and a priority class.  The input tensor is either attached directly or
derived deterministically from ``input_seed``, so a request is fully
reproducible from its JSON form (the transport sends seeds, not tensors,
unless the caller insists).

Responses carry the latency breakdown the benchmark harness aggregates
(queue wait, batch-formation wait, execution), the dynamic batch size the
request rode in, and both clocks that matter here:

* ``total_ms`` — wall-clock service latency (what the SLO is about);
* ``simulated_ms`` — the systolic-array latency of the batch under the
  analytical model of :mod:`repro.systolic.latency`, i.e. what the same
  batch would cost on the paper's hardware.

``digest`` is a SHA-256 over the output tensor bytes; the bit-determinism
guarantee (batched == unbatched) is stated and tested in terms of it.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

import numpy as np

from ..core import FuSeVariant
from ..obs.context import SpanContext

__all__ = [
    "ModelKey",
    "Status",
    "InferenceRequest",
    "InferenceResponse",
    "make_input",
    "output_digest",
]

_ids = itertools.count(1)


class Status(str, Enum):
    """Terminal state of one request."""

    OK = "ok"              #: executed; output attached
    SHED = "shed"          #: refused at admission (queue full / overload)
    EXPIRED = "expired"    #: deadline passed before execution started
    ERROR = "error"        #: execution raised; message in ``error``
    CANCELLED = "cancelled"  #: server stopped without draining the queue


@dataclass(frozen=True)
class ModelKey:
    """What to run: everything that decides weights, graph and shapes.

    Two requests are *batch-compatible* iff their keys are equal — same
    IR graph, same weights, same input shape — so a key is also the
    coalescing key of the dynamic batcher and the lookup key of the
    model registry.
    """

    network: str
    variant: Optional[str] = None      # FuSe variant value, e.g. "half"
    resolution: int = 64
    seed: int = 0                      # weight seed of the GraphExecutor

    def __post_init__(self) -> None:
        if self.variant is not None:
            FuSeVariant.from_label(self.variant)  # validate early

    @property
    def fuse_variant(self) -> Optional[FuSeVariant]:
        if self.variant is None:
            return None
        return FuSeVariant.from_label(self.variant)

    def canonical(self) -> str:
        """Stable display/label form, e.g. ``mobilenet_v1:half@64``."""
        variant = f":{self.variant}" if self.variant else ""
        seed = f"/s{self.seed}" if self.seed else ""
        return f"{self.network}{variant}@{self.resolution}{seed}"


def make_input(shape: Tuple[int, ...], seed: int) -> np.ndarray:
    """The deterministic input tensor a seed stands for (float32)."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(np.float32)


def output_digest(values: Optional[np.ndarray]) -> Optional[str]:
    """SHA-256 over dtype, shape and raw bytes of an output tensor."""
    if values is None:
        return None
    arr = np.ascontiguousarray(values)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


@dataclass
class InferenceRequest:
    """One unit of admitted (or refused) work."""

    key: ModelKey
    input_seed: int = 0
    input: Optional[np.ndarray] = None   # (C, H, W); derived from seed if None
    slo_ms: Optional[float] = None       # deadline budget; server default if None
    priority: int = 0                    # lower sorts first (0 = interactive)
    # Plan-flavor opt-in: run on the quantized int8 plan (wire field
    # ``"int8": true``).  Int8 requests batch separately from float ones
    # (their outputs differ) and take precedence over ``bitexact`` — a
    # quantized answer is by construction not bit-identical to eager.
    int8: bool = False
    request_id: int = field(default_factory=lambda: next(_ids))
    # Cross-hop deadline budget (wire field ``deadline_ms``): milliseconds
    # of the *client's* deadline still unspent when this hop received the
    # request.  Every forwarding hop decrements it by its own elapsed
    # time, so a replica admitting a stale hedged duplicate sees a spent
    # budget and expires it immediately instead of wasting a batch slot.
    # ``None`` means no propagated deadline; the server SLO applies alone.
    deadline_ms: Optional[float] = None

    # Filled in by the server at admission (monotonic clock).
    arrival: float = 0.0
    deadline: float = 0.0
    # Tracing: the originating span's context (minted by the client or at
    # admission), plus the tracer-clock arrival used to place the
    # retroactive queue-wait span.  ``arrival`` stays on time.monotonic
    # for deadline math; spans need the perf_counter_ns clock.
    trace: Optional[SpanContext] = None
    arrival_ns: int = 0
    # Wire flag: echo the per-stage timing breakdown on the response.
    want_timings: bool = False

    def resolve_input(self, shape: Tuple[int, ...]) -> np.ndarray:
        """The concrete input tensor (attached, or derived from the seed)."""
        if self.input is not None:
            return np.asarray(self.input, dtype=np.float32)
        return make_input(shape, self.input_seed)

    def slack_ms(self, now: Optional[float] = None) -> float:
        """Milliseconds until the deadline (negative = already late)."""
        now = time.monotonic() if now is None else now
        return (self.deadline - now) * 1000.0


@dataclass
class InferenceResponse:
    """Terminal record of one request."""

    request_id: int
    key: ModelKey
    status: Status
    output: Optional[np.ndarray] = None
    digest: Optional[str] = None
    error: Optional[str] = None

    # Latency breakdown (wall-clock milliseconds).
    queue_ms: float = 0.0        # admission → batch dispatch
    execute_ms: float = 0.0      # batch dispatch → done (shared by the batch)
    total_ms: float = 0.0        # admission → response
    simulated_ms: float = 0.0    # analytical systolic-array cost of the batch

    batch_size: int = 0          # dynamic batch this request rode in
    slo_ms: float = 0.0          # the deadline budget that applied
    retry_after_ms: Optional[float] = None  # set on SHED: predicted drain time

    # Graceful degradation (docs/robustness.md): an OK response produced by
    # a fallback stage of the chain (eager graph instead of a compiled
    # plan, or the analytical estimate with no numerics at all) is flagged
    # so callers can tell a degraded answer from a full one.
    degraded: bool = False
    degraded_reason: Optional[str] = None

    # Tracing: the trace this request belongs to, and — when the request
    # asked for them — the per-stage wall-clock breakdown
    # (``{"queue_ms": ..., "batch_ms": ..., "execute_ms": ...}``).
    trace_id: Optional[str] = None
    timings: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status is Status.OK

    @property
    def slo_met(self) -> bool:
        """Did the request complete within its deadline budget?"""
        return self.ok and (self.slo_ms <= 0 or self.total_ms <= self.slo_ms)
