"""``repro top``: a live terminal view of a running inference server.

Polls the serving wire protocol's ``op: metrics`` (so it works against
any reachable server, no extra port needed), parses the Prometheus-style
exposition text with :func:`repro.obs.expose.parse_exposition` — the
scrape path a real collector would take, exercised on purpose — and
renders one frame per interval::

    repro top --port 8707 --interval 1.0

    repro serve @ 127.0.0.1:8707 — frame 3
      qps         : 212.4 req/s   (window 10.0 s)
      latency ms  : p50=8.2   p95=19.7  p99=31.0
      queue       : depth 12   batch occupancy 5.3
      shed        : 1.2%   slo-violation 0.4%   degraded 0.0%
      requests    : ok=1204 shed=15 expired=0 error=0
      breakers    : mobilenet_v1:half@64=closed
      alerts      :
        shed-burn    ok      fast=0.012 slow=0.010 (> 0.10 fires)
        ...

Rates and percentiles come from the server's snapshot ring (the
``telemetry`` object); cumulative totals are read from the parsed
exposition samples, so a wire-format regression shows up here first.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Dict, List, Optional, TextIO

from ..obs import get_logger
from ..obs.alerts import render_alerts, Alert
from ..obs.expose import Exposition, parse_exposition
from ..obs.snapshots import aggregate_live
from .request import Status
from .transport import RemoteClient

__all__ = ["render_frame", "render_fleet_frame", "run_top"]

_log = get_logger("serve.top")

#: Gauge value → breaker state (inverse of resilience.BREAKER_STATES).
_BREAKER_NAMES = {0.0: "closed", 0.5: "half-open", 1.0: "open"}


def _status_counts(exposition: Exposition) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for sample in exposition.samples:
        if sample.name != "repro_serve_requests_total":
            continue
        status = sample.label("status") or "?"
        counts[status] = counts.get(status, 0) + int(sample.value)
    return counts


def render_frame(
    live: Dict[str, object],
    alerts: List[dict],
    exposition: Exposition,
    title: str = "repro serve",
    frame: int = 0,
) -> str:
    """One ``top`` frame from the telemetry payload + parsed exposition."""
    def num(key: str) -> float:
        return float(live.get(key, 0.0) or 0.0)

    counts = _status_counts(exposition)
    ordered = [s.value for s in Status if s.value in counts]
    ordered += sorted(set(counts) - set(ordered))
    breakers = live.get("breaker_states") or {}
    lines = [
        f"{title} — frame {frame}",
        f"  qps         : {num('qps'):.1f} req/s   "
        f"(window {num('window_s'):.1f} s, {int(num('snapshots'))} snapshots)",
        f"  latency ms  : p50={num('p50_ms'):.1f}  p95={num('p95_ms'):.1f}  "
        f"p99={num('p99_ms'):.1f}",
        f"  queue       : depth {num('queue_depth'):.0f}   "
        f"batch occupancy {num('batch_occupancy'):.2f}",
        f"  shed        : {num('shed_rate') * 100:.1f}%   "
        f"slo-violation {num('slo_violation_rate') * 100:.1f}%   "
        f"degraded {num('degraded_rate') * 100:.1f}%",
        f"  requests    : " + (" ".join(
            f"{status}={counts[status]}" for status in ordered
        ) or "none yet"),
    ]
    if breakers:
        lines.append("  breakers    : " + "  ".join(
            f"{model}={_BREAKER_NAMES.get(float(value), str(value))}"
            for model, value in sorted(breakers.items())
        ))
    alert_objs = [
        Alert(
            rule=str(a.get("rule")), severity=str(a.get("severity", "page")),
            firing=bool(a.get("firing")),
            fast_value=float(a.get("fast_value", 0.0)),
            slow_value=float(a.get("slow_value", 0.0)),
            threshold=float(a.get("threshold", 0.0)),
        )
        for a in alerts
    ]
    lines.append("  " + render_alerts(alert_objs).replace("\n", "\n  "))
    return "\n".join(lines)


def render_fleet_frame(
    replica_views: Dict[str, dict],
    fleet: Optional[dict] = None,
    title: str = "repro fleet",
    frame: int = 0,
) -> str:
    """One fleet frame: per-replica QPS/p99 columns plus aggregated totals.

    ``replica_views`` maps a replica label to its ``telemetry`` payload
    (the ``{live, alerts, health}`` object every server exposes);
    ``fleet`` is the router's ``op: fleet`` accounting, when scraping
    through a router, and adds the state / outstanding columns.
    """
    router_rows = {row["replica"]: row
                   for row in (fleet or {}).get("replicas", [])}
    lines = [
        f"{title} — frame {frame}",
        f"  {'replica':<12} {'state':<9} {'qps':>8} {'p50 ms':>8} "
        f"{'p99 ms':>8} {'queue':>6} {'shed%':>6} {'alerts':>7}",
    ]
    lives: Dict[str, dict] = {}
    for name in sorted(set(replica_views) | set(router_rows)):
        view = replica_views.get(name) or {}
        live = view.get("live") or {}
        lives[name] = live
        router_row = router_rows.get(name, {})
        state = router_row.get("state", "?" if not view else "ready")
        alerts_firing = sum(1 for a in (view.get("alerts") or [])
                            if a.get("firing"))
        queue = live.get("queue_depth")
        if queue in (None, 0.0) and router_row.get("queue_depth") is not None:
            queue = router_row["queue_depth"]

        def num(key: str) -> float:
            return float(live.get(key, 0.0) or 0.0)

        lines.append(
            f"  {name:<12} {str(state):<9} {num('qps'):>8.1f} "
            f"{num('p50_ms'):>8.1f} {num('p99_ms'):>8.1f} "
            f"{float(queue or 0.0):>6.0f} {num('shed_rate') * 100:>6.1f} "
            f"{alerts_firing:>7d}"
        )
    total = aggregate_live(lives)
    usable = (fleet or {}).get("usable", len(replica_views))
    known = (fleet or {}).get("total", len(replica_views))
    lines.append(
        f"  {'fleet':<12} {f'{usable}/{known}':<9} {total.qps:>8.1f} "
        f"{total.p50_ms:>8.1f} {total.p99_ms:>8.1f} "
        f"{total.queue_depth:>6.0f} {total.shed_rate * 100:>6.1f}"
    )
    lines.append(
        f"  totals      : {total.qps:.1f} req/s fleet-wide   "
        f"p99<= {total.p99_ms:.1f} ms   queue {total.queue_depth:.0f}   "
        f"shed {total.shed_rate * 100:.1f}%"
    )
    return "\n".join(lines)


async def _scrape_one(host: str, port: int) -> Optional[dict]:
    """One ``op: metrics`` round-trip against a plain server."""
    client = RemoteClient(host, port, timeout_s=5.0)
    try:
        await client.connect()
        return await client.metrics()
    except (ConnectionError, asyncio.TimeoutError, OSError):
        return None
    finally:
        await client.close()


async def run_top(
    host: str = "127.0.0.1",
    port: int = 8707,
    interval_s: float = 1.0,
    frames: Optional[int] = None,
    out: Optional[TextIO] = None,
    clear: bool = True,
    ports: Optional[List[int]] = None,
    fleet: bool = False,
) -> int:
    """Poll ``op: metrics`` and render frames until stopped.

    Three shapes:

    * default — one server at ``(host, port)``, classic single-node frame;
    * ``fleet=True`` — ``(host, port)`` is a :class:`~repro.fleet.router.
      FleetRouter`; its single ``op: metrics`` reply already aggregates
      every usable replica's telemetry, rendered as one fleet frame;
    * ``ports=[...]`` — scrape several plain servers directly (no router
      needed) and aggregate client-side into the same fleet frame.

    ``frames`` bounds the run (``None`` = until interrupted); returns the
    number of frames rendered.  ``clear`` redraws in place on a TTY and
    appends frames otherwise (piped output stays a readable log).
    """
    out = out if out is not None else sys.stdout
    clear = clear and out.isatty()
    rendered = 0

    async def one_frame(frame: int) -> Optional[str]:
        if ports:
            replies = await asyncio.gather(
                *(_scrape_one(host, p) for p in ports))
            views = {
                f"{host}:{p}": (reply.get("telemetry") or {})
                for p, reply in zip(ports, replies) if reply is not None
            }
            if not views:
                raise ConnectionError("no replica answered the scrape")
            return render_fleet_frame(
                views, title=f"repro fleet @ {host} ({len(views)} replicas)",
                frame=frame)
        reply = await client.metrics()
        telemetry = reply.get("telemetry") or {}
        if fleet:
            views = {name: (view or {})
                     for name, view in (telemetry.get("replicas") or {}).items()}
            return render_fleet_frame(
                views, fleet=telemetry.get("fleet"),
                title=f"repro fleet @ {host}:{port}", frame=frame)
        exposition = parse_exposition(reply.get("exposition", ""))
        return render_frame(
            telemetry.get("live") or {},
            telemetry.get("alerts") or [],
            exposition,
            title=f"repro serve @ {host}:{port}",
            frame=frame,
        )

    client: Optional[RemoteClient] = None
    try:
        if not ports:
            client = RemoteClient(host, port)
            await client.connect()
        while frames is None or rendered < frames:
            text = await one_frame(rendered + 1)
            if clear:
                out.write("\x1b[2J\x1b[H")
            out.write(text + "\n")
            out.flush()
            rendered += 1
            if frames is not None and rendered >= frames:
                break
            await asyncio.sleep(interval_s)
    except (ConnectionError, OSError) as exc:
        _log.error("top lost the server", host=host, port=port,
                   error=f"{type(exc).__name__}: {exc}")
    finally:
        if client is not None:
            await client.close()
    return rendered
