"""Dynamic batching: coalesce compatible requests into cost-sized batches.

Requests are *batch-compatible* when they share a
:class:`~repro.serve.request.ModelKey` — same graph, same weights, same
input shape.  The pending store keeps one FIFO lane per key plus a
priority heap over (priority, deadline) deciding which lane is served
next; the batcher drains the chosen lane up to a *planned* batch size
computed by the :class:`~repro.serve.costmodel.BatchCostModel` from the
earliest deadline's slack.

The store is intentionally not thread-safe: all mutation happens on the
server's event loop (the scheduler), which is the usual asyncio
single-writer discipline.  Worker threads only ever see fully-formed
:class:`Batch` objects.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from .request import InferenceRequest, ModelKey

__all__ = ["Pending", "Batch", "PendingStore"]

_seq = itertools.count()


@dataclass
class Pending:
    """A queued request together with its completion future."""

    request: InferenceRequest
    future: "object"  # asyncio.Future; untyped to keep this module loop-free


@dataclass
class Batch:
    """A formed batch, ready for one worker to execute."""

    key: ModelKey
    items: List[Pending]
    planned_size: int            # what the cost model allowed
    int8: bool = False           # plan flavor every item opted into
    formed_at: float = field(default_factory=time.monotonic)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def earliest_deadline(self) -> float:
        return min(p.request.deadline for p in self.items)

    @property
    def requests(self) -> List[InferenceRequest]:
        return [p.request for p in self.items]


def lane_key(request: InferenceRequest) -> tuple:
    """The coalescing key of one request: model identity plus plan flavor.

    Int8 and float requests for the same model are *not* batch-compatible
    (their outputs differ), so the flavor rides in the lane key and the
    scheduler treats the whole tuple opaquely.
    """
    return (request.key, request.int8)


class PendingStore:
    """Per-lane FIFO queues plus a priority heap over the lane heads.

    Lanes are keyed by :func:`lane_key` — the :class:`ModelKey` plus the
    plan flavor.  The heap holds one entry per *enqueued request* —
    ``(priority, deadline, seq, lane)`` — with lazy deletion: entries
    whose lane has already been drained by an earlier batch are skipped
    on pop.  This keeps both enqueue and pop O(log n) without ever
    moving requests between structures.
    """

    def __init__(self) -> None:
        self._lanes: Dict[tuple, Deque[Pending]] = {}
        self._heap: List[tuple] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def lanes(self) -> Dict[tuple, Deque[Pending]]:
        return self._lanes

    def push(self, pending: Pending) -> None:
        request = pending.request
        key = lane_key(request)
        lane = self._lanes.get(key)
        if lane is None:
            lane = self._lanes[key] = deque()
        lane.append(pending)
        heapq.heappush(
            self._heap,
            (request.priority, request.deadline, next(_seq), key),
        )
        self._size += 1

    def next_key(self) -> Optional[tuple]:
        """The lane the scheduler should serve next (None when empty)."""
        while self._heap:
            _, _, _, key = self._heap[0]
            lane = self._lanes.get(key)
            if lane:
                return key
            heapq.heappop(self._heap)  # stale entry: lane already drained
        return None

    def take(self, key, limit: int) -> List[Pending]:
        """Drain up to ``limit`` requests from one lane (FIFO order).

        ``key`` is a :func:`lane_key` tuple; a bare :class:`ModelKey` is
        accepted for convenience and addresses the float lane.
        """
        if isinstance(key, ModelKey):
            key = (key, False)
        lane = self._lanes.get(key)
        taken: List[Pending] = []
        while lane and len(taken) < limit:
            taken.append(lane.popleft())
        self._size -= len(taken)
        if lane is not None and not lane:
            del self._lanes[key]
        return taken

    def remove(self, request_id: int) -> Optional[Pending]:
        """Pull one queued request out by id (hedge-loser cancellation).

        O(queued) scan — cancels are rare (capped hedge rate) and the
        queue is bounded, so a linear walk beats maintaining a second
        index on the hot push/take path.  The heap entry is left behind
        and lazily skipped, same as a drained lane.
        """
        for key, lane in list(self._lanes.items()):
            for index, pending in enumerate(lane):
                if pending.request.request_id == request_id:
                    del lane[index]
                    self._size -= 1
                    if not lane:
                        del self._lanes[key]
                    return pending
        return None

    def drain_all(self) -> List[Pending]:
        """Empty the store entirely (shutdown path)."""
        everything = [p for lane in self._lanes.values() for p in lane]
        self._lanes.clear()
        self._heap.clear()
        self._size = 0
        return everything
