"""Deterministic load generation + closed/open-loop benchmark harness.

A :class:`WorkloadSpec` expands to a fully deterministic request stream
(model choice, input seed and priority all derive from one workload
seed), so two runs of the same spec issue byte-identical requests — the
timing varies with the host, the *work* does not.

Two standard load models:

* **closed loop** — ``clients`` concurrent virtual users, each issuing
  its next request as soon as the previous one completes.  Throughput is
  an output; this is the "sustained traffic" mode.
* **open loop** — requests arrive on a seeded exponential (Poisson)
  schedule at ``rate`` req/s regardless of completions, which is the mode
  that actually exercises shedding and SLO expiry under overload.

The :class:`LoadReport` aggregates what a serving benchmark needs —
throughput, p50/p95/p99 wall latency, batch-size histogram, shed rate,
SLO violations, simulated-hardware milliseconds — renders a table, and
records itself as ``serve.loadgen.*`` gauges so ``--metrics-out``
sidecars carry the numbers in ``repro.metrics/v1`` form.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_logger, get_registry
from ..obs.alerts import Alert
from ..obs.stats import percentile
from .request import InferenceRequest, InferenceResponse, ModelKey, Status

__all__ = ["WorkloadSpec", "LoadReport", "build_requests", "run_workload"]

_log = get_logger("serve.loadgen")

Submit = Callable[[InferenceRequest], Awaitable[InferenceResponse]]


@dataclass
class WorkloadSpec:
    """A reproducible traffic description."""

    keys: List[ModelKey]
    requests: int = 500
    mode: str = "closed"                 #: closed | open
    clients: int = 8                     #: closed-loop virtual users
    rate: float = 50.0                   #: open-loop arrivals per second
    slo_ms: Optional[float] = None       #: per-request budget (server default if None)
    priorities: Sequence[int] = (0,)     #: sampled uniformly per request
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.keys:
            raise ValueError("workload needs at least one ModelKey")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")


def build_requests(spec: WorkloadSpec) -> List[InferenceRequest]:
    """Expand a spec into its deterministic request stream."""
    rng = np.random.default_rng(spec.seed)
    picks = rng.integers(0, len(spec.keys), size=spec.requests)
    seeds = rng.integers(0, 2**31 - 1, size=spec.requests)
    prios = rng.integers(0, len(spec.priorities), size=spec.requests)
    return [
        InferenceRequest(
            key=spec.keys[int(picks[i])],
            input_seed=int(seeds[i]),
            slo_ms=spec.slo_ms,
            priority=int(spec.priorities[int(prios[i])]),
        )
        for i in range(spec.requests)
    ]


# ------------------------------------------------------------------ drivers

async def _run_closed(
    submit: Submit, requests: List[InferenceRequest], clients: int
) -> List[InferenceResponse]:
    responses: List[Optional[InferenceResponse]] = [None] * len(requests)
    cursor = iter(range(len(requests)))

    async def client() -> None:
        for index in cursor:  # the shared iterator hands out unique indices
            responses[index] = await submit(requests[index])

    await asyncio.gather(*(client() for _ in range(max(1, clients))))
    return [r for r in responses if r is not None]


async def _run_open(
    submit: Submit, requests: List[InferenceRequest], rate: float, seed: int
) -> List[InferenceResponse]:
    if rate <= 0:
        raise ValueError("open-loop rate must be > 0")
    rng = np.random.default_rng(seed ^ 0x5EED)
    gaps = rng.exponential(1.0 / rate, size=len(requests))
    tasks = []
    for request, gap in zip(requests, gaps):
        await asyncio.sleep(float(gap))
        tasks.append(asyncio.create_task(submit(request)))
    return list(await asyncio.gather(*tasks))


async def run_workload(submit: Submit, spec: WorkloadSpec) -> "LoadReport":
    """Drive one workload against any submit callable; aggregate a report."""
    requests = build_requests(spec)
    _log.info("load generation starting", mode=spec.mode,
              requests=len(requests), clients=spec.clients,
              models=len(spec.keys))
    start = time.perf_counter()
    if spec.mode == "closed":
        responses = await _run_closed(submit, requests, spec.clients)
    else:
        responses = await _run_open(submit, requests, spec.rate, spec.seed)
    wall_s = time.perf_counter() - start
    report = LoadReport.from_responses(responses, wall_s, spec)
    report.record()
    return report


# ------------------------------------------------------------------- report

#: Kept as a module alias (tests and older callers import it from here);
#: the implementation lives in :func:`repro.obs.stats.percentile` now,
#: shared with the histogram-quantile estimator of live telemetry.
_percentile = percentile


@dataclass
class LoadReport:
    """Aggregate of one load-generation run."""

    total: int
    wall_s: float
    status_counts: Dict[str, int]
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    mean_batch: float
    batch_histogram: Dict[int, int]
    slo_violations: int
    mean_simulated_ms: float
    mode: str
    per_model: Dict[str, int] = field(default_factory=dict)
    degraded: int = 0      #: OK responses produced by a fallback stage
    #: Burn-rate alert states attached after the run (the loadgen only
    #: sees responses; the caller owning the server's snapshot ring calls
    #: :meth:`attach_alerts` so the report shows the telemetry verdicts).
    alerts: List[Alert] = field(default_factory=list)

    @classmethod
    def from_responses(
        cls,
        responses: List[InferenceResponse],
        wall_s: float,
        spec: WorkloadSpec,
    ) -> "LoadReport":
        counts: Dict[str, int] = {}
        per_model: Dict[str, int] = {}
        batch_hist: Dict[int, int] = {}
        ok_latencies: List[float] = []
        batches: List[int] = []
        sims: List[float] = []
        violations = 0
        degraded = 0
        for r in responses:
            counts[r.status.value] = counts.get(r.status.value, 0) + 1
            per_model[r.key.canonical()] = per_model.get(r.key.canonical(), 0) + 1
            if r.degraded:
                degraded += 1
            if r.ok:
                ok_latencies.append(r.total_ms)
                batches.append(r.batch_size)
                batch_hist[r.batch_size] = batch_hist.get(r.batch_size, 0) + 1
                sims.append(r.simulated_ms)
                if not r.slo_met:
                    violations += 1
        ok_latencies.sort()
        return cls(
            total=len(responses),
            wall_s=wall_s,
            status_counts=counts,
            p50_ms=_percentile(ok_latencies, 50),
            p95_ms=_percentile(ok_latencies, 95),
            p99_ms=_percentile(ok_latencies, 99),
            mean_ms=float(np.mean(ok_latencies)) if ok_latencies else 0.0,
            max_ms=ok_latencies[-1] if ok_latencies else 0.0,
            mean_batch=float(np.mean(batches)) if batches else 0.0,
            batch_histogram=dict(sorted(batch_hist.items())),
            slo_violations=violations,
            mean_simulated_ms=float(np.mean(sims)) if sims else 0.0,
            mode=spec.mode,
            degraded=degraded,
        )

    # ------------------------------------------------------------ accessors

    @property
    def ok(self) -> int:
        return self.status_counts.get(Status.OK.value, 0)

    @property
    def errors(self) -> int:
        return self.status_counts.get(Status.ERROR.value, 0)

    @property
    def shed(self) -> int:
        return (self.status_counts.get(Status.SHED.value, 0)
                + self.status_counts.get(Status.EXPIRED.value, 0))

    @property
    def shed_rate(self) -> float:
        return self.shed / self.total if self.total else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def slo_violation_rate(self) -> float:
        return self.slo_violations / self.ok if self.ok else 0.0

    def attach_alerts(self, alerts: List[Alert]) -> "LoadReport":
        """Attach evaluated burn-rate alerts (rendered and recorded)."""
        self.alerts = list(alerts)
        registry = get_registry()
        for alert in self.alerts:
            registry.gauge(
                "serve.loadgen.alert_firing", rule=alert.rule
            ).set(1.0 if alert.firing else 0.0)
        return self

    # -------------------------------------------------------------- outputs

    def record(self) -> None:
        """Publish the report as ``serve.loadgen.*`` gauges (metrics JSON)."""
        registry = get_registry()
        gauges = {
            "serve.loadgen.requests": self.total,
            "serve.loadgen.ok": self.ok,
            "serve.loadgen.errors": self.errors,
            "serve.loadgen.shed": self.shed,
            "serve.loadgen.shed_rate": self.shed_rate,
            "serve.loadgen.throughput_rps": self.throughput_rps,
            "serve.loadgen.p50_ms": self.p50_ms,
            "serve.loadgen.p95_ms": self.p95_ms,
            "serve.loadgen.p99_ms": self.p99_ms,
            "serve.loadgen.mean_batch": self.mean_batch,
            "serve.loadgen.slo_violations": self.slo_violations,
            "serve.loadgen.slo_violation_rate": self.slo_violation_rate,
            "serve.loadgen.wall_seconds": self.wall_s,
            "serve.loadgen.mean_simulated_ms": self.mean_simulated_ms,
            "serve.loadgen.degraded": self.degraded,
        }
        for name, value in gauges.items():
            registry.gauge(name).set(float(value))

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"load report ({self.mode} loop): {self.total} requests "
            f"in {self.wall_s:.2f} s",
            f"  throughput  : {self.throughput_rps:.1f} ok req/s",
            f"  status      : " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.status_counts.items())
            ),
            f"  latency ms  : p50={self.p50_ms:.1f}  p95={self.p95_ms:.1f}  "
            f"p99={self.p99_ms:.1f}  mean={self.mean_ms:.1f}  max={self.max_ms:.1f}",
            f"  batch size  : mean={self.mean_batch:.2f}  histogram=" + (
                "{" + ", ".join(f"{k}: {v}" for k, v in self.batch_histogram.items()) + "}"
            ),
            f"  shed rate   : {self.shed_rate * 100:.1f}%  "
            f"(shed+expired {self.shed}/{self.total})",
            f"  SLO         : {self.slo_violations} violations "
            f"({self.slo_violation_rate * 100:.1f}% of ok)",
            f"  degraded    : {self.degraded} responses served by a "
            f"fallback stage",
            f"  simulated   : {self.mean_simulated_ms:.3f} ms/batch mean "
            f"(systolic-array cost model)",
        ]
        if self.per_model:
            lines.append("  per model   : " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.per_model.items())
            ))
        if self.alerts:
            lines.append("  alerts      : " + "  ".join(
                f"{a.rule}={'FIRING' if a.firing else 'ok'}"
                for a in self.alerts
            ))
        runtime = self._runtime_line()
        if runtime:
            lines.append(runtime)
        return "\n".join(lines)

    @staticmethod
    def _runtime_line() -> str:
        """Compiled-runtime gauges, when the graph engine built a plan."""
        registry = get_registry()
        compile_ms = registry.get("runtime.compile_ms")
        if compile_ms is None:
            return ""
        arena = registry.get("runtime.arena_bytes")
        fused = registry.get("runtime.ops_fused")
        parts = [f"compile={compile_ms.value:.1f} ms"]
        if arena is not None:
            parts.append(f"arena={arena.value / 1024.0:.0f} KiB")
        if fused is not None:
            parts.append(f"ops_fused={int(fused.value)}")
        return "  runtime     : " + "  ".join(parts) + " (last compiled plan)"
