"""Deterministic load generation + closed/open-loop benchmark harness.

A :class:`WorkloadSpec` expands to a fully deterministic request stream
(model choice, input seed and priority all derive from one workload
seed), so two runs of the same spec issue byte-identical requests — the
timing varies with the host, the *work* does not.

Two standard load models:

* **closed loop** — ``clients`` concurrent virtual users, each issuing
  its next request as soon as the previous one completes.  Throughput is
  an output; this is the "sustained traffic" mode.
* **open loop** — requests arrive on a seeded exponential (Poisson)
  schedule at ``rate`` req/s regardless of completions, which is the mode
  that actually exercises shedding and SLO expiry under overload.

The :class:`LoadReport` aggregates what a serving benchmark needs —
throughput, p50/p95/p99 wall latency, batch-size histogram, shed rate,
SLO violations, simulated-hardware milliseconds — renders a table, and
records itself as ``serve.loadgen.*`` gauges so ``--metrics-out``
sidecars carry the numbers in ``repro.metrics/v1`` form.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_logger, get_registry
from ..obs.alerts import Alert
from ..obs.stats import percentile
from .request import InferenceRequest, InferenceResponse, ModelKey, Status

__all__ = [
    "WorkloadSpec",
    "LoadReport",
    "RampStep",
    "build_requests",
    "run_workload",
    "saturation_qps",
]

_log = get_logger("serve.loadgen")

Submit = Callable[[InferenceRequest], Awaitable[InferenceResponse]]


@dataclass
class WorkloadSpec:
    """A reproducible traffic description."""

    keys: List[ModelKey]
    requests: int = 500
    mode: str = "closed"                 #: closed | open
    clients: int = 8                     #: closed-loop virtual users
    rate: float = 50.0                   #: open-loop arrivals per second
    slo_ms: Optional[float] = None       #: per-request budget (server default if None)
    priorities: Sequence[int] = (0,)     #: sampled uniformly per request
    seed: int = 0
    #: Open-loop stair profile ``(start_rate, end_rate, steps)``: the
    #: request stream is split into ``steps`` equal slices, slice *i*
    #: arriving at the i-th rate of ``linspace(start, end, steps)``.
    #: Implies (and requires) ``mode="open"``; the *stream* is unchanged
    #: — ramping only reshapes arrival times, so replay fingerprints
    #: (:func:`repro.serve.chaos._requests_digest`) are ramp-invariant.
    ramp: Optional[Tuple[float, float, int]] = None

    def __post_init__(self) -> None:
        if not self.keys:
            raise ValueError("workload needs at least one ModelKey")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.ramp is not None:
            start, end, steps = self.ramp
            if self.mode != "open":
                raise ValueError("ramp profiles are open-loop (mode='open')")
            if start <= 0 or end <= 0:
                raise ValueError("ramp rates must be > 0")
            if int(steps) < 2:
                raise ValueError("ramp needs at least 2 steps")
            self.ramp = (float(start), float(end), int(steps))

    def step_rates(self) -> List[float]:
        """The per-step arrival rates of the ramp (empty without one)."""
        if self.ramp is None:
            return []
        start, end, steps = self.ramp
        return [float(r) for r in np.linspace(start, end, steps)]


def build_requests(spec: WorkloadSpec) -> List[InferenceRequest]:
    """Expand a spec into its deterministic request stream."""
    rng = np.random.default_rng(spec.seed)
    picks = rng.integers(0, len(spec.keys), size=spec.requests)
    seeds = rng.integers(0, 2**31 - 1, size=spec.requests)
    prios = rng.integers(0, len(spec.priorities), size=spec.requests)
    return [
        InferenceRequest(
            key=spec.keys[int(picks[i])],
            input_seed=int(seeds[i]),
            slo_ms=spec.slo_ms,
            priority=int(spec.priorities[int(prios[i])]),
        )
        for i in range(spec.requests)
    ]


# ------------------------------------------------------------------ drivers

async def _run_closed(
    submit: Submit, requests: List[InferenceRequest], clients: int
) -> List[InferenceResponse]:
    responses: List[Optional[InferenceResponse]] = [None] * len(requests)
    cursor = iter(range(len(requests)))

    async def client() -> None:
        for index in cursor:  # the shared iterator hands out unique indices
            responses[index] = await submit(requests[index])

    await asyncio.gather(*(client() for _ in range(max(1, clients))))
    return [r for r in responses if r is not None]


async def _run_open(
    submit: Submit, requests: List[InferenceRequest], rate: float, seed: int
) -> List[InferenceResponse]:
    if rate <= 0:
        raise ValueError("open-loop rate must be > 0")
    rng = np.random.default_rng(seed ^ 0x5EED)
    gaps = rng.exponential(1.0 / rate, size=len(requests))
    tasks = []
    for request, gap in zip(requests, gaps):
        await asyncio.sleep(float(gap))
        tasks.append(asyncio.create_task(submit(request)))
    return list(await asyncio.gather(*tasks))


async def _run_ramp(
    submit: Submit, requests: List[InferenceRequest], spec: WorkloadSpec
) -> Tuple[List[InferenceResponse], List["RampStep"]]:
    """Stair profile: equal request slices at linearly spaced rates.

    Each step is its own little open-loop run (seeded exponential gaps at
    that step's rate) and is summarized separately, which is what makes
    the profile useful: the saturation knee shows up as the first step
    whose achieved throughput stops tracking the offered rate.
    """
    rates = spec.step_rates()
    bounds = np.linspace(0, len(requests), len(rates) + 1).astype(int)
    responses: List[InferenceResponse] = []
    steps: List[RampStep] = []
    for index, rate in enumerate(rates):
        chunk = requests[bounds[index]:bounds[index + 1]]
        if not chunk:
            continue
        start = time.perf_counter()
        answered = await _run_open(submit, chunk, rate,
                                   spec.seed ^ (index + 1))
        wall_s = time.perf_counter() - start
        responses.extend(answered)
        steps.append(RampStep.from_responses(index, rate, answered, wall_s))
        _log.info("ramp step complete", step=index, rate=round(rate, 1),
                  ok=steps[-1].ok, shed=steps[-1].shed,
                  p99_ms=round(steps[-1].p99_ms, 1))
    return responses, steps


async def run_workload(submit: Submit, spec: WorkloadSpec) -> "LoadReport":
    """Drive one workload against any submit callable; aggregate a report."""
    requests = build_requests(spec)
    _log.info("load generation starting", mode=spec.mode,
              requests=len(requests), clients=spec.clients,
              models=len(spec.keys), ramp=spec.ramp)
    steps: List[RampStep] = []
    start = time.perf_counter()
    if spec.mode == "closed":
        responses = await _run_closed(submit, requests, spec.clients)
    elif spec.ramp is not None:
        responses, steps = await _run_ramp(submit, requests, spec)
    else:
        responses = await _run_open(submit, requests, spec.rate, spec.seed)
    wall_s = time.perf_counter() - start
    report = LoadReport.from_responses(responses, wall_s, spec)
    report.ramp_steps = steps
    report.record()
    return report


# ------------------------------------------------------------------- report

#: Kept as a module alias (tests and older callers import it from here);
#: the implementation lives in :func:`repro.obs.stats.percentile` now,
#: shared with the histogram-quantile estimator of live telemetry.
_percentile = percentile


@dataclass
class RampStep:
    """One stair of a ramp profile, summarized."""

    index: int
    offered_rps: float          #: the step's arrival rate
    total: int
    ok: int
    shed: int
    errors: int
    achieved_rps: float         #: ok completions over the step's wall time
    p99_ms: float
    wall_s: float

    @classmethod
    def from_responses(
        cls, index: int, rate: float,
        responses: List[InferenceResponse], wall_s: float,
    ) -> "RampStep":
        ok_latencies = sorted(r.total_ms for r in responses if r.ok)
        ok = len(ok_latencies)
        shed = sum(1 for r in responses
                   if r.status in (Status.SHED, Status.EXPIRED))
        errors = sum(1 for r in responses if r.status is Status.ERROR)
        return cls(
            index=index, offered_rps=rate, total=len(responses), ok=ok,
            shed=shed, errors=errors,
            achieved_rps=ok / wall_s if wall_s > 0 else 0.0,
            p99_ms=_percentile(ok_latencies, 99), wall_s=wall_s,
        )

    @property
    def shed_rate(self) -> float:
        return self.shed / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        return {
            "step": self.index,
            "offered_rps": round(self.offered_rps, 3),
            "achieved_rps": round(self.achieved_rps, 3),
            "total": self.total, "ok": self.ok, "shed": self.shed,
            "errors": self.errors, "p99_ms": round(self.p99_ms, 3),
            "wall_s": round(self.wall_s, 3),
        }


def saturation_qps(steps: List[RampStep],
                   max_shed_rate: float = 0.01) -> float:
    """The saturation estimate a ramp run exists to produce.

    The highest offered rate the service kept up with — achieved
    throughput within 90% of offered and shed rate at most
    ``max_shed_rate``.  If even the first stair overloads, fall back to
    the best achieved throughput (the service's actual capacity).
    """
    sustained = [s.offered_rps for s in steps
                 if s.shed_rate <= max_shed_rate
                 and s.achieved_rps >= 0.9 * s.offered_rps]
    if sustained:
        return max(sustained)
    return max((s.achieved_rps for s in steps), default=0.0)


@dataclass
class LoadReport:
    """Aggregate of one load-generation run."""

    total: int
    wall_s: float
    status_counts: Dict[str, int]
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    mean_batch: float
    batch_histogram: Dict[int, int]
    slo_violations: int
    mean_simulated_ms: float
    mode: str
    per_model: Dict[str, int] = field(default_factory=dict)
    degraded: int = 0      #: OK responses produced by a fallback stage
    #: Burn-rate alert states attached after the run (the loadgen only
    #: sees responses; the caller owning the server's snapshot ring calls
    #: :meth:`attach_alerts` so the report shows the telemetry verdicts).
    alerts: List[Alert] = field(default_factory=list)
    #: Per-stair summaries of a ramp profile (empty without ``spec.ramp``).
    ramp_steps: List[RampStep] = field(default_factory=list)

    @classmethod
    def from_responses(
        cls,
        responses: List[InferenceResponse],
        wall_s: float,
        spec: WorkloadSpec,
    ) -> "LoadReport":
        counts: Dict[str, int] = {}
        per_model: Dict[str, int] = {}
        batch_hist: Dict[int, int] = {}
        ok_latencies: List[float] = []
        batches: List[int] = []
        sims: List[float] = []
        violations = 0
        degraded = 0
        for r in responses:
            counts[r.status.value] = counts.get(r.status.value, 0) + 1
            per_model[r.key.canonical()] = per_model.get(r.key.canonical(), 0) + 1
            if r.degraded:
                degraded += 1
            if r.ok:
                ok_latencies.append(r.total_ms)
                batches.append(r.batch_size)
                batch_hist[r.batch_size] = batch_hist.get(r.batch_size, 0) + 1
                sims.append(r.simulated_ms)
                if not r.slo_met:
                    violations += 1
        ok_latencies.sort()
        return cls(
            total=len(responses),
            wall_s=wall_s,
            status_counts=counts,
            p50_ms=_percentile(ok_latencies, 50),
            p95_ms=_percentile(ok_latencies, 95),
            p99_ms=_percentile(ok_latencies, 99),
            mean_ms=float(np.mean(ok_latencies)) if ok_latencies else 0.0,
            max_ms=ok_latencies[-1] if ok_latencies else 0.0,
            mean_batch=float(np.mean(batches)) if batches else 0.0,
            batch_histogram=dict(sorted(batch_hist.items())),
            slo_violations=violations,
            mean_simulated_ms=float(np.mean(sims)) if sims else 0.0,
            mode=spec.mode,
            degraded=degraded,
        )

    # ------------------------------------------------------------ accessors

    @property
    def ok(self) -> int:
        return self.status_counts.get(Status.OK.value, 0)

    @property
    def errors(self) -> int:
        return self.status_counts.get(Status.ERROR.value, 0)

    @property
    def shed(self) -> int:
        return (self.status_counts.get(Status.SHED.value, 0)
                + self.status_counts.get(Status.EXPIRED.value, 0))

    @property
    def shed_rate(self) -> float:
        return self.shed / self.total if self.total else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def slo_violation_rate(self) -> float:
        return self.slo_violations / self.ok if self.ok else 0.0

    @property
    def saturation_qps(self) -> float:
        """Ramp-derived saturation estimate (0.0 without a ramp profile)."""
        return saturation_qps(self.ramp_steps) if self.ramp_steps else 0.0

    def attach_alerts(self, alerts: List[Alert]) -> "LoadReport":
        """Attach evaluated burn-rate alerts (rendered and recorded)."""
        self.alerts = list(alerts)
        registry = get_registry()
        for alert in self.alerts:
            registry.gauge(
                "serve.loadgen.alert_firing", rule=alert.rule
            ).set(1.0 if alert.firing else 0.0)
        return self

    # -------------------------------------------------------------- outputs

    def record(self) -> None:
        """Publish the report as ``serve.loadgen.*`` gauges (metrics JSON)."""
        registry = get_registry()
        gauges = {
            "serve.loadgen.requests": self.total,
            "serve.loadgen.ok": self.ok,
            "serve.loadgen.errors": self.errors,
            "serve.loadgen.shed": self.shed,
            "serve.loadgen.shed_rate": self.shed_rate,
            "serve.loadgen.throughput_rps": self.throughput_rps,
            "serve.loadgen.p50_ms": self.p50_ms,
            "serve.loadgen.p95_ms": self.p95_ms,
            "serve.loadgen.p99_ms": self.p99_ms,
            "serve.loadgen.mean_batch": self.mean_batch,
            "serve.loadgen.slo_violations": self.slo_violations,
            "serve.loadgen.slo_violation_rate": self.slo_violation_rate,
            "serve.loadgen.wall_seconds": self.wall_s,
            "serve.loadgen.mean_simulated_ms": self.mean_simulated_ms,
            "serve.loadgen.degraded": self.degraded,
        }
        if self.ramp_steps:
            gauges["serve.loadgen.saturation_qps"] = self.saturation_qps
            gauges["serve.loadgen.ramp_steps"] = len(self.ramp_steps)
        for name, value in gauges.items():
            registry.gauge(name).set(float(value))

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"load report ({self.mode} loop): {self.total} requests "
            f"in {self.wall_s:.2f} s",
            f"  throughput  : {self.throughput_rps:.1f} ok req/s",
            f"  status      : " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.status_counts.items())
            ),
            f"  latency ms  : p50={self.p50_ms:.1f}  p95={self.p95_ms:.1f}  "
            f"p99={self.p99_ms:.1f}  mean={self.mean_ms:.1f}  max={self.max_ms:.1f}",
            f"  batch size  : mean={self.mean_batch:.2f}  histogram=" + (
                "{" + ", ".join(f"{k}: {v}" for k, v in self.batch_histogram.items()) + "}"
            ),
            f"  shed rate   : {self.shed_rate * 100:.1f}%  "
            f"(shed+expired {self.shed}/{self.total})",
            f"  SLO         : {self.slo_violations} violations "
            f"({self.slo_violation_rate * 100:.1f}% of ok)",
            f"  degraded    : {self.degraded} responses served by a "
            f"fallback stage",
            f"  simulated   : {self.mean_simulated_ms:.3f} ms/batch mean "
            f"(systolic-array cost model)",
        ]
        if self.per_model:
            lines.append("  per model   : " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.per_model.items())
            ))
        if self.ramp_steps:
            for step in self.ramp_steps:
                lines.append(
                    f"  ramp step {step.index:>2}: offered={step.offered_rps:7.1f} rps  "
                    f"achieved={step.achieved_rps:7.1f}  shed={step.shed_rate * 100:5.1f}%  "
                    f"p99={step.p99_ms:.1f} ms"
                )
            lines.append(
                f"  saturation  : ~{self.saturation_qps:.1f} req/s sustained "
                f"(highest stair within budget)"
            )
        if self.alerts:
            lines.append("  alerts      : " + "  ".join(
                f"{a.rule}={'FIRING' if a.firing else 'ok'}"
                for a in self.alerts
            ))
        runtime = self._runtime_line()
        if runtime:
            lines.append(runtime)
        return "\n".join(lines)

    @staticmethod
    def _runtime_line() -> str:
        """Compiled-runtime gauges, when the graph engine built a plan."""
        registry = get_registry()
        compile_ms = registry.get("runtime.compile_ms")
        if compile_ms is None:
            return ""
        arena = registry.get("runtime.arena_bytes")
        fused = registry.get("runtime.ops_fused")
        parts = [f"compile={compile_ms.value:.1f} ms"]
        if arena is not None:
            parts.append(f"arena={arena.value / 1024.0:.0f} KiB")
        if fused is not None:
            parts.append(f"ops_fused={int(fused.value)}")
        return "  runtime     : " + "  ".join(parts) + " (last compiled plan)"
