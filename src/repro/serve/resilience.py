"""Resilience primitives shared across the serving stack.

* :class:`CircuitBreaker` — the classic three-state breaker guarding the
  expensive primary execution path of one model: ``closed`` (normal),
  ``open`` (after ``threshold`` consecutive failures; primaries are
  short-circuited straight to the degraded analytical path for
  ``cooldown_s``), ``half-open`` (one probe is let through; success
  closes, failure re-opens).  State is published as the
  ``resilience.breaker_state`` gauge (0 = closed, 0.5 = half-open,
  1 = open) labelled by model.
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  seeded full-jitter, used by the transport client.  The jitter RNG is
  seeded so two runs of the same deterministic workload back off
  identically.

Both are dependency-free and thread-safe; the serving layer wires them in
(:mod:`repro.serve.workers`, :mod:`repro.serve.transport`) and chaos mode
(:mod:`repro.serve.chaos`) exercises them under injected faults.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional

from ..obs import get_registry

__all__ = ["CircuitBreaker", "RetryPolicy", "BREAKER_STATES"]

#: Gauge encoding of breaker states.
BREAKER_STATES = {"closed": 0.0, "half-open": 0.5, "open": 1.0}


class CircuitBreaker:
    """Consecutive-failure breaker with cooldown and half-open probing."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        label: Optional[str] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.label = label
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._probing = False
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- state

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half-open`` (cooldown-aware)."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = "half-open"
            self._probing = False
        return self._state

    def allow(self) -> bool:
        """May the primary path run?  ``False`` = short-circuit to degraded.

        In half-open state exactly one caller gets ``True`` (the probe)
        until :meth:`record` settles the outcome.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def record(self, ok: bool) -> None:
        """Fold one primary-path outcome into the breaker."""
        with self._lock:
            state = self._state_locked()
            if ok:
                self._failures = 0
                if state != "closed":
                    self._state = "closed"
                    self._probing = False
            else:
                self._failures += 1
                if state == "half-open" or self._failures >= self.threshold:
                    if self._state != "open":
                        get_registry().counter(
                            "resilience.breaker_opens",
                            **({"model": self.label} if self.label else {}),
                        ).inc()
                    self._state = "open"
                    self._opened_at = self._clock()
                    self._probing = False
        self.publish()

    def publish(self) -> None:
        """Write the current state to the ``resilience.breaker_state`` gauge."""
        labels = {"model": self.label} if self.label else {}
        get_registry().gauge("resilience.breaker_state", **labels).set(
            BREAKER_STATES[self.state]
        )


class RetryPolicy:
    """Bounded exponential backoff with seeded full-jitter.

    ``delay(attempt)`` for attempt ``1..retries`` is uniform in
    ``(0, min(backoff_max_ms, backoff_ms * 2**(attempt-1))]`` — the
    standard full-jitter scheme, with a deterministic RNG so chaos runs
    replay identical backoff sequences.
    """

    def __init__(
        self,
        retries: int = 3,
        backoff_ms: float = 50.0,
        backoff_max_ms: float = 2000.0,
        seed: int = 0,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = retries
        self.backoff_ms = backoff_ms
        self.backoff_max_ms = backoff_max_ms
        self._rng = random.Random(f"retry:{seed}")
        self._lock = threading.Lock()

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), in seconds."""
        ceiling = min(self.backoff_max_ms, self.backoff_ms * (2 ** (attempt - 1)))
        with self._lock:
            return (self._rng.random() * ceiling) / 1000.0
