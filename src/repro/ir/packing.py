"""Column combining for magnitude-pruned weights (Kung et al., 2018).

"Packing Sparse Convolutional Neural Networks for Efficient Systolic
Array Implementations: Column Combining Under Joint Optimization"
(PAPERS.md) shows that after magnitude pruning, several sparse weight
columns can share one *physical* systolic-array column: each PE row is
owned by at most one member column, conflicting weights are dropped as
part of the optimization (joint prune-and-pack), and the array sees a
dense matrix with ``ceil(N / γ)``-ish columns instead of ``N`` sparse
ones.  Cycle savings are near-proportional to the combining factor
because fold counts scale with the column dimension.

This module holds the *pure* algorithms and the metadata they produce —
no dependency on :mod:`repro.nn` or :mod:`repro.systolic`, so the pass
pipeline (:mod:`repro.nn.passes`), the analytical latency model
(:mod:`repro.systolic.latency`) and the functional simulator all consume
the same :class:`PackedMapping` objects:

* ``pack_gemm_columns`` — GEMM-shaped weights (standard conv, pointwise,
  linear): greedy grouping of sparse columns into ≤γ-sized groups under a
  conflict policy; groups become physical array columns (N shrinks, K is
  streamed in full);
* ``pack_depthwise`` — per-channel single-column GEMMs cannot combine
  (N is already 1); packing compresses each channel's reduction length to
  its nonzero taps (K shrinks per channel, empty channels drop);
* ``pack_fuse1d`` — FuSeConv's broadcast rows are independent 1D convs;
  channels with identical tap support are grouped so each row fold
  streams only the group's live taps (K shrinks per group, empty
  channels drop rows).  This is why FuSe packs better than 2D depthwise:
  its rows both *shrink* (taps) and *disappear* (channels), while a 2D
  depthwise channel keeps paying the per-fold fill/drain overhead.

Everything is deterministic: greedy orders break ties by column index,
and all metadata is hashable/frozen so it can key latency memo caches.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "CONFLICT_POLICIES",
    "PackedMapping",
    "NetworkPacking",
    "magnitude_mask",
    "pack_gemm_columns",
    "pack_depthwise",
    "pack_fuse1d",
]

#: How ``pack_gemm_columns`` treats two columns wanting the same PE row:
#: ``"disjoint"`` never combines them; ``"prune"`` (the paper's joint
#: optimization) drops the smaller-magnitude weight and combines anyway.
CONFLICT_POLICIES = ("disjoint", "prune")


@dataclass(frozen=True)
class PackedMapping:
    """How one layer's pruned weights map onto physical array columns.

    Frozen and fully tuple-valued so a mapping can sit inside the
    :func:`repro.systolic.latency.mapping_stats` memo key — two layers
    with identical specs but different packing must never share a cache
    entry.
    """

    kind: str                     #: "gemm" | "depthwise" | "fuse1d"
    gamma: int                    #: group-size limit γ used to build it
    conflict: str                 #: conflict policy used to build it
    n_orig: int                   #: original columns (or channels)
    n_packed: int                 #: physical columns (or live channels)
    k: int                        #: original reduction length
    nnz: int                      #: surviving nonzero weights
    total: int                    #: prunable weight slots
    dropped: int                  #: all-zero columns/channels removed
    conflicts_pruned: int         #: weights dropped by column combining
    #: kind == "gemm": original column indices per physical column.
    groups: Tuple[Tuple[int, ...], ...] = ()
    #: kind == "depthwise": per-channel effective K (0 = empty channel).
    k_eff: Tuple[int, ...] = ()
    #: kind == "fuse1d": per-group (live tap indices, channel indices).
    tap_groups: Tuple[Tuple[Tuple[int, ...], Tuple[int, ...]], ...] = ()

    @property
    def sparsity(self) -> float:
        """Fraction of prunable slots that are zero after packing."""
        return 1.0 - self.nnz / self.total if self.total else 0.0

    @property
    def columns_combined(self) -> int:
        """Original columns absorbed into a shared physical column."""
        return self.n_orig - self.dropped - self.n_packed

    def to_dict(self) -> dict:
        """JSON-stable form (disk-cache fingerprints, CLI output)."""
        return {
            "kind": self.kind,
            "gamma": self.gamma,
            "conflict": self.conflict,
            "n_orig": self.n_orig,
            "n_packed": self.n_packed,
            "k": self.k,
            "nnz": self.nnz,
            "total": self.total,
            "dropped": self.dropped,
            "conflicts_pruned": self.conflicts_pruned,
            "groups": [list(g) for g in self.groups],
            "k_eff": list(self.k_eff),
            "tap_groups": [[list(t), list(c)] for t, c in self.tap_groups],
        }

    def fingerprint(self) -> str:
        """SHA-256 over the full packed structure (disk-cache identity)."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class NetworkPacking:
    """Per-node :class:`PackedMapping` for one pruned network."""

    gamma: int
    conflict: str
    layers: Tuple[Tuple[str, PackedMapping], ...] = ()
    _index: Dict[str, PackedMapping] = field(
        default=None, repr=False, compare=False, hash=False)

    def __post_init__(self):
        object.__setattr__(self, "_index", dict(self.layers))

    def get(self, name: str) -> Optional[PackedMapping]:
        return self._index.get(name)

    def __len__(self) -> int:
        return len(self.layers)

    def __bool__(self) -> bool:
        return bool(self.layers)

    @property
    def packed_columns(self) -> int:
        """Physical columns across all packed layers (plan stat)."""
        return sum(m.n_packed for _, m in self.layers)

    @property
    def columns_before(self) -> int:
        return sum(m.n_orig for _, m in self.layers)

    @property
    def columns_combined(self) -> int:
        return sum(m.columns_combined for _, m in self.layers)

    @property
    def conflicts_pruned(self) -> int:
        return sum(m.conflicts_pruned for _, m in self.layers)

    def to_dict(self) -> dict:
        return {
            "gamma": self.gamma,
            "conflict": self.conflict,
            "layers": {name: m.to_dict() for name, m in self.layers},
        }

    def fingerprint(self) -> str:
        """Stable identity of the whole packing (disk-cache key field)."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------- pruning

def magnitude_mask(weights: np.ndarray, sparsity: float) -> np.ndarray:
    """Boolean keep-mask zeroing the smallest-|w| ``sparsity`` fraction.

    Deterministic: ties at the threshold are broken by flat index (the
    earliest small weights go first), so the mask has *exactly*
    ``round(sparsity * size)`` zeros whenever that many weights exist.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    flat = np.abs(np.asarray(weights)).reshape(-1)
    n_drop = int(round(sparsity * flat.size))
    keep = np.ones(flat.size, dtype=bool)
    if n_drop > 0:
        # stable argsort → deterministic tie-breaking by index
        order = np.argsort(flat, kind="stable")
        keep[order[:n_drop]] = False
    return keep.reshape(np.asarray(weights).shape)


# ------------------------------------------------------- column combining

def pack_gemm_columns(
    w2d: np.ndarray, gamma: int, conflict: str = "prune"
) -> Tuple[PackedMapping, np.ndarray]:
    """Greedily combine sparse columns of a ``K × N`` weight matrix.

    Columns are visited densest-first (ties by index) and first-fit
    placed into the open group of size < γ that costs the least dropped
    magnitude; under ``"disjoint"`` only zero-cost (non-overlapping)
    groups qualify, under ``"prune"`` the smaller-|w| weight of each
    conflicting row is dropped (the paper's joint optimization), bounded
    so a join never drops more than half the joining column's nonzeros.
    All-zero columns are removed from the mapping entirely (their outputs
    are constant) — except at γ=1, which is defined as the identity
    packing: one singleton group per column, nothing dropped, so the
    packed schedule is the dense schedule.

    Returns the mapping plus the *keep mask* (``K × N`` bool) after
    conflict pruning — callers must zero ``w2d[~mask]`` so execution
    matches the packed schedule.
    """
    if gamma < 1:
        raise ValueError(f"gamma must be >= 1, got {gamma}")
    if conflict not in CONFLICT_POLICIES:
        raise ValueError(
            f"conflict must be one of {CONFLICT_POLICIES}, got {conflict!r}")
    w2d = np.asarray(w2d)
    if w2d.ndim != 2:
        raise ValueError(f"expected a K x N matrix, got shape {w2d.shape}")
    k, n = w2d.shape
    mask = w2d != 0
    nnz_before = int(mask.sum())

    if gamma == 1:
        mapping = PackedMapping(
            kind="gemm", gamma=1, conflict=conflict, n_orig=n, n_packed=n,
            k=k, nnz=nnz_before, total=k * n, dropped=0, conflicts_pruned=0,
            groups=tuple((j,) for j in range(n)),
        )
        return mapping, mask.copy()

    absw = np.abs(w2d)
    col_nnz = mask.sum(axis=0)
    # Densest first: packing the big columns early leaves the sparse tail
    # to fill leftover row slots.  Ties by index for determinism.
    order = sorted(range(n), key=lambda j: (-int(col_nnz[j]), j))

    keep = mask.copy()
    groups: List[List[int]] = []
    # owner[g][row] = (column, |w|) currently holding that row of group g.
    owners: List[Dict[int, Tuple[int, float]]] = []
    dropped_cols = 0
    conflicts = 0

    for j in order:
        rows = np.flatnonzero(keep[:, j])
        if rows.size == 0:
            dropped_cols += 1
            continue
        best = None  # (cost, group index, conflicting rows to steal)
        for gi, members in enumerate(groups):
            if len(members) >= gamma:
                continue
            own = owners[gi]
            clash = [r for r in rows if r in own]
            if conflict == "disjoint" and clash:
                continue
            if len(clash) * 2 > rows.size:
                continue  # joining would gut the column: open a new group
            cost = sum(min(own[r][1], float(absw[r, j])) for r in clash)
            if best is None or cost < best[0]:
                best = (cost, gi, clash)
        if best is None:
            groups.append([j])
            owners.append({int(r): (j, float(absw[r, j])) for r in rows})
            continue
        _, gi, clash = best
        own = owners[gi]
        for r in clash:
            inc_col, inc_mag = own[r]
            if float(absw[r, j]) > inc_mag:
                keep[r, inc_col] = False  # evict the incumbent weight
                own[r] = (j, float(absw[r, j]))
            else:
                keep[r, j] = False        # the joiner loses this row
            conflicts += 1
        for r in rows:
            if keep[r, j]:
                own.setdefault(int(r), (j, float(absw[r, j])))
        groups[gi].append(j)

    mapping = PackedMapping(
        kind="gemm", gamma=gamma, conflict=conflict, n_orig=n,
        n_packed=len(groups), k=k, nnz=int(keep.sum()), total=k * n,
        dropped=dropped_cols, conflicts_pruned=conflicts,
        groups=tuple(tuple(sorted(g)) for g in groups),
    )
    return mapping, keep


def pack_depthwise(
    w2d: np.ndarray, gamma: int, conflict: str = "prune"
) -> PackedMapping:
    """Pack a depthwise layer's ``C × (kh·kw)`` filters.

    Each channel is its own single-column GEMM (N = 1 — nothing to
    combine; this is exactly why depthwise packs worse than FuSe), so
    the only saving is compressing each channel's reduction length to
    its live taps and dropping all-zero channels.  γ=1 is the identity:
    every channel keeps its full K.
    """
    w2d = np.asarray(w2d)
    c, k = w2d.shape
    mask = w2d != 0
    nnz = int(mask.sum())
    if gamma == 1:
        return PackedMapping(
            kind="depthwise", gamma=1, conflict=conflict, n_orig=c,
            n_packed=c, k=k, nnz=nnz, total=c * k, dropped=0,
            conflicts_pruned=0, k_eff=(k,) * c,
        )
    k_eff = tuple(int(v) for v in mask.sum(axis=1))
    dropped = sum(1 for v in k_eff if v == 0)
    return PackedMapping(
        kind="depthwise", gamma=gamma, conflict=conflict, n_orig=c,
        n_packed=c - dropped, k=k, nnz=nnz, total=c * k, dropped=dropped,
        conflicts_pruned=0, k_eff=k_eff,
    )


def pack_fuse1d(
    w2d: np.ndarray, gamma: int, conflict: str = "prune"
) -> PackedMapping:
    """Pack a FuSeConv layer's ``C × K`` 1D filters into tap groups.

    Broadcast rows run in lockstep within a fold, so a fold can skip a
    weight cycle only if *every* resident row's tap is zero there.  The
    pass therefore sorts channels by tap-support signature and groups
    identical signatures: the mapper schedules each group as its own
    bank whose broadcast length is the group's live tap count, and the
    simulator streams exactly those taps.  Channels with no live taps
    drop out of the bank entirely (their rows produce constants).
    γ=1 is the identity: one group holding every channel at full K.
    """
    w2d = np.asarray(w2d)
    c, k = w2d.shape
    mask = w2d != 0
    nnz = int(mask.sum())
    if gamma == 1:
        return PackedMapping(
            kind="fuse1d", gamma=1, conflict=conflict, n_orig=c,
            n_packed=c, k=k, nnz=nnz, total=c * k, dropped=0,
            conflicts_pruned=0,
            tap_groups=((tuple(range(k)), tuple(range(c))),),
        )
    by_support: Dict[Tuple[int, ...], List[int]] = {}
    dropped = 0
    for ch in range(c):
        taps = tuple(int(t) for t in np.flatnonzero(mask[ch]))
        if not taps:
            dropped += 1
            continue
        by_support.setdefault(taps, []).append(ch)
    # Deterministic group order: by signature (lexicographic).
    tap_groups = tuple(
        (taps, tuple(chans)) for taps, chans in sorted(by_support.items())
    )
    return PackedMapping(
        kind="fuse1d", gamma=gamma, conflict=conflict, n_orig=c,
        n_packed=c - dropped, k=k, nnz=nnz, total=c * k, dropped=dropped,
        conflicts_pruned=0, tap_groups=tap_groups,
    )
