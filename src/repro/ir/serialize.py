"""JSON (de)serialization of networks.

Lets transformed architectures (FuSe variants, NOS mixes) be saved,
diffed and reloaded without re-running the transform — the layer specs
are plain dataclasses, so a network serializes to a list of node records.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Type

from . import layer as layer_module
from .layer import LayerSpec
from .network import Network

#: Format version written into every file.
FORMAT_VERSION = 1


def _layer_registry() -> Dict[str, Type[LayerSpec]]:
    registry = {}
    for name in dir(layer_module):
        obj = getattr(layer_module, name)
        if (
            isinstance(obj, type)
            and issubclass(obj, LayerSpec)
            and obj is not LayerSpec
        ):
            registry[obj.__name__] = obj
    return registry


_REGISTRY = _layer_registry()


def _spec_fields(spec: LayerSpec) -> Dict[str, Any]:
    """Dataclass fields of a spec, minus the harness-assigned name."""
    out = {}
    for field in dataclasses.fields(spec):
        if field.name == "name":
            continue
        out[field.name] = getattr(spec, field.name)
    return out


def _revive_value(value: Any) -> Any:
    """JSON round-trips tuples as lists; layer specs expect tuples."""
    if isinstance(value, list):
        return tuple(_revive_value(v) for v in value)
    return value


def network_to_dict(network: Network) -> Dict[str, Any]:
    """Serializable dict form of a network."""
    return {
        "format": FORMAT_VERSION,
        "name": network.name,
        "input_shape": list(network.input_shape),
        "nodes": [
            {
                "name": node.name,
                "kind": type(node.layer).__name__,
                "spec": _spec_fields(node.layer),
                "inputs": list(node.inputs),
                "block": node.block,
            }
            for node in network
        ],
    }


def network_from_dict(data: Dict[str, Any]) -> Network:
    """Rebuild a network from :func:`network_to_dict` output.

    Shape inference re-runs on load, so a corrupted file fails loudly.
    """
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported network format {version!r}")
    network = Network(data["name"], input_shape=tuple(data["input_shape"]))
    for record in data["nodes"]:
        kind = record["kind"]
        try:
            cls = _REGISTRY[kind]
        except KeyError:
            raise ValueError(
                f"unknown layer kind {kind!r}; known: {', '.join(sorted(_REGISTRY))}"
            ) from None
        spec_args = {k: _revive_value(v) for k, v in record["spec"].items()}
        network.add(
            cls(**spec_args),
            inputs=record["inputs"],
            name=record["name"],
            block=record.get("block", ""),
        )
    return network


#: Graphviz fill colors per operator class (network_to_dot).
_DOT_COLORS = {
    "conv": "#c6dbef",
    "depthwise": "#fdae6b",
    "fuse": "#a1d99b",
    "pointwise": "#9ecae1",
    "fc": "#bcbddc",
    "se": "#fdd0a2",
    "other": "#eeeeee",
}


def network_to_dot(network: Network) -> str:
    """Graphviz DOT rendering of a network (color-coded by operator class).

    Useful for eyeballing transform results: depthwise nodes are orange,
    their FuSe replacements green.
    """
    from .counting import op_class

    lines = [
        f'digraph "{network.name}" {{',
        "  rankdir=TB;",
        '  node [shape=box, style="rounded,filled", fontname="monospace"];',
    ]
    for node in network:
        cls = op_class(node.layer)
        color = _DOT_COLORS.get(cls, _DOT_COLORS["other"])
        label = f"{node.name}\\n{node.kind} {node.out_shape}"
        lines.append(f'  "{node.name}" [label="{label}", fillcolor="{color}"];')
    for node in network:
        for src in node.inputs:
            lines.append(f'  "{src}" -> "{node.name}";')
    lines.append("}")
    return "\n".join(lines)


def save_network(network: Network, path: str) -> None:
    """Write a network to a JSON file."""
    with open(path, "w") as handle:
        json.dump(network_to_dict(network), handle, indent=1)


def load_network(path: str) -> Network:
    """Read a network from a JSON file."""
    with open(path) as handle:
        return network_from_dict(json.load(handle))
