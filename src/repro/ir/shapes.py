"""Shape utilities and whole-network validation.

Shape inference itself runs eagerly inside :class:`repro.ir.network.Network`;
this module provides re-checking (useful in tests and after graph surgery)
and shared helpers.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .layer import Add, Concat, Shape, ShapeError, conv_out_size, resolve_padding
from .network import Network

__all__ = ["conv_out_size", "resolve_padding", "validate_network", "infer_shapes"]


def infer_shapes(network: Network) -> Dict[str, Tuple[Shape, Shape]]:
    """Recompute ``{node name: (in_shape, out_shape)}`` from scratch.

    Walks the network in topological order re-deriving every shape from the
    network input, independent of the cached values on the nodes.
    """
    shapes: Dict[str, Tuple[Shape, Shape]] = {}
    out_of: Dict[str, Shape] = {}
    for node in network:
        in_shapes = tuple(out_of[src] for src in node.inputs) or (network.input_shape,)
        if isinstance(node.layer, Concat):
            in_shape = Concat.merged_shape(in_shapes)
        elif isinstance(node.layer, Add):
            in_shape = in_shapes[0]
            for s in in_shapes[1:]:
                if s != in_shape:
                    raise ShapeError(f"Add inputs disagree at {node.name}: {in_shapes}")
        else:
            if len(in_shapes) != 1:
                raise ShapeError(f"{node.name} expects one input, got {len(in_shapes)}")
            in_shape = in_shapes[0]
        out_shape = node.layer.out_shape(in_shape)
        shapes[node.name] = (in_shape, out_shape)
        out_of[node.name] = out_shape
    return shapes


def validate_network(network: Network) -> None:
    """Raise :class:`ShapeError` if cached node shapes disagree with a fresh pass."""
    fresh = infer_shapes(network)
    for node in network:
        in_shape, out_shape = fresh[node.name]
        if node.in_shape != in_shape or node.out_shape != out_shape:
            raise ShapeError(
                f"stale shapes on {node.name}: cached "
                f"({node.in_shape} -> {node.out_shape}), fresh "
                f"({in_shape} -> {out_shape})"
            )
