"""Network intermediate representation: a DAG of layer specifications.

A :class:`Network` owns an ordered collection of named nodes.  Nodes must be
added in topological order (every input has to exist already), which lets
shape inference run eagerly at insertion time — malformed architectures fail
loudly at construction, not at simulation time.

Example:
    >>> from repro.ir import Network, Conv2D, Activation
    >>> net = Network("tiny", input_shape=(3, 32, 32))
    >>> net.add(Conv2D(8, kernel=3, stride=1, padding="same"))
    'conv2d_0'
    >>> net.add(Activation("relu"))
    'activation_1'
    >>> net.out_shape
    (8, 32, 32)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .layer import Add, Concat, LayerSpec, Shape, ShapeError


@dataclass
class Node:
    """A placed layer inside a :class:`Network`.

    Attributes:
        name: Unique node name.
        layer: The layer specification.
        inputs: Names of predecessor nodes; empty list means the node reads
            the network input.
        block: Optional human-readable label of the enclosing block
            (e.g. ``"bneck3"``); used for per-block reporting.
        in_shape: Inferred input shape (post channel-merge for Concat).
        out_shape: Inferred output shape.
    """

    name: str
    layer: LayerSpec
    inputs: List[str]
    block: str = ""
    in_shape: Shape = (0, 0, 0)
    out_shape: Shape = (0, 0, 0)

    @property
    def kind(self) -> str:
        return self.layer.kind

    def macs(self) -> int:
        return self.layer.macs(self.in_shape)

    def params(self) -> int:
        return self.layer.params(self.in_shape)


class Network:
    """An ordered DAG of :class:`Node` objects with eager shape inference."""

    def __init__(self, name: str, input_shape: Shape) -> None:
        if len(input_shape) != 3 or any(d <= 0 for d in input_shape):
            raise ShapeError(f"input_shape must be a positive (C,H,W), got {input_shape}")
        self.name = name
        self.input_shape: Shape = tuple(int(d) for d in input_shape)  # type: ignore[assignment]
        self._nodes: Dict[str, Node] = {}
        self._counter = 0

    # ------------------------------------------------------------------ build

    def add(
        self,
        layer: LayerSpec,
        inputs: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
        block: str = "",
    ) -> str:
        """Append a layer and return its node name.

        If ``inputs`` is omitted the layer is chained after the most recently
        added node (or the network input if the network is empty).
        """
        if name is None:
            name = f"{type(layer).__name__.lower()}_{self._counter}"
        if name in self._nodes:
            raise ShapeError(f"duplicate node name {name!r} in network {self.name!r}")
        self._counter += 1

        if inputs is None:
            inputs = [self.last_name] if self._nodes else []
        inputs = list(inputs)
        for src in inputs:
            if src not in self._nodes:
                raise ShapeError(f"node {name!r} references unknown input {src!r}")

        in_shapes = tuple(
            self._nodes[src].out_shape for src in inputs
        ) or (self.input_shape,)
        in_shape = self._merge_in_shapes(layer, in_shapes)
        out_shape = layer.out_shape(in_shape)

        self._nodes[name] = Node(
            name=name,
            layer=replace(layer, name=name),
            inputs=inputs,
            block=block,
            in_shape=in_shape,
            out_shape=out_shape,
        )
        return name

    @staticmethod
    def _merge_in_shapes(layer: LayerSpec, in_shapes: Tuple[Shape, ...]) -> Shape:
        """Combine multiple input shapes according to the layer semantics."""
        if isinstance(layer, Concat):
            return Concat.merged_shape(in_shapes)
        if isinstance(layer, Add):
            first = in_shapes[0]
            for s in in_shapes[1:]:
                if s != first:
                    raise ShapeError(f"Add inputs disagree: {in_shapes}")
            return first
        if len(in_shapes) != 1:
            raise ShapeError(
                f"{type(layer).__name__} expects one input, got {len(in_shapes)}"
            )
        return in_shapes[0]

    # ------------------------------------------------------------------ views

    @property
    def last_name(self) -> str:
        if not self._nodes:
            raise ShapeError(f"network {self.name!r} is empty")
        return next(reversed(self._nodes))

    @property
    def out_shape(self) -> Shape:
        return self._nodes[self.last_name].out_shape

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __getitem__(self, name: str) -> Node:
        return self._nodes[name]

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def nodes(self) -> List[Node]:
        """All nodes in insertion (topological) order."""
        return list(self._nodes.values())

    def find(self, kind: type) -> List[Node]:
        """All nodes whose layer is an instance of ``kind``."""
        return [n for n in self._nodes.values() if isinstance(n.layer, kind)]

    def blocks(self) -> List[str]:
        """Distinct non-empty block labels in network order."""
        seen: Dict[str, None] = {}
        for node in self._nodes.values():
            if node.block and node.block not in seen:
                seen[node.block] = None
        return list(seen)

    def block_nodes(self, block: str) -> List[Node]:
        return [n for n in self._nodes.values() if n.block == block]

    def consumers(self, name: str) -> List[Node]:
        """Nodes that read the output of ``name``."""
        return [n for n in self._nodes.values() if name in n.inputs]

    # ------------------------------------------------------------- summaries

    def total_macs(self) -> int:
        return sum(node.macs() for node in self._nodes.values())

    def total_params(self) -> int:
        return sum(node.params() for node in self._nodes.values())

    def summary(self) -> str:
        """Readable multi-line summary (name, kind, shapes, MACs, params)."""
        lines = [
            f"Network {self.name!r}  input={self.input_shape}  "
            f"MACs={self.total_macs():,}  params={self.total_params():,}",
            f"{'name':<28}{'kind':<18}{'block':<12}{'out_shape':<18}"
            f"{'MACs':>14}{'params':>12}",
        ]
        for node in self._nodes.values():
            lines.append(
                f"{node.name:<28}{node.kind:<18}{node.block:<12}"
                f"{str(node.out_shape):<18}{node.macs():>14,}{node.params():>12,}"
            )
        return "\n".join(lines)
