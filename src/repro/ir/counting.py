"""MAC and parameter counting (the "MACs" and "Params" columns of Table I).

Counting is defined per-layer on the specs in :mod:`repro.ir.layer`; this
module aggregates over networks, groups by operator class, and exposes the
classification used throughout the analysis code.

Operator classes mirror Fig. 8(c) of the paper:

* ``conv``       — standard (dense / grouped) 2D convolution,
* ``depthwise``  — depthwise K×K convolution (the inefficient operator),
* ``fuse``       — FuSeConv 1D depthwise filters (the proposed operator),
* ``pointwise``  — 1×1 convolution,
* ``fc``         — fully connected layers,
* ``se``         — Squeeze-and-Excite blocks (two small FCs + scale),
* ``other``      — everything else (activations, BN, pooling, plumbing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .layer import (
    Conv2D,
    DepthwiseConv2D,
    FuSeConv1D,
    LayerSpec,
    Linear,
    PointwiseConv2D,
    SqueezeExcite,
)
from .network import Network, Node

#: Operator classes with compute mapped onto the systolic array.
COMPUTE_CLASSES = ("conv", "depthwise", "fuse", "pointwise", "fc", "se")


def op_class(layer: LayerSpec) -> str:
    """Operator class of a layer (see module docstring)."""
    if isinstance(layer, Conv2D):
        # A 1×1 dense conv is a pointwise conv regardless of the spec class.
        if layer.kernel_hw == (1, 1) and layer.groups == 1:
            return "pointwise"
        return "conv"
    if isinstance(layer, DepthwiseConv2D):
        return "depthwise"
    if isinstance(layer, FuSeConv1D):
        return "fuse"
    if isinstance(layer, PointwiseConv2D):
        return "pointwise"
    if isinstance(layer, Linear):
        return "fc"
    if isinstance(layer, SqueezeExcite):
        return "se"
    return "other"


@dataclass(frozen=True)
class CountRow:
    """Counting entry for one node."""

    name: str
    kind: str
    op_class: str
    block: str
    macs: int
    params: int


@dataclass(frozen=True)
class CountReport:
    """Aggregated counts for a network."""

    network: str
    rows: List[CountRow]

    @property
    def total_macs(self) -> int:
        return sum(r.macs for r in self.rows)

    @property
    def total_params(self) -> int:
        return sum(r.params for r in self.rows)

    def macs_by_class(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for row in self.rows:
            out[row.op_class] = out.get(row.op_class, 0) + row.macs
        return out

    def params_by_class(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for row in self.rows:
            out[row.op_class] = out.get(row.op_class, 0) + row.params
        return out

    def macs_by_block(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for row in self.rows:
            key = row.block or row.name
            out[key] = out.get(key, 0) + row.macs
        return out


def count_node(node: Node) -> CountRow:
    return CountRow(
        name=node.name,
        kind=node.kind,
        op_class=op_class(node.layer),
        block=node.block,
        macs=node.macs(),
        params=node.params(),
    )


def count_network(network: Network) -> CountReport:
    """Per-node counting report for a whole network."""
    return CountReport(network=network.name, rows=[count_node(n) for n in network])


def macs_millions(network: Network) -> float:
    """Total MACs in millions (the unit Table I reports)."""
    return network.total_macs() / 1e6


def params_millions(network: Network) -> float:
    """Total parameters in millions (the unit Table I reports)."""
    return network.total_params() / 1e6


def separable_block_counts(
    in_channels: int,
    out_channels: int,
    kernel: int,
    out_h: int,
    out_w: int,
) -> Dict[str, int]:
    """Closed-form counts for a depthwise-separable block (§II-D).

    Returns the paper's formulas: params ``C(K² + C')`` and ops
    ``N·M·C(K² + C')`` — used by tests to pin the counting code to the paper.
    """
    c, cp, k = in_channels, out_channels, kernel
    return {
        "params": c * (k * k + cp),
        "macs": out_h * out_w * c * (k * k + cp),
    }


def fuse_block_counts(
    in_channels: int,
    out_channels: int,
    kernel: int,
    out_h: int,
    out_w: int,
    d: int,
) -> Dict[str, int]:
    """Closed-form counts for a FuSe block (§IV-A).

    Returns the paper's formulas: params ``(2/D)·C(K + C')`` and ops
    ``(2/D)·N·M·C(K + C')``.
    """
    c, cp, k = in_channels, out_channels, kernel
    return {
        "params": 2 * c * (k + cp) // d,
        "macs": 2 * out_h * out_w * c * (k + cp) // d,
    }
