"""Layer specifications for the network intermediate representation.

Layers here are *descriptions*, not executable modules: they carry the
hyper-parameters needed for shape inference (:mod:`repro.ir.shapes`),
MAC/parameter counting (:mod:`repro.ir.counting`) and latency estimation
(:mod:`repro.systolic.latency`).  Executable (trainable) counterparts live in
:mod:`repro.nn.layers`.

Shapes are ``(channels, height, width)`` tuples, batch dimension omitted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

Shape = Tuple[int, int, int]

#: Padding may be an explicit ``(pad_h, pad_w)``, a single int for both, or
#: the string ``"same"`` meaning "preserve spatial size at stride 1" (the
#: TensorFlow convention ``out = ceil(in / stride)`` is used for stride > 1).
Padding = Union[int, Tuple[int, int], str]


class ShapeError(ValueError):
    """Raised when a layer cannot accept the given input shape."""


def _pair(value: Union[int, Tuple[int, int]]) -> Tuple[int, int]:
    """Normalize an int-or-pair hyper-parameter to an ``(h, w)`` pair."""
    if isinstance(value, int):
        return (value, value)
    h, w = value
    return (int(h), int(w))


def resolve_padding(padding: Padding, kernel: Tuple[int, int]) -> Tuple[int, int]:
    """Resolve a :data:`Padding` spec to explicit ``(pad_h, pad_w)``.

    For ``"same"``, the total padding is ``kernel - 1``; we return the
    left/top amount ``(kernel - 1) // 2`` and :func:`conv_out_size` accounts
    for the asymmetric remainder.
    """
    if padding == "same":
        return ((kernel[0] - 1) // 2, (kernel[1] - 1) // 2)
    if isinstance(padding, str):
        raise ShapeError(f"unknown padding spec {padding!r}")
    return _pair(padding)


def conv_out_size(size: int, kernel: int, stride: int, padding: Padding) -> int:
    """Spatial output size of a convolution along one axis.

    With ``"same"`` padding this follows the TensorFlow convention
    ``ceil(size / stride)``; with explicit padding it is the usual
    ``floor((size + 2*pad - kernel) / stride) + 1``.
    """
    if size <= 0:
        raise ShapeError(f"input size must be positive, got {size}")
    if stride <= 0:
        raise ShapeError(f"stride must be positive, got {stride}")
    if padding == "same":
        return math.ceil(size / stride)
    if not isinstance(padding, int):
        raise ShapeError("conv_out_size takes a scalar padding per axis")
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution output collapsed: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


@dataclass(frozen=True)
class LayerSpec:
    """Base class for all layer specifications.

    Attributes:
        name: Unique layer name within a network. Empty until the layer is
            added to a :class:`repro.ir.network.Network`, which assigns one.
    """

    name: str = field(default="", kw_only=True)

    def out_shape(self, in_shape: Shape) -> Shape:
        """Output shape for a given input shape (raises ShapeError if invalid)."""
        raise NotImplementedError

    def macs(self, in_shape: Shape) -> int:
        """Number of multiply-accumulate operations for one input."""
        return 0

    def params(self, in_shape: Shape) -> int:
        """Number of learnable parameters."""
        return 0

    @property
    def kind(self) -> str:
        """Short class identifier used in reports (e.g. ``"Conv2D"``)."""
        return type(self).__name__


@dataclass(frozen=True)
class Conv2D(LayerSpec):
    """Standard dense 2D convolution (optionally grouped).

    An input of ``C×H×W`` convolved with ``out_channels`` filters of size
    ``C/groups × Kh × Kw``.
    """

    out_channels: int
    kernel: Union[int, Tuple[int, int]]
    stride: Union[int, Tuple[int, int]] = 1
    padding: Padding = 0
    groups: int = 1
    bias: bool = False

    def __post_init__(self) -> None:
        if self.out_channels <= 0:
            raise ShapeError(f"out_channels must be positive, got {self.out_channels}")
        if self.groups <= 0:
            raise ShapeError(f"groups must be positive, got {self.groups}")
        kh, kw = _pair(self.kernel)
        if kh <= 0 or kw <= 0:
            raise ShapeError(f"kernel must be positive, got {self.kernel}")
        if self.out_channels % self.groups:
            raise ShapeError(
                f"out_channels={self.out_channels} not divisible by groups={self.groups}"
            )

    @property
    def kernel_hw(self) -> Tuple[int, int]:
        return _pair(self.kernel)

    @property
    def stride_hw(self) -> Tuple[int, int]:
        return _pair(self.stride)

    def _padding_hw(self) -> Tuple[Padding, Padding]:
        if self.padding == "same":
            return ("same", "same")
        ph, pw = resolve_padding(self.padding, self.kernel_hw)
        return (ph, pw)

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        if c % self.groups:
            raise ShapeError(
                f"in_channels={c} not divisible by groups={self.groups}"
            )
        kh, kw = self.kernel_hw
        sh, sw = self.stride_hw
        ph, pw = self._padding_hw()
        return (self.out_channels, conv_out_size(h, kh, sh, ph), conv_out_size(w, kw, sw, pw))

    def macs(self, in_shape: Shape) -> int:
        c, _, _ = in_shape
        _, oh, ow = self.out_shape(in_shape)
        kh, kw = self.kernel_hw
        return oh * ow * self.out_channels * (c // self.groups) * kh * kw

    def params(self, in_shape: Shape) -> int:
        c, _, _ = in_shape
        kh, kw = self.kernel_hw
        n = self.out_channels * (c // self.groups) * kh * kw
        if self.bias:
            n += self.out_channels
        return n


@dataclass(frozen=True)
class DepthwiseConv2D(LayerSpec):
    """Depthwise 2D convolution: each channel convolved with its own filter.

    This is the first stage of depthwise-separable convolution (§II-D of the
    paper); the paper shows it maps to a *single column* of a systolic array
    after im2col (§III-B).
    """

    kernel: Union[int, Tuple[int, int]]
    stride: Union[int, Tuple[int, int]] = 1
    padding: Padding = "same"
    multiplier: int = 1
    bias: bool = False

    def __post_init__(self) -> None:
        kh, kw = _pair(self.kernel)
        if kh <= 0 or kw <= 0:
            raise ShapeError(f"kernel must be positive, got {self.kernel}")
        if self.multiplier <= 0:
            raise ShapeError(f"multiplier must be positive, got {self.multiplier}")

    @property
    def kernel_hw(self) -> Tuple[int, int]:
        return _pair(self.kernel)

    @property
    def stride_hw(self) -> Tuple[int, int]:
        return _pair(self.stride)

    def _padding_hw(self) -> Tuple[Padding, Padding]:
        if self.padding == "same":
            return ("same", "same")
        ph, pw = resolve_padding(self.padding, self.kernel_hw)
        return (ph, pw)

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        kh, kw = self.kernel_hw
        sh, sw = self.stride_hw
        ph, pw = self._padding_hw()
        return (
            c * self.multiplier,
            conv_out_size(h, kh, sh, ph),
            conv_out_size(w, kw, sw, pw),
        )

    def macs(self, in_shape: Shape) -> int:
        oc, oh, ow = self.out_shape(in_shape)
        kh, kw = self.kernel_hw
        return oh * ow * oc * kh * kw

    def params(self, in_shape: Shape) -> int:
        c, _, _ = in_shape
        kh, kw = self.kernel_hw
        n = c * self.multiplier * kh * kw
        if self.bias:
            n += c * self.multiplier
        return n


@dataclass(frozen=True)
class PointwiseConv2D(LayerSpec):
    """1×1 convolution (the second stage of depthwise-separable convolution)."""

    out_channels: int
    bias: bool = False

    def __post_init__(self) -> None:
        if self.out_channels <= 0:
            raise ShapeError(f"out_channels must be positive, got {self.out_channels}")

    def out_shape(self, in_shape: Shape) -> Shape:
        _, h, w = in_shape
        return (self.out_channels, h, w)

    def macs(self, in_shape: Shape) -> int:
        c, h, w = in_shape
        return h * w * c * self.out_channels

    def params(self, in_shape: Shape) -> int:
        c, _, _ = in_shape
        n = c * self.out_channels
        if self.bias:
            n += self.out_channels
        return n


@dataclass(frozen=True)
class FuSeConv1D(LayerSpec):
    """One group of FuSeConv depthwise 1D filters (§IV-A of the paper).

    ``axis="row"`` applies the filter to each image *row*, i.e. it slides
    along the width axis (kernel ``1×K``); ``axis="col"`` applies it to each
    image *column*, sliding along the height axis (kernel ``K×1``).  Each of
    the layer's input channels gets its own 1D filter — this is a depthwise
    operation.  With stride ``s`` the filter both strides along its own axis
    and subsamples the orthogonal axis so that the output spatial size
    matches the depthwise convolution it replaces (drop-in property).

    A full FuSe block is two such layers on a channel split of the input
    (see :class:`repro.ir.layer.ChannelSplit` and
    :func:`repro.core.transform.fuse_block`).
    """

    axis: str
    kernel: int
    stride: Union[int, Tuple[int, int]] = 1
    padding: Padding = "same"
    bias: bool = False

    def __post_init__(self) -> None:
        if self.axis not in ("row", "col"):
            raise ShapeError(f"axis must be 'row' or 'col', got {self.axis!r}")
        if self.kernel <= 0:
            raise ShapeError(f"kernel must be positive, got {self.kernel}")

    @property
    def kernel_hw(self) -> Tuple[int, int]:
        """Effective 2D kernel: ``(1, K)`` for row filters, ``(K, 1)`` for col."""
        if self.axis == "row":
            return (1, self.kernel)
        return (self.kernel, 1)

    @property
    def stride_hw(self) -> Tuple[int, int]:
        return _pair(self.stride)

    def _padding_hw(self) -> Tuple[Padding, Padding]:
        if self.padding == "same":
            return ("same", "same")
        ph, pw = resolve_padding(self.padding, self.kernel_hw)
        return (ph, pw)

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        kh, kw = self.kernel_hw
        sh, sw = self.stride_hw
        ph, pw = self._padding_hw()
        return (c, conv_out_size(h, kh, sh, ph), conv_out_size(w, kw, sw, pw))

    def macs(self, in_shape: Shape) -> int:
        oc, oh, ow = self.out_shape(in_shape)
        return oh * ow * oc * self.kernel

    def params(self, in_shape: Shape) -> int:
        c, _, _ = in_shape
        n = c * self.kernel
        if self.bias:
            n += c
        return n


@dataclass(frozen=True)
class Linear(LayerSpec):
    """Fully connected layer; expects a flattened ``(features, 1, 1)`` input."""

    out_features: int
    bias: bool = True

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise ShapeError(f"out_features must be positive, got {self.out_features}")

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        if (h, w) != (1, 1):
            raise ShapeError(f"Linear expects a flattened input, got {in_shape}")
        return (self.out_features, 1, 1)

    def macs(self, in_shape: Shape) -> int:
        c, _, _ = in_shape
        return c * self.out_features

    def params(self, in_shape: Shape) -> int:
        c, _, _ = in_shape
        n = c * self.out_features
        if self.bias:
            n += self.out_features
        return n


@dataclass(frozen=True)
class Pool2D(LayerSpec):
    """Average or max pooling; ``op`` is ``"avg"`` or ``"max"``."""

    op: str
    kernel: Union[int, Tuple[int, int]]
    stride: Optional[Union[int, Tuple[int, int]]] = None
    padding: Padding = 0

    def __post_init__(self) -> None:
        if self.op not in ("avg", "max"):
            raise ShapeError(f"pool op must be 'avg' or 'max', got {self.op!r}")

    @property
    def kernel_hw(self) -> Tuple[int, int]:
        return _pair(self.kernel)

    @property
    def stride_hw(self) -> Tuple[int, int]:
        return _pair(self.stride if self.stride is not None else self.kernel)

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        kh, kw = self.kernel_hw
        sh, sw = self.stride_hw
        if self.padding == "same":
            ph: Padding = "same"
            pw: Padding = "same"
        else:
            ph, pw = resolve_padding(self.padding, self.kernel_hw)
        return (c, conv_out_size(h, kh, sh, ph), conv_out_size(w, kw, sw, pw))


@dataclass(frozen=True)
class GlobalAvgPool(LayerSpec):
    """Global average pooling down to ``(C, 1, 1)``."""

    def out_shape(self, in_shape: Shape) -> Shape:
        c, _, _ = in_shape
        return (c, 1, 1)


@dataclass(frozen=True)
class Activation(LayerSpec):
    """Elementwise non-linearity; no MACs or parameters.

    ``fn`` is one of ``relu``, ``relu6``, ``hswish``, ``hsigmoid``,
    ``swish``, ``sigmoid``.
    """

    fn: str

    VALID = ("relu", "relu6", "hswish", "hsigmoid", "swish", "sigmoid")

    def __post_init__(self) -> None:
        if self.fn not in self.VALID:
            raise ShapeError(f"unknown activation {self.fn!r}")

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape


@dataclass(frozen=True)
class BatchNorm(LayerSpec):
    """Batch normalization; 2 learnable parameters per channel.

    At inference BN folds into the preceding convolution, so it contributes
    no MACs to the latency model (consistent with the paper, which counts
    compute-bound convolution and FC layers only).
    """

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def params(self, in_shape: Shape) -> int:
        return 2 * in_shape[0]


@dataclass(frozen=True)
class SqueezeExcite(LayerSpec):
    """Squeeze-and-Excitation block (used by MobileNet-V3 and MnasNet).

    Global-average pool → FC(``C → C/r``) → ReLU → FC(``C/r → C``) →
    h-sigmoid → channel-wise scale.  The two FC layers are counted as MACs
    and are included in the latency model (the paper explicitly includes
    Squeeze-and-Excite layers in latency estimation, §V-A.3).

    ``se_channels`` optionally fixes the bottleneck width; otherwise it is
    ``ceil(C / reduction)`` rounded to a multiple of 8 (MobileNet-V3
    convention).
    """

    reduction: int = 4
    se_channels: Optional[int] = None

    def bottleneck(self, in_channels: int) -> int:
        if self.se_channels is not None:
            return self.se_channels
        return _make_divisible(in_channels / self.reduction, 8)

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def macs(self, in_shape: Shape) -> int:
        c, h, w = in_shape
        mid = self.bottleneck(c)
        # Two FC layers; the (cheap) elementwise scale is h*w*c multiplies,
        # which we include for completeness.
        return c * mid + mid * c + h * w * c

    def params(self, in_shape: Shape) -> int:
        c, _, _ = in_shape
        mid = self.bottleneck(c)
        return (c * mid + mid) + (mid * c + c)


@dataclass(frozen=True)
class Add(LayerSpec):
    """Elementwise residual addition of two equal-shaped inputs."""

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape


@dataclass(frozen=True)
class Concat(LayerSpec):
    """Channel-wise concatenation of multiple inputs (used by FuSe blocks)."""

    def out_shape(self, in_shape: Shape) -> Shape:
        # Multi-input shape handling is done by the Network; for a single
        # listed shape this is identity.
        return in_shape

    @staticmethod
    def merged_shape(shapes: Tuple[Shape, ...]) -> Shape:
        if not shapes:
            raise ShapeError("Concat needs at least one input")
        _, h, w = shapes[0]
        for s in shapes[1:]:
            if s[1:] != (h, w):
                raise ShapeError(f"Concat spatial mismatch: {shapes}")
        return (sum(s[0] for s in shapes), h, w)


@dataclass(frozen=True)
class ChannelSplit(LayerSpec):
    """Select a contiguous channel slice ``[start, stop)`` of the input.

    Used by the Half FuSe variant where row filters see one half of the
    channels and column filters the other half (§IV-A).
    """

    start: int
    stop: int

    def __post_init__(self) -> None:
        if not (0 <= self.start < self.stop):
            raise ShapeError(f"invalid channel slice [{self.start}, {self.stop})")

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        if self.stop > c:
            raise ShapeError(f"slice [{self.start},{self.stop}) exceeds {c} channels")
        return (self.stop - self.start, h, w)


@dataclass(frozen=True)
class Flatten(LayerSpec):
    """Flatten ``(C, H, W)`` to ``(C*H*W, 1, 1)``."""

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        return (c * h * w, 1, 1)


def _make_divisible(value: float, divisor: int, min_value: Optional[int] = None) -> int:
    """Round ``value`` to the nearest multiple of ``divisor`` (MobileNet rule).

    Guarantees the result is no more than 10% below ``value``.
    """
    if min_value is None:
        min_value = divisor
    new_value = max(min_value, int(value + divisor / 2) // divisor * divisor)
    if new_value < 0.9 * value:
        new_value += divisor
    return new_value


#: public alias used by the model zoo
make_divisible = _make_divisible
