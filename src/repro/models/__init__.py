"""Model zoo: the paper's five evaluation networks plus ResNet-50."""

from .efficientnet import efficientnet_b0
from .mnasnet import mnasnet_b1
from .mobilenet_v1 import mobilenet_v1
from .mobilenet_v2 import mobilenet_v2
from .mobilenet_v3 import mobilenet_v3_large, mobilenet_v3_small
from .resnet import resnet50
from .zoo import PAPER_NETWORKS, available_models, build_model

__all__ = [
    "efficientnet_b0",
    "mnasnet_b1",
    "mobilenet_v1",
    "mobilenet_v2",
    "mobilenet_v3_large",
    "mobilenet_v3_small",
    "resnet50",
    "PAPER_NETWORKS",
    "available_models",
    "build_model",
]
