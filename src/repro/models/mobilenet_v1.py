"""MobileNet-V1 (Howard et al., 2017) as a layer-graph description.

Architecture: a 3×3 stride-2 stem followed by 13 depthwise-separable blocks,
global average pooling and a 1000-way classifier — the configuration of
Table 1 in the MobileNet paper, with an optional width multiplier and input
resolution.
"""

from __future__ import annotations

from ..ir import Flatten, GlobalAvgPool, Linear, Network, make_divisible
from .common import conv_bn_act, depthwise_separable

#: (out_channels, stride) for the 13 depthwise-separable blocks.
_BLOCKS = [
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
]


def mobilenet_v1(
    num_classes: int = 1000,
    width_mult: float = 1.0,
    resolution: int = 224,
    in_channels: int = 3,
) -> Network:
    """Build MobileNet-V1.

    Args:
        num_classes: classifier width.
        width_mult: channel width multiplier (rounded to multiples of 8).
        resolution: square input resolution.
        in_channels: input channels (3 for RGB).
    """

    def width(c: int) -> int:
        return make_divisible(c * width_mult, 8)

    net = Network(
        f"mobilenet_v1_{width_mult}_{resolution}".replace(".", "_"),
        input_shape=(in_channels, resolution, resolution),
    )
    conv_bn_act(net, width(32), kernel=3, stride=2, act="relu", block="stem")
    for i, (out_channels, stride) in enumerate(_BLOCKS):
        depthwise_separable(
            net,
            width(out_channels),
            kernel=3,
            stride=stride,
            act="relu",
            block=f"dsblock{i}",
        )
    net.add(GlobalAvgPool(), block="head")
    net.add(Flatten(), block="head")
    net.add(Linear(num_classes), block="head")
    return net
