"""MobileNet-V3 Small and Large (Howard et al., 2019) as layer graphs.

Bottleneck tables follow Tables 1 and 2 of the MobileNet-V3 paper, including
Squeeze-and-Excite placements and h-swish activations.  The classifier head
uses the efficient "last stage": 1×1 conv → pool → 1×1 conv (as FC) → FC.
"""

from __future__ import annotations

from typing import List, Tuple

from ..ir import Flatten, GlobalAvgPool, Linear, Network, make_divisible
from .common import conv_bn_act, inverted_residual, pointwise_bn

#: (kernel, expansion size, out_channels, use_se, activation, stride)
_LARGE: List[Tuple[int, int, int, bool, str, int]] = [
    (3, 16, 16, False, "relu", 1),
    (3, 64, 24, False, "relu", 2),
    (3, 72, 24, False, "relu", 1),
    (5, 72, 40, True, "relu", 2),
    (5, 120, 40, True, "relu", 1),
    (5, 120, 40, True, "relu", 1),
    (3, 240, 80, False, "hswish", 2),
    (3, 200, 80, False, "hswish", 1),
    (3, 184, 80, False, "hswish", 1),
    (3, 184, 80, False, "hswish", 1),
    (3, 480, 112, True, "hswish", 1),
    (3, 672, 112, True, "hswish", 1),
    (5, 672, 160, True, "hswish", 2),
    (5, 960, 160, True, "hswish", 1),
    (5, 960, 160, True, "hswish", 1),
]

_SMALL: List[Tuple[int, int, int, bool, str, int]] = [
    (3, 16, 16, True, "relu", 2),
    (3, 72, 24, False, "relu", 2),
    (3, 88, 24, False, "relu", 1),
    (5, 96, 40, True, "hswish", 2),
    (5, 240, 40, True, "hswish", 1),
    (5, 240, 40, True, "hswish", 1),
    (5, 120, 48, True, "hswish", 1),
    (5, 144, 48, True, "hswish", 1),
    (5, 288, 96, True, "hswish", 2),
    (5, 576, 96, True, "hswish", 1),
    (5, 576, 96, True, "hswish", 1),
]


def _mobilenet_v3(
    name: str,
    settings: List[Tuple[int, int, int, bool, str, int]],
    last_conv: int,
    classifier_width: int,
    num_classes: int,
    width_mult: float,
    resolution: int,
    in_channels: int,
) -> Network:
    def width(c: int) -> int:
        return make_divisible(c * width_mult, 8)

    net = Network(name, input_shape=(in_channels, resolution, resolution))
    conv_bn_act(net, width(16), kernel=3, stride=2, act="hswish", block="stem")
    for i, (kernel, exp, out, use_se, act, stride) in enumerate(settings):
        inverted_residual(
            net,
            width(out),
            kernel=kernel,
            stride=stride,
            expand_channels=width(exp),
            act=act,
            use_se=use_se,
            se_channels=make_divisible(width(exp) / 4, 8),
            block=f"bneck{i}",
        )
    pointwise_bn(net, width(last_conv), act="hswish", block="head")
    net.add(GlobalAvgPool(), block="head")
    net.add(Flatten(), block="head")
    # Efficient last stage: a wide FC with h-swish, then the classifier.
    net.add(Linear(classifier_width), block="head")
    from ..ir import Activation  # local import avoids cycle at module load

    net.add(Activation("hswish"), block="head")
    net.add(Linear(num_classes), block="head")
    return net


def mobilenet_v3_large(
    num_classes: int = 1000,
    width_mult: float = 1.0,
    resolution: int = 224,
    in_channels: int = 3,
) -> Network:
    """Build MobileNet-V3 Large (Table 1 of the MobileNet-V3 paper)."""
    return _mobilenet_v3(
        f"mobilenet_v3_large_{width_mult}_{resolution}".replace(".", "_"),
        _LARGE,
        last_conv=960,
        classifier_width=1280,
        num_classes=num_classes,
        width_mult=width_mult,
        resolution=resolution,
        in_channels=in_channels,
    )


def mobilenet_v3_small(
    num_classes: int = 1000,
    width_mult: float = 1.0,
    resolution: int = 224,
    in_channels: int = 3,
) -> Network:
    """Build MobileNet-V3 Small (Table 2 of the MobileNet-V3 paper)."""
    return _mobilenet_v3(
        f"mobilenet_v3_small_{width_mult}_{resolution}".replace(".", "_"),
        _SMALL,
        last_conv=576,
        classifier_width=1024,
        num_classes=num_classes,
        width_mult=width_mult,
        resolution=resolution,
        in_channels=in_channels,
    )
