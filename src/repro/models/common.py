"""Shared building blocks for the model zoo.

All five evaluation networks (MobileNet-V1/V2/V3-Small/V3-Large, MnasNet-B1)
are assembled from three primitives: conv+BN+activation stems, depthwise
separable blocks, and inverted-residual (MBConv) bottlenecks with optional
Squeeze-and-Excite.
"""

from __future__ import annotations

from typing import Optional

from ..ir import (
    Activation,
    Add,
    BatchNorm,
    Conv2D,
    DepthwiseConv2D,
    Network,
    PointwiseConv2D,
    SqueezeExcite,
    make_divisible,
)


def conv_bn_act(
    net: Network,
    out_channels: int,
    kernel: int,
    stride: int = 1,
    act: str = "relu",
    block: str = "",
    groups: int = 1,
) -> str:
    """Standard conv → BN → activation; returns the activation node name."""
    net.add(
        Conv2D(out_channels, kernel=kernel, stride=stride, padding="same", groups=groups),
        block=block,
    )
    net.add(BatchNorm(), block=block)
    return net.add(Activation(act), block=block)


def pointwise_bn(
    net: Network,
    out_channels: int,
    act: Optional[str] = None,
    block: str = "",
) -> str:
    """1×1 conv → BN → optional activation (linear bottlenecks pass None)."""
    net.add(PointwiseConv2D(out_channels), block=block)
    last = net.add(BatchNorm(), block=block)
    if act is not None:
        last = net.add(Activation(act), block=block)
    return last


def depthwise_separable(
    net: Network,
    out_channels: int,
    kernel: int = 3,
    stride: int = 1,
    act: str = "relu",
    block: str = "",
) -> str:
    """MobileNet-V1 style block: DW(K×K) → BN → act → PW(1×1) → BN → act."""
    net.add(DepthwiseConv2D(kernel=kernel, stride=stride, padding="same"), block=block)
    net.add(BatchNorm(), block=block)
    net.add(Activation(act), block=block)
    return pointwise_bn(net, out_channels, act=act, block=block)


def inverted_residual(
    net: Network,
    out_channels: int,
    kernel: int,
    stride: int,
    expand_channels: int,
    act: str = "relu",
    use_se: bool = False,
    se_channels: Optional[int] = None,
    block: str = "",
) -> str:
    """MBConv bottleneck (MobileNet-V2/V3, MnasNet).

    PW-expand → BN → act → DW(K×K, stride) → BN → act → [SE] →
    PW-project (linear) → BN, with a residual Add when stride is 1 and the
    channel count is preserved.  When ``expand_channels`` equals the input
    channel count the expansion conv is omitted (MobileNet-V2 first block,
    MobileNet-V3 first bneck).
    """
    in_channels = net[net.last_name].out_shape[0] if len(net) else net.input_shape[0]
    entry = net.last_name if len(net) else None

    last = entry
    if expand_channels != in_channels:
        last = pointwise_bn(net, expand_channels, act=act, block=block)

    net.add(
        DepthwiseConv2D(kernel=kernel, stride=stride, padding="same"),
        inputs=None if last is None else [last],
        block=block,
    )
    net.add(BatchNorm(), block=block)
    last = net.add(Activation(act), block=block)

    if use_se:
        if se_channels is None:
            se_channels = make_divisible(expand_channels / 4, 8)
        last = net.add(SqueezeExcite(se_channels=se_channels), block=block)

    last = pointwise_bn(net, out_channels, act=None, block=block)

    if stride == 1 and in_channels == out_channels and entry is not None:
        last = net.add(Add(), inputs=[entry, last], block=block)
    return last
