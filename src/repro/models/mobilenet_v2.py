"""MobileNet-V2 (Sandler et al., 2018) as a layer-graph description.

Inverted residual bottlenecks with linear projections and ReLU6, per Table 2
of the MobileNet-V2 paper.
"""

from __future__ import annotations

from ..ir import Flatten, GlobalAvgPool, Linear, Network, make_divisible
from .common import conv_bn_act, inverted_residual, pointwise_bn

#: (expansion t, out_channels c, repeats n, first stride s) per Table 2.
_SETTINGS = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def mobilenet_v2(
    num_classes: int = 1000,
    width_mult: float = 1.0,
    resolution: int = 224,
    in_channels: int = 3,
) -> Network:
    """Build MobileNet-V2 with the standard (t, c, n, s) table."""

    def width(c: int) -> int:
        return make_divisible(c * width_mult, 8)

    net = Network(
        f"mobilenet_v2_{width_mult}_{resolution}".replace(".", "_"),
        input_shape=(in_channels, resolution, resolution),
    )
    current = width(32)
    conv_bn_act(net, current, kernel=3, stride=2, act="relu6", block="stem")
    block_index = 0
    for t, c, n, s in _SETTINGS:
        out_channels = width(c)
        for i in range(n):
            inverted_residual(
                net,
                out_channels,
                kernel=3,
                stride=s if i == 0 else 1,
                expand_channels=current * t,
                act="relu6",
                block=f"bneck{block_index}",
            )
            current = out_channels
            block_index += 1
    # The last conv is 1280 wide regardless of width_mult <= 1.0 (paper rule:
    # max(1280, 1280 * width_mult)).
    last_channels = make_divisible(1280 * max(1.0, width_mult), 8)
    pointwise_bn(net, last_channels, act="relu6", block="head")
    net.add(GlobalAvgPool(), block="head")
    net.add(Flatten(), block="head")
    net.add(Linear(num_classes), block="head")
    return net
