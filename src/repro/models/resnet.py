"""ResNet-50 (He et al., 2016) as a layer-graph description.

Used for the paper's §I motivation experiment: MobileNet-V2 has ~12× fewer
MACs than ResNet-50 yet runs only ~1.3× faster on a 32×32 systolic array,
because standard convolutions utilize the array well while depthwise
convolutions do not.
"""

from __future__ import annotations

from ..ir import (
    Activation,
    Add,
    BatchNorm,
    Conv2D,
    Flatten,
    GlobalAvgPool,
    Linear,
    Network,
    Pool2D,
)

#: (out_channels of the 3×3 conv, repeats, first stride) per stage.
_STAGES = [
    (64, 3, 1),
    (128, 4, 2),
    (256, 6, 2),
    (512, 3, 2),
]

_EXPANSION = 4


def _bottleneck(net: Network, mid_channels: int, stride: int, block: str) -> str:
    """Standard ResNet bottleneck: 1×1 → 3×3(stride) → 1×1(4×) + shortcut."""
    entry = net.last_name
    in_channels = net[entry].out_shape[0]
    out_channels = mid_channels * _EXPANSION

    net.add(Conv2D(mid_channels, kernel=1), inputs=[entry], block=block)
    net.add(BatchNorm(), block=block)
    net.add(Activation("relu"), block=block)
    net.add(Conv2D(mid_channels, kernel=3, stride=stride, padding="same"), block=block)
    net.add(BatchNorm(), block=block)
    net.add(Activation("relu"), block=block)
    net.add(Conv2D(out_channels, kernel=1), block=block)
    main = net.add(BatchNorm(), block=block)

    if stride != 1 or in_channels != out_channels:
        net.add(Conv2D(out_channels, kernel=1, stride=stride), inputs=[entry], block=block)
        shortcut = net.add(BatchNorm(), block=block)
    else:
        shortcut = entry

    added = net.add(Add(), inputs=[main, shortcut], block=block)
    net.add(Activation("relu"), inputs=[added], block=block)
    return net.last_name


def resnet50(
    num_classes: int = 1000,
    resolution: int = 224,
    in_channels: int = 3,
) -> Network:
    """Build ResNet-50."""
    net = Network(f"resnet50_{resolution}", input_shape=(in_channels, resolution, resolution))
    net.add(Conv2D(64, kernel=7, stride=2, padding="same"), block="stem")
    net.add(BatchNorm(), block="stem")
    net.add(Activation("relu"), block="stem")
    net.add(Pool2D("max", kernel=3, stride=2, padding="same"), block="stem")
    block_index = 0
    for mid_channels, repeats, first_stride in _STAGES:
        for i in range(repeats):
            _bottleneck(
                net,
                mid_channels,
                stride=first_stride if i == 0 else 1,
                block=f"res{block_index}",
            )
            block_index += 1
    net.add(GlobalAvgPool(), block="head")
    net.add(Flatten(), block="head")
    net.add(Linear(num_classes), block="head")
    return net
