"""MnasNet-B1 (Tan et al., 2019) as a layer-graph description.

The B1 variant found by platform-aware NAS: a stem, one depthwise-separable
block, six MBConv stages (no Squeeze-and-Excite in B1), and the classifier.
Stage settings follow Fig. 7 of the MnasNet paper.
"""

from __future__ import annotations

from ..ir import Flatten, GlobalAvgPool, Linear, Network, make_divisible
from .common import conv_bn_act, depthwise_separable, inverted_residual, pointwise_bn

#: (kernel, expansion t, out_channels c, repeats n, first stride s)
_SETTINGS = [
    (3, 3, 24, 3, 2),
    (5, 3, 40, 3, 2),
    (5, 6, 80, 3, 2),
    (3, 6, 96, 2, 1),
    (5, 6, 192, 4, 2),
    (3, 6, 320, 1, 1),
]


def mnasnet_b1(
    num_classes: int = 1000,
    width_mult: float = 1.0,
    resolution: int = 224,
    in_channels: int = 3,
) -> Network:
    """Build MnasNet-B1."""

    def width(c: int) -> int:
        return make_divisible(c * width_mult, 8)

    net = Network(
        f"mnasnet_b1_{width_mult}_{resolution}".replace(".", "_"),
        input_shape=(in_channels, resolution, resolution),
    )
    conv_bn_act(net, width(32), kernel=3, stride=2, act="relu", block="stem")
    # SepConv block producing 16 channels.
    depthwise_separable(net, width(16), kernel=3, stride=1, act="relu", block="sepconv")
    current = width(16)
    block_index = 0
    for kernel, t, c, n, s in _SETTINGS:
        out_channels = width(c)
        for i in range(n):
            inverted_residual(
                net,
                out_channels,
                kernel=kernel,
                stride=s if i == 0 else 1,
                expand_channels=current * t,
                act="relu",
                block=f"mbconv{block_index}",
            )
            current = out_channels
            block_index += 1
    pointwise_bn(net, 1280, act="relu", block="head")
    net.add(GlobalAvgPool(), block="head")
    net.add(Flatten(), block="head")
    net.add(Linear(num_classes), block="head")
    return net
