"""Model registry: name → builder.

The five paper networks (Table I) plus ResNet-50 for the motivation
experiment.  Builders accept ``num_classes``, ``width_mult``, ``resolution``
and ``in_channels`` keyword arguments so scaled-down variants for CPU
training can be produced from the same definitions.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..ir import Network
from .efficientnet import efficientnet_b0
from .mnasnet import mnasnet_b1
from .mobilenet_v1 import mobilenet_v1
from .mobilenet_v2 import mobilenet_v2
from .mobilenet_v3 import mobilenet_v3_large, mobilenet_v3_small
from .resnet import resnet50

_REGISTRY: Dict[str, Callable[..., Network]] = {
    "efficientnet_b0": efficientnet_b0,
    "mobilenet_v1": mobilenet_v1,
    "mobilenet_v2": mobilenet_v2,
    "mobilenet_v3_small": mobilenet_v3_small,
    "mobilenet_v3_large": mobilenet_v3_large,
    "mnasnet_b1": mnasnet_b1,
    "resnet50": resnet50,
}

#: The five networks evaluated in Table I, in the paper's order.
PAPER_NETWORKS: List[str] = [
    "mobilenet_v1",
    "mobilenet_v2",
    "mnasnet_b1",
    "mobilenet_v3_small",
    "mobilenet_v3_large",
]


def available_models() -> List[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_REGISTRY)


def build_model(name: str, **kwargs) -> Network:
    """Build a registered model by name.

    Raises:
        KeyError: if ``name`` is not registered (message lists valid names).
    """
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        ) from None
    return builder(**kwargs)
