"""EfficientNet-B0 (Tan & Le, 2019) as a layer-graph description.

§I of the FuSeConv paper cites EfficientNet's incommensurate scaling on
EdgeTPU (Gupta et al.) as prior evidence of the depthwise/accelerator
mismatch; including B0 lets the FuSe transform be evaluated on it as an
extension.  MBConv settings follow Table 1 of the EfficientNet paper;
Squeeze-and-Excite uses the EfficientNet convention (bottleneck = 1/4 of
the *block input* channels) and the paper's swish activation.
"""

from __future__ import annotations

from typing import List, Tuple

from ..ir import Flatten, GlobalAvgPool, Linear, Network, make_divisible
from .common import conv_bn_act, inverted_residual, pointwise_bn

#: (kernel, expansion t, out_channels c, repeats n, first stride s)
_SETTINGS: List[Tuple[int, int, int, int, int]] = [
    (3, 1, 16, 1, 1),
    (3, 6, 24, 2, 2),
    (5, 6, 40, 2, 2),
    (3, 6, 80, 3, 2),
    (5, 6, 112, 3, 1),
    (5, 6, 192, 4, 2),
    (3, 6, 320, 1, 1),
]


def efficientnet_b0(
    num_classes: int = 1000,
    width_mult: float = 1.0,
    resolution: int = 224,
    in_channels: int = 3,
) -> Network:
    """Build EfficientNet-B0 (squeeze-excite on every MBConv, swish)."""

    def width(c: int) -> int:
        return make_divisible(c * width_mult, 8)

    net = Network(
        f"efficientnet_b0_{width_mult}_{resolution}".replace(".", "_"),
        input_shape=(in_channels, resolution, resolution),
    )
    current = width(32)
    conv_bn_act(net, current, kernel=3, stride=2, act="swish", block="stem")
    block_index = 0
    for kernel, t, c, n, s in _SETTINGS:
        out_channels = width(c)
        for i in range(n):
            # EfficientNet SE bottleneck: 1/4 of the block *input* channels.
            inverted_residual(
                net,
                out_channels,
                kernel=kernel,
                stride=s if i == 0 else 1,
                expand_channels=current * t,
                act="swish",
                use_se=True,
                se_channels=max(1, current // 4),
                block=f"mbconv{block_index}",
            )
            current = out_channels
            block_index += 1
    pointwise_bn(net, width(1280), act="swish", block="head")
    net.add(GlobalAvgPool(), block="head")
    net.add(Flatten(), block="head")
    net.add(Linear(num_classes), block="head")
    return net
