"""The active half of fault injection: evaluating fault points at runtime.

Instrumentation sites are one call:

* :func:`inject` — generic sites; raises :class:`InjectedFault`, sleeps,
  or kills the process according to the matching spec;
* :func:`should_fire` — custom sites (disk-cache corruption, transport
  garbage) that implement the misbehavior themselves and only need the
  seeded firing decision.

Both are near-free when no plan is installed: one module-global check and
an early return, so the hot serving/simulation paths pay nothing in the
fault-free production configuration (benchmarked against the
``BENCH_compile`` baselines — see docs/robustness.md).

A plan is installed explicitly (:func:`install_plan`, used by chaos mode
and tests) or picked up once from ``$REPRO_FAULTS`` on the first fault
point evaluated in the process.  Firing decisions are deterministic: each
spec owns a :class:`random.Random` seeded with ``(plan seed, point, spec
index)``, and per-spec evaluation/firing counters are kept under a lock,
so the schedule replays exactly across runs (see the determinism contract
in :mod:`repro.faults.plan`).

Every firing increments ``faults.injected.<point>`` on the default
metrics registry and emits a structured log line, so chaos runs leave a
complete audit trail in ``--metrics-out`` sidecars.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Dict, List, Optional

from ..obs import get_logger, get_registry
from .plan import FaultPlan, FaultSpec

__all__ = [
    "InjectedFault",
    "FaultInjector",
    "install_plan",
    "clear_plan",
    "current_injector",
    "inject",
    "should_fire",
]

_log = get_logger("faults")


class InjectedFault(RuntimeError):
    """Raised by an ``error``-kind firing; carries the fault point name."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class FaultInjector:
    """Evaluates a :class:`FaultPlan` deterministically, thread-safely."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._specs: Dict[str, List[tuple]] = {}
        for index, spec in enumerate(plan.faults):
            rng = random.Random(f"{plan.seed}:{spec.point}:{index}")
            self._specs.setdefault(spec.point, []).append((index, spec, rng))
        self._evals: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------ evaluation

    def should_fire(self, point: str,
                    tag: Optional[str] = None) -> Optional[FaultSpec]:
        """Evaluate one fault point; the firing spec, or ``None``.

        At most one spec fires per evaluation (first match in plan order);
        every spec for the point still consumes one draw, keeping the
        sequence deterministic regardless of which spec fires.  A spec
        carrying a ``tag`` only fires when the site's ``tag`` matches —
        mismatched evaluations still consume their draw (and count toward
        ``after``), so targeting one replica of a fleet does not shift
        the schedule of any other spec.
        """
        specs = self._specs.get(point)
        if not specs:
            return None
        winner: Optional[FaultSpec] = None
        with self._lock:
            for index, spec, rng in specs:
                evals = self._evals.get(index, 0) + 1
                self._evals[index] = evals
                draw = rng.random()  # always drawn: keeps sequences aligned
                if winner is not None:
                    continue
                if spec.tag is not None and spec.tag != tag:
                    continue
                if evals <= spec.after:
                    continue
                if (spec.max_fires is not None
                        and self._fired.get(index, 0) >= spec.max_fires):
                    continue
                if spec.probability < 1.0 and draw >= spec.probability:
                    continue
                self._fired[index] = self._fired.get(index, 0) + 1
                winner = spec
        if winner is not None:
            get_registry().counter(f"faults.injected.{point}").inc()
            _log.info("fault fired", point=point, kind=winner.kind,
                      fired=self.fired(point))
        return winner

    # ------------------------------------------------------- introspection

    def fired(self, point: Optional[str] = None) -> int:
        """Total firings, for one point or across the plan."""
        with self._lock:
            if point is None:
                return sum(self._fired.values())
            return sum(
                self._fired.get(index, 0)
                for index, _, _ in self._specs.get(point, [])
            )

    def snapshot(self) -> Dict[str, dict]:
        """Per-point evaluation/firing counts (diagnostics, tests)."""
        out: Dict[str, dict] = {}
        with self._lock:
            for point, specs in self._specs.items():
                out[point] = {
                    "evals": sum(self._evals.get(i, 0) for i, _, _ in specs),
                    "fired": sum(self._fired.get(i, 0) for i, _, _ in specs),
                }
        return out


# ----------------------------------------------------------- process state

_lock = threading.Lock()
_injector: Optional[FaultInjector] = None
_env_checked = False


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Install (or, with ``None``, clear) the process-wide fault plan."""
    global _injector, _env_checked
    with _lock:
        _env_checked = True  # an explicit install overrides $REPRO_FAULTS
        _injector = FaultInjector(plan) if plan is not None else None
        return _injector


def clear_plan() -> None:
    """Remove the installed plan; fault points become no-ops again."""
    install_plan(None)


def current_injector() -> Optional[FaultInjector]:
    """The active injector (resolving ``$REPRO_FAULTS`` once), or ``None``."""
    global _injector, _env_checked
    if _env_checked:
        return _injector
    with _lock:
        if not _env_checked:
            _env_checked = True
            if _injector is None:
                plan = FaultPlan.from_env()
                if plan is not None:
                    _injector = FaultInjector(plan)
                    _log.info("fault plan loaded from environment",
                              points=",".join(plan.points()),
                              fingerprint=plan.fingerprint()[:12])
    return _injector


def should_fire(point: str, tag: Optional[str] = None) -> Optional[FaultSpec]:
    """Custom-site evaluation: the firing spec, or ``None`` (the fast path)."""
    injector = current_injector()
    if injector is None:
        return None
    return injector.should_fire(point, tag=tag)


def inject(point: str, tag: Optional[str] = None) -> None:
    """Generic-site evaluation: act out the firing spec, if any.

    ``error`` raises :class:`InjectedFault`, ``delay`` and ``stall``
    sleep the spec's ``delay_ms`` (blocking — async sites evaluate
    :func:`should_fire` themselves and ``await asyncio.sleep``), ``kill``
    exits the process (for process-pool worker death).  No-op when no
    plan is installed or nothing fires.
    """
    spec = should_fire(point, tag=tag)
    if spec is None:
        return
    if spec.kind in ("delay", "stall"):
        time.sleep(spec.delay_ms / 1000.0)
    elif spec.kind == "kill":
        os._exit(spec.exit_code)
    else:
        raise InjectedFault(point)
