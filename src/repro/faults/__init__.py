"""Deterministic, seeded fault injection for the serving/simulation stack.

The framework has two halves:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`, the
  declarative description of which registered fault points
  (:data:`FAULT_POINTS`) misbehave and when, loadable from code, a JSON
  file, or the ``REPRO_FAULTS`` environment variable;
* :mod:`repro.faults.injector` — the runtime: :func:`inject` /
  :func:`should_fire` calls at instrumented sites, which are no-ops until
  a plan is installed (:func:`install_plan`).

Chaos mode (``repro loadgen --chaos``, :mod:`repro.serve.chaos`) drives a
seeded plan against a live server and asserts the resilience machinery —
retries, circuit breaking, the degradation chain, worker restarts — holds
its SLO bounds.  See ``docs/robustness.md``.
"""

from .injector import (
    FaultInjector,
    InjectedFault,
    clear_plan,
    current_injector,
    inject,
    install_plan,
    should_fire,
)
from .plan import FAULT_POINTS, FAULTS_ENV, KINDS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_POINTS",
    "FAULTS_ENV",
    "KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
    "clear_plan",
    "current_injector",
    "inject",
    "install_plan",
    "should_fire",
]
