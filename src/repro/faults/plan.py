"""Fault plans: the declarative half of the fault-injection framework.

A :class:`FaultPlan` names *which* registered fault points misbehave,
*how* (raise, delay, kill), and *when* (probability, one-shot counts,
warm-up skips), all derived deterministically from one seed.  Plans are
plain JSON — build them in code, load them from a file, or drop one into
the ``REPRO_FAULTS`` environment variable (inline JSON or a path) to
inject faults into any CLI invocation without touching code.

Every injectable site in the codebase is declared in :data:`FAULT_POINTS`
below; a plan naming an unknown point is rejected at construction, so the
catalog doubles as the authoritative fault-point registry documented in
``docs/robustness.md``.

Determinism contract: the *schedule* of a plan — which evaluations of a
fault point fire — is a pure function of ``(seed, point, spec index)``.
Re-running the same workload with the same plan replays the same
schedule.  Which in-flight request a firing lands on can still vary with
thread interleaving; the counts and the draw sequence do not.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["FAULT_POINTS", "KINDS", "FaultSpec", "FaultPlan", "FAULTS_ENV"]

#: Environment knob: inline JSON (starts with ``{``) or a path to a plan file.
FAULTS_ENV = "REPRO_FAULTS"

#: The registry of injectable fault points.  Instrumentation sites call
#: :func:`repro.faults.inject` / :func:`repro.faults.should_fire` with one
#: of these names; plans naming anything else are rejected.
FAULT_POINTS: Dict[str, str] = {
    "serve.engine": (
        "batch execution body in repro.serve.workers.execute_batch: "
        "'error' raises mid-batch (exercises the degradation chain and the "
        "circuit breaker), 'delay' injects an artificial latency spike, "
        "'stall' is the sustained gray-failure slow-down (pair it with "
        "max_fires=None so every batch pays the delay)"
    ),
    "fleet.forward": (
        "router-side forward hop in repro.fleet.router: evaluated once per "
        "forward with tag=<replica_id>, so a tagged spec targets one "
        "replica of an in-process fleet; 'stall' sleeps delay_ms on the "
        "event loop without blocking other forwards (the gray-failure "
        "drill), 'error' fails the forward as a transport error (reroute)"
    ),
    "serve.worker": (
        "serve worker task right after it takes a batch: 'error' crashes "
        "the task (its batch is re-queued and the supervisor restarts the "
        "worker)"
    ),
    "nn.compile": (
        "InferencePlan compilation entry (repro.nn.compile.compile_executor): "
        "'error' fails the compile so serving falls back to the eager graph"
    ),
    "transport.disconnect": (
        "server side of a JSON-lines TCP connection: drops the connection "
        "mid-stream (clients with retries reconnect and resend)"
    ),
    "transport.garbage": (
        "server side of the TCP transport: emits one garbage frame before "
        "a response (clients must skip it and keep correlating by id)"
    ),
    "parallel.worker": (
        "process-pool task body in repro.systolic.parallel: 'kill' makes "
        "the worker process die (os._exit), breaking the pool; resilient "
        "scatter resurrects the pool and re-dispatches the remaining chunk"
    ),
    "diskcache.write": (
        "disk-cache entry writer in repro.systolic.diskcache: truncates "
        "the payload mid-write (partial-write corruption; the next read "
        "must degrade to a miss, never crash)"
    ),
}

#: What a firing does at a generic site (custom sites interpret the spec
#: themselves and may ignore the kind).  ``stall`` is ``delay``'s
#: gray-failure sibling: the same deterministic sleep, but declared as a
#: *sustained* slow-down — plans use it with ``max_fires=None`` to model
#: a replica that is alive and probe-healthy yet runs many times slow.
KINDS = ("error", "delay", "kill", "stall")


@dataclass(frozen=True)
class FaultSpec:
    """One activation rule for one fault point.

    Args:
        point: a name from :data:`FAULT_POINTS`.
        kind: ``error`` (raise :class:`~repro.faults.InjectedFault`),
            ``delay`` (sleep ``delay_ms``) or ``kill`` (``os._exit``);
            custom sites (diskcache, transport) implement the corruption
            themselves and only consult the firing decision.
        probability: chance that one evaluation fires (seeded, so the
            draw sequence is deterministic).
        max_fires: total firings allowed (``None`` = unlimited); the
            default of 1 makes specs one-shot unless asked otherwise.
        after: skip the first N evaluations (warm-up guard).
        delay_ms: sleep duration for ``kind="delay"`` / ``kind="stall"``.
        exit_code: process exit status for ``kind="kill"``.
        tag: optional instance selector.  Sites that serve many identical
            instances in one process (the fleet router forwarding to N
            in-process replicas) evaluate with ``tag=<instance id>``; a
            spec carrying a tag only fires when the tags match, so a
            chaos plan can stall exactly one replica.  Mismatched
            evaluations still consume a draw (and count toward
            ``after``), keeping the schedule deterministic.
    """

    point: str
    kind: str = "error"
    probability: float = 1.0
    max_fires: Optional[int] = 1
    after: int = 0
    delay_ms: float = 0.0
    exit_code: int = 13
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; registered points: "
                f"{', '.join(sorted(FAULT_POINTS))}"
            )
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0, got {self.max_fires}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")
        if self.tag is not None and not isinstance(self.tag, str):
            raise ValueError(f"tag must be a string, got {self.tag!r}")

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "kind": self.kind,
            "probability": self.probability,
            "max_fires": self.max_fires,
            "after": self.after,
            "delay_ms": self.delay_ms,
            "exit_code": self.exit_code,
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        unknown = set(payload) - {
            "point", "kind", "probability", "max_fires", "after",
            "delay_ms", "exit_code", "tag",
        }
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        if "point" not in payload:
            raise ValueError("a fault spec needs a 'point'")
        return cls(**payload)


@dataclass
class FaultPlan:
    """A seeded set of fault specs — the unit of chaos configuration."""

    seed: int = 0
    faults: List[FaultSpec] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": [s.to_dict() for s in self.faults]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError(f"a fault plan must be a JSON object, got "
                             f"{type(payload).__name__}")
        unknown = set(payload) - {"seed", "faults"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        faults = payload.get("faults", [])
        if not isinstance(faults, list):
            raise ValueError("'faults' must be a list of fault specs")
        return cls(
            seed=int(payload.get("seed", 0)),
            faults=[FaultSpec.from_dict(s) for s in faults],
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_env(cls, env: str = FAULTS_ENV) -> Optional["FaultPlan"]:
        """The plan named by ``$REPRO_FAULTS``, or ``None`` when unset.

        The value is inline JSON when it starts with ``{``, otherwise a
        path to a JSON plan file.
        """
        raw = os.environ.get(env)
        if not raw or not raw.strip():
            return None
        raw = raw.strip()
        if raw.startswith("{"):
            return cls.from_json(raw)
        with open(raw, "r") as handle:
            return cls.from_json(handle.read())

    def fingerprint(self) -> str:
        """SHA-256 of the canonical plan JSON — the determinism witness.

        Two runs with equal fingerprints replay the same fault schedule
        (same seeds, same draw sequences per point).
        """
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def points(self) -> List[str]:
        return sorted({s.point for s in self.faults})
