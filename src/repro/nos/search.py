"""Neural Operator Search (NOS) — the paper's §VI proposal, made concrete.

The paper frames FuSeConv as one point found by *manual* operator search
and calls for automating the choice.  This module implements that search
for the operator family {depthwise, FuSe-Full, FuSe-Half} assigned **per
layer**: minimize network latency on a target array subject to a
parameter budget (the capacity proxy for accuracy that Table I's
params/accuracy correlation motivates).

Each depthwise layer's choice is independent in both objective (its
latency contribution) and constraint (its parameter count), so the
problem is a multiple-choice knapsack, solved exactly by dynamic
programming over a quantized parameter budget.

The paper's fixed variants are corner cases: all-Full, all-Half, and the
greedy 50 % selections — :func:`search_operators` generalizes them and
typically finds mixes that dominate the fixed variants on the
latency/params Pareto front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.fuseconv import split_channels
from ..core.transform import to_mixed_fuseconv
from ..ir.layer import DepthwiseConv2D, FuSeConv1D
from ..ir.network import Network, Node
from ..systolic.config import ArrayConfig, PAPER_ARRAY
from ..systolic.latency import mapping_stats

#: The operator candidates: design knob D, or None to keep depthwise.
CANDIDATES: Tuple[Optional[int], ...] = (None, 1, 2)


@dataclass(frozen=True)
class LayerOption:
    """One candidate operator for one depthwise layer."""

    node: str
    choice: Optional[int]  # None = keep depthwise, 1 = Full, 2 = Half
    cycles: int
    params: int

    @property
    def label(self) -> str:
        names = {None: "depthwise", 1: "fuse-full", 2: "fuse-half"}
        return names.get(self.choice, f"fuse-d{self.choice}")


@dataclass
class SearchResult:
    """Outcome of an operator search."""

    choices: Dict[str, Optional[int]]
    cycles: int           # modeled cycles of the *searched* layers
    params: int           # parameters of the searched layers
    options: List[List[LayerOption]] = field(default_factory=list)

    def build(self, network: Network) -> Network:
        """Materialize the searched operator mix as a network."""
        return to_mixed_fuseconv(network, self.choices, name_suffix="NOS")


def _options_for(
    node: Node,
    array: ArrayConfig,
    candidates: Tuple[Optional[int], ...] = CANDIDATES,
) -> List[LayerOption]:
    """Latency/params of each candidate operator for one depthwise node."""
    layer = node.layer
    assert isinstance(layer, DepthwiseConv2D)
    kh, kw = layer.kernel_hw
    if kh != kw:
        # Non-square kernels have no FuSe replacement; keep depthwise.
        keep = mapping_stats(layer, node.in_shape, node.out_shape, array)
        return [LayerOption(node.name, None, keep.cycles, node.params())]

    options = []
    for choice in candidates:
        if choice is None:
            stats = mapping_stats(layer, node.in_shape, node.out_shape, array)
            options.append(
                LayerOption(node.name, None, stats.cycles, node.params())
            )
            continue
        c = node.in_shape[0]
        c_row, c_col = split_channels(c, choice)
        cycles = 0
        params = 0
        for axis, channels in (("row", c_row), ("col", c_col)):
            if channels == 0:
                continue
            spec = FuSeConv1D(
                axis=axis, kernel=kh, stride=layer.stride_hw, padding=layer.padding
            )
            in_shape = (channels, node.in_shape[1], node.in_shape[2])
            cycles += mapping_stats(spec, in_shape, spec.out_shape(in_shape), array).cycles
            params += spec.params(in_shape)
        options.append(LayerOption(node.name, choice, cycles, params))
    return options


def search_operators(
    network: Network,
    latency_budget: Optional[int] = None,
    array: Optional[ArrayConfig] = None,
    buckets: int = 2048,
    candidates: Tuple[Optional[int], ...] = CANDIDATES,
) -> SearchResult:
    """Choose an operator per depthwise layer: maximize capacity under a
    latency budget.

    Capacity (parameter count) is the accuracy proxy — Table I shows
    accuracy tracking parameters across the variants (Full > baseline >
    Half).  FuSe-Half is simultaneously the fastest *and* smallest option,
    so pure latency minimization is trivial (all-Half); the interesting
    search is how much capacity can be kept while meeting a latency
    target.

    Args:
        network: the baseline network.
        latency_budget: maximum total cycles across the searched
            (depthwise-stage) layers on ``array``.  ``None`` = no latency
            constraint: simply keep the highest-capacity option per layer.
        array: target array (default: the paper's 64×64).
        buckets: DP resolution; the budget axis is quantized into this
            many steps (search is exact up to that resolution, with
            per-option cycle costs rounded *up* — never optimistic).

    Returns:
        The optimal :class:`SearchResult` (raises ValueError if even the
        fastest option per layer exceeds the budget).

    Note:
        Pointwise convolutions downstream of a Full replacement widen from
        C to 2C inputs; that effect belongs to the same block and is
        intentionally not modeled here, keeping the knapsack separable —
        mirroring the paper's 50 %-selection heuristic.  Evaluate the
        materialized network with ``estimate_network`` for the full
        picture.
    """
    array = array or PAPER_ARRAY
    depthwise = network.find(DepthwiseConv2D)
    options = [_options_for(node, array, candidates) for node in depthwise]

    if not options:
        return SearchResult(choices={}, cycles=0, params=0, options=[])

    if latency_budget is None:
        best = [max(opts, key=lambda o: (o.params, -o.cycles)) for opts in options]
        return SearchResult(
            choices={o.node: o.choice for o in best},
            cycles=sum(o.cycles for o in best),
            params=sum(o.params for o in best),
            options=options,
        )

    quantum = max(1, latency_budget // buckets)
    budget_q = latency_budget // quantum
    minimum_q = sum(
        min(-(-o.cycles // quantum) for o in opts) for opts in options
    )
    if minimum_q > budget_q:
        raise ValueError(
            f"latency budget {latency_budget} cycles below the minimum "
            f"achievable ~{minimum_q * quantum} for {len(options)} layers"
        )

    # Multiple-choice knapsack DP over quantized cycles; value = params.
    NEG = -1
    dp: List[int] = [NEG] * (budget_q + 1)
    picks: List[Optional[List[LayerOption]]] = [None] * (budget_q + 1)
    dp[0] = 0
    picks[0] = []
    for opts in options:
        new_dp = [NEG] * (budget_q + 1)
        new_picks: List[Optional[List[LayerOption]]] = [None] * (budget_q + 1)
        for b in range(budget_q + 1):
            if dp[b] == NEG:
                continue
            for option in opts:
                cost_q = -(-option.cycles // quantum)  # ceil: never optimistic
                nb = b + cost_q
                if nb > budget_q:
                    continue
                value = dp[b] + option.params
                if value > new_dp[nb]:
                    new_dp[nb] = value
                    new_picks[nb] = picks[b] + [option]  # type: ignore[operator]
        dp, picks = new_dp, new_picks

    best_b = max(
        (b for b in range(budget_q + 1) if dp[b] != NEG), key=lambda b: dp[b]
    )
    chosen = picks[best_b]
    assert chosen is not None
    return SearchResult(
        choices={o.node: o.choice for o in chosen},
        cycles=sum(o.cycles for o in chosen),
        params=sum(o.params for o in chosen),
        options=options,
    )


def pareto_front(
    network: Network,
    array: Optional[ArrayConfig] = None,
    points: int = 8,
) -> List[SearchResult]:
    """Sweep latency budgets from all-fastest to all-largest.

    Returns one :class:`SearchResult` per budget — the capacity/latency
    frontier on which the paper's fixed variants (all-Half, all-Full,
    baseline) are individual points.
    """
    array = array or PAPER_ARRAY
    depthwise = network.find(DepthwiseConv2D)
    options = [_options_for(node, array) for node in depthwise]
    if not options:
        return []
    lo = sum(min(o.cycles for o in opts) for opts in options)
    hi = sum(max(o.cycles for o in opts) for opts in options)
    results = []
    for i in range(points):
        budget = lo + (hi - lo) * i // max(points - 1, 1)
        # 2 % slack absorbs the DP's ceil quantization (≤ layers × quantum),
        # so the endpoints resolve to all-fastest / all-largest exactly.
        budget = budget + max(budget // 50, 1)
        results.append(search_operators(network, budget, array))
    return results
