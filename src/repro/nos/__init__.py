"""Neural Operator Search: the paper's §VI future-work direction."""

from .search import (
    CANDIDATES,
    LayerOption,
    SearchResult,
    pareto_front,
    search_operators,
)

__all__ = [
    "CANDIDATES",
    "LayerOption",
    "SearchResult",
    "pareto_front",
    "search_operators",
]
