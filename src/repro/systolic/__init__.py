"""SCALE-Sim-style systolic array simulator with the FuSeConv broadcast dataflow."""

from .config import MOTIVATION_ARRAY, PAPER_ARRAY, ArrayConfig
from .fuse_mapping import (
    BroadcastFold,
    Conv1DBank,
    broadcast_conv1d_stats,
    fallback_conv1d_gemms,
    iter_broadcast_folds,
)
from .gemm import (
    FoldShape,
    GemmDims,
    MappingStats,
    batch_stats,
    fold_counts,
    iter_folds,
    os_gemm_cycles,
    os_gemm_stats,
)
from .buffers import (
    BufferRequirement,
    bank_buffer_requirement,
    gemm_buffer_requirement,
    network_buffer_requirement,
)
from .dataflows import gemm_stats, is_gemm_stats, ws_gemm_stats
from .executor import ArrayNetworkExecutor, ArrayRunResult, LayerRun
from .im2col import ArrayOp, LoweredLayer, lower_layer
from .latency import (
    LayerLatency,
    NetworkLatency,
    clear_mapping_cache,
    estimate_layer,
    estimate_network,
    mapping_cache_info,
    mapping_stats,
    speedup,
)
from .functional import (
    ENGINES,
    SimResult,
    SystolicArraySim,
    simulate_conv1d_bank,
    simulate_gemm,
)
from .diskcache import cache_key, estimate_network_cached
from .parallel import default_jobs, resolve_jobs, scatter, shutdown_pool
from .memory import (
    BYTES_PER_VALUE,
    LayerTraffic,
    TrafficReport,
    layer_traffic,
    traffic_report,
)
from .trace import (
    TraceEvent,
    TraceSummary,
    chrome_trace,
    trace_conv1d_bank,
    trace_gemm,
    unique_addresses,
)
from .utilization import (
    UtilizationReport,
    UtilizationRow,
    depthwise_utilization_bound,
    utilization_report,
)

__all__ = [
    "MOTIVATION_ARRAY",
    "PAPER_ARRAY",
    "ArrayConfig",
    "BroadcastFold",
    "Conv1DBank",
    "broadcast_conv1d_stats",
    "fallback_conv1d_gemms",
    "iter_broadcast_folds",
    "FoldShape",
    "GemmDims",
    "MappingStats",
    "batch_stats",
    "fold_counts",
    "iter_folds",
    "os_gemm_cycles",
    "os_gemm_stats",
    "BufferRequirement",
    "bank_buffer_requirement",
    "gemm_buffer_requirement",
    "network_buffer_requirement",
    "gemm_stats",
    "is_gemm_stats",
    "ws_gemm_stats",
    "ArrayNetworkExecutor",
    "ArrayRunResult",
    "LayerRun",
    "ArrayOp",
    "LoweredLayer",
    "lower_layer",
    "LayerLatency",
    "NetworkLatency",
    "clear_mapping_cache",
    "mapping_cache_info",
    "estimate_layer",
    "estimate_network",
    "mapping_stats",
    "speedup",
    "ENGINES",
    "SimResult",
    "SystolicArraySim",
    "simulate_conv1d_bank",
    "simulate_gemm",
    "cache_key",
    "estimate_network_cached",
    "default_jobs",
    "resolve_jobs",
    "scatter",
    "shutdown_pool",
    "BYTES_PER_VALUE",
    "LayerTraffic",
    "TrafficReport",
    "layer_traffic",
    "traffic_report",
    "UtilizationReport",
    "UtilizationRow",
    "depthwise_utilization_bound",
    "utilization_report",
    "TraceEvent",
    "TraceSummary",
    "chrome_trace",
    "trace_conv1d_bank",
    "trace_gemm",
    "unique_addresses",
]
