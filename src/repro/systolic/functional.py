"""Functional cycle-level systolic array simulator.

While :mod:`repro.systolic.gemm` and :mod:`repro.systolic.fuse_mapping`
*count* cycles analytically, this module actually executes the dataflows on
a simulated PE grid, cycle by cycle:

* :class:`SystolicArraySim` — output-stationary GEMM.  Operand A streams in
  from the left edge (row ``i`` delayed by ``i`` cycles), operand B from the
  top edge (column ``j`` delayed by ``j`` cycles); every PE multiplies its
  current inputs, accumulates locally, and forwards A rightward / B downward
  each cycle.  After the last partial sum, outputs drain down the columns.

* :meth:`SystolicArraySim.run_conv1d_broadcast` — the paper's modified
  dataflow (§IV-C): each row executes one independent 1D convolution, the
  row's weight enters through the broadcast link (all PEs of a row see the
  same weight in the same cycle), inputs stream along the row systolically,
  outputs stay stationary and then drain.

Both methods return the numerically-exact result *and* the measured cycle
count; the test suite asserts the values match numpy and the cycles match
the analytical model fold-for-fold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..obs import get_registry, get_tracer
from .config import ArrayConfig
from .fuse_mapping import BroadcastFold
from .gemm import FoldShape


@dataclass
class SimResult:
    """Output values and measured cycles of a functional simulation."""

    values: np.ndarray
    cycles: int


#: Observer signature: called once per simulated cycle with the dataflow
#: phase ("gemm" / "broadcast"), the cycle index within the fold, and a
#: dict of state snapshots (copies — safe to keep).
Observer = "Callable[[str, int, dict], None]"


def _record_sim_op(op: str, folds: int, cycles: int) -> None:
    """Count one simulated operation on the default metrics registry."""
    registry = get_registry()
    registry.counter(f"sim.{op}.calls").inc()
    registry.counter(f"sim.{op}.folds").inc(folds)
    registry.counter(f"sim.{op}.cycles").inc(cycles)


class SystolicArraySim:
    """A functional ``rows × cols`` output-stationary systolic array.

    Pass ``observer`` to watch the machine run: it receives per-cycle
    snapshots of the PE-grid state (used by
    ``examples/visualize_dataflow.py`` to animate the dataflows).

    Every ``run_*`` call counts calls/folds/cycles on the default metrics
    registry (``sim.gemm.*``, ``sim.conv1d.*``, …) and shows up as a span
    when the :mod:`repro.obs` tracer is enabled.
    """

    def __init__(self, array: ArrayConfig, observer=None) -> None:
        self.array = array
        self.observer = observer

    # ------------------------------------------------------------------ GEMM

    def run_gemm(self, a: np.ndarray, b: np.ndarray) -> SimResult:
        """Compute ``a @ b`` through the array, tiling into folds as needed."""
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError(f"GEMM shapes disagree: {a.shape} @ {b.shape}")
        out = np.zeros((m, n), dtype=np.result_type(a, b))
        cycles = 0
        folds = 0
        with get_tracer().span("sim.gemm", category="sim", m=m, k=k, n=n) as sp:
            for m0 in range(0, m, self.array.rows):
                r = min(self.array.rows, m - m0)
                for n0 in range(0, n, self.array.cols):
                    c = min(self.array.cols, n - n0)
                    tile, tile_cycles = self._run_gemm_fold(
                        a[m0:m0 + r], b[:, n0:n0 + c]
                    )
                    out[m0:m0 + r, n0:n0 + c] = tile
                    cycles += tile_cycles
                    folds += 1
            sp.set(folds=folds, cycles=cycles)
        _record_sim_op("gemm", folds, cycles)
        return SimResult(values=out, cycles=cycles)

    def _run_gemm_fold(self, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, int]:
        """One fold: ``a`` is ``r×k``, ``b`` is ``k×c``; both fit the array."""
        r, k = a.shape
        _, c = b.shape
        acc = np.zeros((r, c), dtype=np.result_type(a, b))
        # a_reg[i][j]: A value currently held by PE (i, j); likewise b_reg.
        a_reg = np.zeros((r, c), dtype=a.dtype)
        b_reg = np.zeros((r, c), dtype=b.dtype)

        # MAC phase: feed with skew until every PE has seen all k operands.
        # PE (i, j) performs its step-t MAC at cycle i + j + t.
        mac_cycles = (r - 1) + (c - 1) + k
        for t in range(mac_cycles):
            # Shift right/down *before* injecting this cycle's edge values.
            a_reg[:, 1:] = a_reg[:, :-1]
            b_reg[1:, :] = b_reg[:-1, :]
            for i in range(r):  # left edge: row i receives a[i, t - i]
                idx = t - i
                a_reg[i, 0] = a[i, idx] if 0 <= idx < k else 0
            for j in range(c):  # top edge: column j receives b[t - j, j]
                idx = t - j
                b_reg[0, j] = b[idx, j] if 0 <= idx < k else 0
            acc += a_reg * b_reg
            if self.observer is not None:
                self.observer(
                    "gemm", t, {"a": a_reg.copy(), "b": b_reg.copy(), "acc": acc.copy()}
                )

        # Drain phase: stationary outputs ripple down the column links, one
        # row per cycle (r cycles).
        drain_cycles = r
        total = mac_cycles + drain_cycles
        expected = FoldShape(r=r, c=c, k=k).cycles
        assert total == expected, f"fold cycle mismatch: {total} != {expected}"
        return acc, total

    # ------------------------------------------------------------- WS GEMM

    def run_ws_gemm(self, a: np.ndarray, b: np.ndarray) -> SimResult:
        """Compute ``a @ b`` under the weight-stationary dataflow.

        A ``K×N`` tile of B rests in the array (K along rows, N along
        columns; ``r`` preload cycles); the M rows of A stream through with
        per-row skew while partial sums cascade down the columns.  K-tiles
        accumulate in an output buffer outside the array (as the analytical
        model in :mod:`repro.systolic.dataflows` assumes).
        """
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError(f"GEMM shapes disagree: {a.shape} @ {b.shape}")
        out = np.zeros((m, n), dtype=np.result_type(a, b))
        cycles = 0
        folds = 0
        with get_tracer().span("sim.ws_gemm", category="sim", m=m, k=k, n=n) as sp:
            for k0 in range(0, k, self.array.rows):
                r = min(self.array.rows, k - k0)
                for n0 in range(0, n, self.array.cols):
                    c = min(self.array.cols, n - n0)
                    tile, tile_cycles = self._run_ws_fold(
                        a[:, k0:k0 + r], b[k0:k0 + r, n0:n0 + c]
                    )
                    out[:, n0:n0 + c] += tile
                    cycles += tile_cycles
                    folds += 1
            sp.set(folds=folds, cycles=cycles)
        _record_sim_op("ws_gemm", folds, cycles)
        return SimResult(values=out, cycles=cycles)

    def _run_ws_fold(self, a: np.ndarray, w: np.ndarray) -> Tuple[np.ndarray, int]:
        """One WS fold: ``a`` is ``M×r``, stationary ``w`` is ``r×c``."""
        m, r = a.shape
        _, c = w.shape
        out = np.zeros((m, c), dtype=np.result_type(a, w))
        # a_reg[i][j]: streaming operand at PE (i, j); psum[i][j]: the
        # partial sum PE (i, j) just produced (flows down next cycle).
        a_reg = np.zeros((r, c), dtype=a.dtype)
        psum = np.zeros((r, c), dtype=out.dtype)

        preload = r  # weights march down their columns, one row per cycle
        # Vector v's element i enters row i at cycle v + i; after j right
        # hops PE (i, j) uses it at cycle v + i + j, adding to the psum that
        # left PE (i-1, j) the cycle before.  The column output for vector v
        # exits the bottom at cycle v + (r - 1) + j + 1.
        stream_cycles = (m - 1) + (r - 1) + (c - 1) + 1 + 1
        for t in range(stream_cycles):
            # Shift streams right and psums down (before injection).
            a_reg[:, 1:] = a_reg[:, :-1]
            new_top = np.zeros(c, dtype=out.dtype)
            emitted = psum[r - 1, :].copy()
            psum[1:, :] = psum[:-1, :]
            psum[0, :] = new_top
            for i in range(r):
                v = t - i
                a_reg[i, 0] = a[v, i] if 0 <= v < m else 0
            # Each PE adds its product into the psum passing through.
            psum += a_reg * w
            # The value emitted from the bottom of column j at cycle t
            # belongs to vector v = t - (r - 1) - j - 1.
            for j in range(c):
                v = t - (r - 1) - j - 1
                if 0 <= v < m:
                    out[v, j] = emitted[j]
        total = preload + (r - 1) + (c - 1) + m + 1
        assert total == preload + stream_cycles
        return out, total

    # ------------------------------------------------------------- IS GEMM

    def run_is_gemm(self, a: np.ndarray, b: np.ndarray) -> SimResult:
        """Compute ``a @ b`` under the input-stationary dataflow.

        An ``M×K`` tile of A rests in the array (M along rows, K along
        columns; ``r`` preload cycles); the N columns of B stream down the
        columns with per-column skew while partial sums cascade rightward
        along the rows.  K-tiles accumulate in an output buffer outside
        the array, mirroring :meth:`run_ws_gemm`.
        """
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError(f"GEMM shapes disagree: {a.shape} @ {b.shape}")
        out = np.zeros((m, n), dtype=np.result_type(a, b))
        cycles = 0
        folds = 0
        with get_tracer().span("sim.is_gemm", category="sim", m=m, k=k, n=n) as sp:
            for m0 in range(0, m, self.array.rows):
                r = min(self.array.rows, m - m0)
                for k0 in range(0, k, self.array.cols):
                    c = min(self.array.cols, k - k0)
                    tile, tile_cycles = self._run_is_fold(
                        a[m0:m0 + r, k0:k0 + c], b[k0:k0 + c, :]
                    )
                    out[m0:m0 + r, :] += tile
                    cycles += tile_cycles
                    folds += 1
            sp.set(folds=folds, cycles=cycles)
        _record_sim_op("is_gemm", folds, cycles)
        return SimResult(values=out, cycles=cycles)

    def _run_is_fold(self, a_tile: np.ndarray, b_tile: np.ndarray) -> Tuple[np.ndarray, int]:
        """One IS fold: stationary ``a_tile`` is ``r×c``, stream ``b_tile``
        is ``c×N``.

        Column vector n's element j enters column j's top at cycle
        ``n + j`` and reaches row i after ``i`` down-hops; the partial sum
        for (row i, vector n) moves one column right per cycle and exits
        the right edge at cycle ``n + (c-1) + i + 1``.
        """
        r, c = a_tile.shape
        _, n = b_tile.shape
        out = np.zeros((r, n), dtype=np.result_type(a_tile, b_tile))
        b_reg = np.zeros((r, c), dtype=b_tile.dtype)
        psum = np.zeros((r, c), dtype=out.dtype)

        preload = r  # stationary inputs march down their columns
        stream_cycles = (n - 1) + (r - 1) + (c - 1) + 1 + 1
        for t in range(stream_cycles):
            emitted = psum[:, c - 1].copy()
            psum[:, 1:] = psum[:, :-1]
            psum[:, 0] = 0
            b_reg[1:, :] = b_reg[:-1, :]
            for j in range(c):
                v = t - j
                b_reg[0, j] = b_tile[j, v] if 0 <= v < n else 0
            psum += a_tile * b_reg
            for i in range(r):
                v = t - (c - 1) - i - 1
                if 0 <= v < n:
                    out[i, v] = emitted[i]
        total = preload + (r - 1) + (c - 1) + n + 1
        assert total == preload + stream_cycles
        return out, total

    # ------------------------------------------------- broadcast 1D convs

    def run_conv1d_broadcast(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        stride: int = 1,
    ) -> SimResult:
        """Run a bank of independent 1D convolutions with row broadcast.

        Args:
            inputs: ``(G, L_in)`` — one input line per convolution.
            weights: ``(G, K)`` — one 1D filter per convolution.
            stride: stride along the convolution axis (no padding; callers
                pre-pad, as the mapper slices padded feature maps).

        Returns:
            ``(G, L_out)`` outputs with ``L_out = (L_in - K) // stride + 1``.
        """
        if not self.array.broadcast:
            raise ValueError("this array has no broadcast links (§IV-C hardware)")
        g, l_in = inputs.shape
        g2, k = weights.shape
        if g != g2:
            raise ValueError(f"got {g} input lines but {g2} filters")
        l_out = (l_in - k) // stride + 1
        if l_out <= 0:
            raise ValueError(f"1D conv output collapsed: L_in={l_in}, K={k}")

        out = np.zeros((g, l_out), dtype=np.result_type(inputs, weights))
        cycles = 0
        folds = 0
        with get_tracer().span("sim.conv1d", category="sim",
                               convs=g, k=k, stride=stride) as sp:
            for g0 in range(0, g, self.array.rows):
                r = min(self.array.rows, g - g0)
                for l0 in range(0, l_out, self.array.cols):
                    c = min(self.array.cols, l_out - l0)
                    tile, tile_cycles = self._run_broadcast_fold(
                        inputs[g0:g0 + r], weights[g0:g0 + r], stride, l0, c
                    )
                    out[g0:g0 + r, l0:l0 + c] = tile
                    cycles += tile_cycles
                    folds += 1
            sp.set(folds=folds, cycles=cycles)
        _record_sim_op("conv1d", folds, cycles)
        return SimResult(values=out, cycles=cycles)

    def _run_broadcast_fold(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        stride: int,
        out_offset: int,
        c: int,
    ) -> Tuple[np.ndarray, int]:
        """One broadcast fold: ``r`` rows × ``c`` output columns.

        PE (i, j) computes ``sum_t w[i, t] * x[i, (out_offset + j)*s + t]``.
        The input stream of row ``i`` reaches column ``j`` with ``j`` cycles
        of skew; the broadcast link delivers ``w[i, t]`` to the whole row at
        once, so PE (i, j) executes its step-t MAC at cycle ``j + t`` —
        there is no skew along the rows of the array (this is exactly the
        saving over the pure systolic dataflow).
        """
        r, k = weights.shape
        acc = np.zeros((r, c), dtype=np.result_type(inputs, weights))
        mac_cycles = (c - 1) + k
        for cycle in range(mac_cycles):
            active = np.zeros((r, c), dtype=bool)
            for j in range(c):
                t = cycle - j  # local time of column j behind the skew
                if 0 <= t < k:
                    base = (out_offset + j) * stride
                    acc[:, j] += weights[:, t] * inputs[:, base + t]
                    active[:, j] = True
            if self.observer is not None:
                self.observer(
                    "broadcast", cycle, {"acc": acc.copy(), "active": active}
                )
        drain_cycles = r
        total = mac_cycles + drain_cycles
        expected = BroadcastFold(r=r, c=c, k=k, stride=stride).cycles
        assert total == expected, f"broadcast fold mismatch: {total} != {expected}"
        return acc, total


def simulate_gemm(a: np.ndarray, b: np.ndarray, array: ArrayConfig) -> SimResult:
    """Convenience wrapper: output-stationary GEMM through a fresh simulator."""
    return SystolicArraySim(array).run_gemm(a, b)


def simulate_conv1d_bank(
    inputs: np.ndarray, weights: np.ndarray, array: ArrayConfig, stride: int = 1
) -> SimResult:
    """Convenience wrapper: broadcast-dataflow 1D convolution bank."""
    return SystolicArraySim(array).run_conv1d_broadcast(inputs, weights, stride)
