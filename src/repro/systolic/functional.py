"""Functional cycle-level systolic array simulator.

While :mod:`repro.systolic.gemm` and :mod:`repro.systolic.fuse_mapping`
*count* cycles analytically, this module actually executes the dataflows on
a simulated PE grid:

* :class:`SystolicArraySim` — output-stationary GEMM.  Operand A streams in
  from the left edge (row ``i`` delayed by ``i`` cycles), operand B from the
  top edge (column ``j`` delayed by ``j`` cycles); every PE multiplies its
  current inputs, accumulates locally, and forwards A rightward / B downward
  each cycle.  After the last partial sum, outputs drain down the columns.

* :meth:`SystolicArraySim.run_conv1d_broadcast` — the paper's modified
  dataflow (§IV-C): each row executes one independent 1D convolution, the
  row's weight enters through the broadcast link (all PEs of a row see the
  same weight in the same cycle), inputs stream along the row systolically,
  outputs stay stationary and then drain.

Every dataflow exists in two interchangeable **engines**:

* ``engine="reference"`` — the scalar stepper: one Python iteration per
  machine cycle, explicit register shifts and skewed edge injection.  This
  is the machine description, and the only engine that can drive the
  ``observer`` hook (per-cycle state snapshots for visualization).
* ``engine="vector"`` (default) — the wavefront formulation.  The skew
  terms ``i + j + t`` only shift *when* each MAC happens; they never change
  which product a PE sees nor the per-PE accumulation order (``t`` ascends
  at every PE).  So the whole fold collapses to one whole-array rank-1
  update per wavefront step, with the operand streams taken as
  stride-tricks views of A/B — no per-cycle Python loops over rows or
  columns.  The update order replays the reference machine exactly, making
  the two engines **bit-identical** (tested), while the cycle count comes
  from the same closed-form fold models the reference stepper asserts
  against.

Both engines return the numerically-exact result *and* the measured cycle
count; the test suite asserts the values match numpy, the cycles match the
analytical model fold-for-fold, and the engines agree bit-for-bit on
randomized fold shapes (``tests/systolic/test_engines.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..obs import get_registry, get_tracer
from ..ir.packing import PackedMapping
from .config import ArrayConfig
from .fuse_mapping import BroadcastFold
from .gemm import FoldShape

#: Valid values of the ``engine`` knob.
ENGINES = ("vector", "reference")


@dataclass
class SimResult:
    """Output values and measured cycles of a functional simulation."""

    values: np.ndarray
    cycles: int


#: Observer signature: called once per simulated cycle with the dataflow
#: phase ("gemm" / "broadcast"), the cycle index within the fold, and a
#: dict of state snapshots (copies — safe to keep).
Observer = "Callable[[str, int, dict], None]"


def _spans(extent: int, tile: int) -> list:
    """Contiguous ``(start, tiles, size)`` groups when tiling ``extent``.

    The full-size tiles form one group, the remainder (if any) another —
    the same ≤2 distinct shapes per axis that :func:`repro.systolic.gemm.
    _tile_counts` enumerates, but with their array offsets, so the vector
    engine can process every same-shaped fold in one batch of whole-array
    operations.
    """
    full, rem = divmod(extent, tile)
    out = []
    if full:
        out.append((0, full, tile))
    if rem:
        out.append((full * tile, 1, rem))
    return out


def _record_sim_op(op: str, folds: int, cycles: int) -> None:
    """Count one simulated operation on the default metrics registry."""
    registry = get_registry()
    registry.counter(f"sim.{op}.calls").inc()
    registry.counter(f"sim.{op}.folds").inc(folds)
    registry.counter(f"sim.{op}.cycles").inc(cycles)


class SystolicArraySim:
    """A functional ``rows × cols`` output-stationary systolic array.

    Args:
        array: the simulated grid.
        observer: per-cycle state callback (used by
            ``examples/visualize_dataflow.py`` to animate the dataflows).
            Observation needs the scalar stepper, so setting an observer
            forces ``engine="reference"`` regardless of the knob.
        engine: ``"vector"`` (default — vectorized wavefront, see module
            docstring) or ``"reference"`` (scalar per-cycle stepper).

    Every ``run_*`` call counts calls/folds/cycles on the default metrics
    registry (``sim.gemm.*``, ``sim.conv1d.*``, …) and shows up as a span
    when the :mod:`repro.obs` tracer is enabled.
    """

    def __init__(self, array: ArrayConfig, observer=None,
                 engine: str = "vector") -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        self.array = array
        self.observer = observer
        # The observer contract is "called once per simulated cycle" —
        # only the scalar stepper has per-cycle state to show.
        self.engine = "reference" if observer is not None else engine

    # ------------------------------------------------------------------ GEMM

    def run_gemm(self, a: np.ndarray, b: np.ndarray) -> SimResult:
        """Compute ``a @ b`` through the array, tiling into folds as needed."""
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError(f"GEMM shapes disagree: {a.shape} @ {b.shape}")
        out = np.zeros((m, n), dtype=np.result_type(a, b))
        cycles = 0
        folds = 0
        with get_tracer().span("sim.gemm", category="sim", m=m, k=k, n=n,
                               engine=self.engine) as sp:
            if self.engine == "vector":
                cycles, folds = self._run_gemm_vector(a, b, out)
            else:
                for m0 in range(0, m, self.array.rows):
                    r = min(self.array.rows, m - m0)
                    for n0 in range(0, n, self.array.cols):
                        c = min(self.array.cols, n - n0)
                        tile, tile_cycles = self._run_gemm_fold_reference(
                            a[m0:m0 + r], b[:, n0:n0 + c]
                        )
                        out[m0:m0 + r, n0:n0 + c] = tile
                        cycles += tile_cycles
                        folds += 1
            sp.set(folds=folds, cycles=cycles)
        _record_sim_op("gemm", folds, cycles)
        return SimResult(values=out, cycles=cycles)

    def _run_gemm_vector(self, a: np.ndarray, b: np.ndarray,
                         out: np.ndarray) -> Tuple[int, int]:
        """Vectorized wavefront execution of a whole OS GEMM.

        PE ``(i, j)`` of a fold executes its step-``t`` MAC at cycle
        ``i + j + t``: the skew decides *when* products land, never which
        products nor their per-PE order (``t`` ascends everywhere), and
        the idle-edge zero injections of the reference machine add exactly
        ``+0.0``.  So the machine state of *every fold of the same shape*
        can be replayed together: one rank-1 wavefront update per step
        ``t``, batched over all folds of the group — whole-array numpy
        operations only, bit-identical to the scalar stepper (tested).

        Returns ``(cycles, folds)``; fold outputs are scattered into
        ``out`` (each fold owns a disjoint tile, as in the reference).
        """
        m, k = a.shape
        _, n = b.shape
        cycles = 0
        folds = 0
        for m0, rtiles, r in _spans(m, self.array.rows):
            a_grp = a[m0:m0 + rtiles * r].reshape(rtiles, r, k)
            a_steps = a_grp.transpose(2, 0, 1)  # (k, rtiles, r) view
            for n0, ctiles, c in _spans(n, self.array.cols):
                b_steps = b[:, n0:n0 + ctiles * c].reshape(k, ctiles, c)
                acc = np.zeros((rtiles, ctiles, r, c),
                               dtype=np.result_type(a, b))
                for t in range(k):
                    acc += (a_steps[t][:, np.newaxis, :, np.newaxis]
                            * b_steps[t][np.newaxis, :, np.newaxis, :])
                out[m0:m0 + rtiles * r, n0:n0 + ctiles * c] = (
                    acc.transpose(0, 2, 1, 3).reshape(rtiles * r, ctiles * c)
                )
                cycles += rtiles * ctiles * FoldShape(r=r, c=c, k=k).cycles
                folds += rtiles * ctiles
        return cycles, folds

    def _run_gemm_fold_reference(self, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, int]:
        """Scalar stepper for one OS fold (one Python iteration per cycle)."""
        r, k = a.shape
        _, c = b.shape
        acc = np.zeros((r, c), dtype=np.result_type(a, b))
        # a_reg[i][j]: A value currently held by PE (i, j); likewise b_reg.
        a_reg = np.zeros((r, c), dtype=a.dtype)
        b_reg = np.zeros((r, c), dtype=b.dtype)

        # MAC phase: feed with skew until every PE has seen all k operands.
        # PE (i, j) performs its step-t MAC at cycle i + j + t.
        mac_cycles = (r - 1) + (c - 1) + k
        for t in range(mac_cycles):
            # Shift right/down *before* injecting this cycle's edge values.
            a_reg[:, 1:] = a_reg[:, :-1]
            b_reg[1:, :] = b_reg[:-1, :]
            for i in range(r):  # left edge: row i receives a[i, t - i]
                idx = t - i
                a_reg[i, 0] = a[i, idx] if 0 <= idx < k else 0
            for j in range(c):  # top edge: column j receives b[t - j, j]
                idx = t - j
                b_reg[0, j] = b[idx, j] if 0 <= idx < k else 0
            acc += a_reg * b_reg
            if self.observer is not None:
                self.observer(
                    "gemm", t, {"a": a_reg.copy(), "b": b_reg.copy(), "acc": acc.copy()}
                )

        # Drain phase: stationary outputs ripple down the column links, one
        # row per cycle (r cycles).
        drain_cycles = r
        total = mac_cycles + drain_cycles
        expected = FoldShape(r=r, c=c, k=k).cycles
        assert total == expected, f"fold cycle mismatch: {total} != {expected}"
        return acc, total

    # ------------------------------------------------------- packed GEMM

    def run_packed_gemm(self, a: np.ndarray, b: np.ndarray,
                        mapping: PackedMapping) -> SimResult:
        """``a @ b`` on column-combined physical columns (Kung packing).

        Each physical column holds the merged weights of its member
        columns — legal because the members' nonzero row supports are
        disjoint (validated here against the actual ``b``), so every PE
        row slot is owned by at most one member and its product routes to
        that member's accumulator.  Streaming the full K input rows
        therefore computes *all* member outputs in the time of one dense
        column, and the fold schedule tiles ``n_packed`` physical columns
        instead of ``n_orig`` sparse ones.

        Values are produced by the same per-column ``t``-ascending
        wavefront accumulation as :meth:`run_gemm`, so packed output is
        **bit-identical** to the dense run on the same pruned ``b``
        (a member accumulator that receives no product at step ``t``
        matches the dense ``+0.0`` except for the sign of an exactly-zero
        sum, which compares equal).  γ=1 identity mappings reproduce the
        dense schedule cycle-for-cycle.

        Raises ``ValueError`` when ``mapping`` is inconsistent with
        ``b`` — oversized groups, overlapping supports, a live column
        left out, or a dropped column that still has weight.
        """
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError(f"GEMM shapes disagree: {a.shape} @ {b.shape}")
        if mapping.kind != "gemm":
            raise ValueError(f"need a gemm mapping, got {mapping.kind!r}")
        if mapping.k != k or mapping.n_orig != n:
            raise ValueError(
                f"mapping is for a {mapping.k}x{mapping.n_orig} weight "
                f"matrix, got {b.shape}")
        nz = b != 0
        seen = np.zeros(n, dtype=bool)
        for group in mapping.groups:
            if len(group) > mapping.gamma:
                raise ValueError(
                    f"group {group} exceeds gamma={mapping.gamma}")
            for j in group:
                if seen[j]:
                    raise ValueError(f"column {j} appears in two groups")
                seen[j] = True
            if len(group) > 1 and int(nz[:, list(group)].sum(axis=1).max()) > 1:
                raise ValueError(
                    f"group {group} has conflicting nonzero rows — "
                    "weights do not match the packed mapping")
        if nz[:, ~seen].any():
            raise ValueError(
                "dropped columns still hold nonzero weights — "
                "weights do not match the packed mapping")

        out = np.zeros((m, n), dtype=np.result_type(a, b))
        cycles = 0
        folds = 0
        with get_tracer().span("sim.packed_gemm", category="sim", m=m, k=k,
                               n=n, n_packed=mapping.n_packed,
                               engine=self.engine) as sp:
            # Values via the dense wavefront accumulation (bit-identical
            # across engines and to run_gemm); cycles from the packed
            # physical-column tiling.
            self._run_gemm_vector(a, b, out)
            for _, rtiles, r in _spans(m, self.array.rows):
                for _, ctiles, c in _spans(mapping.n_packed, self.array.cols):
                    cycles += rtiles * ctiles * FoldShape(r=r, c=c, k=k).cycles
                    folds += rtiles * ctiles
            sp.set(folds=folds, cycles=cycles)
        _record_sim_op("packed_gemm", folds, cycles)
        return SimResult(values=out, cycles=cycles)

    # ------------------------------------------------------------- WS GEMM

    def run_ws_gemm(self, a: np.ndarray, b: np.ndarray) -> SimResult:
        """Compute ``a @ b`` under the weight-stationary dataflow.

        A ``K×N`` tile of B rests in the array (K along rows, N along
        columns; ``r`` preload cycles); the M rows of A stream through with
        per-row skew while partial sums cascade down the columns.  K-tiles
        accumulate in an output buffer outside the array (as the analytical
        model in :mod:`repro.systolic.dataflows` assumes).
        """
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError(f"GEMM shapes disagree: {a.shape} @ {b.shape}")
        out = np.zeros((m, n), dtype=np.result_type(a, b))
        cycles = 0
        folds = 0
        with get_tracer().span("sim.ws_gemm", category="sim", m=m, k=k, n=n,
                               engine=self.engine) as sp:
            for k0 in range(0, k, self.array.rows):
                r = min(self.array.rows, k - k0)
                for n0 in range(0, n, self.array.cols):
                    c = min(self.array.cols, n - n0)
                    tile, tile_cycles = self._run_ws_fold(
                        a[:, k0:k0 + r], b[k0:k0 + r, n0:n0 + c]
                    )
                    out[:, n0:n0 + c] += tile
                    cycles += tile_cycles
                    folds += 1
            sp.set(folds=folds, cycles=cycles)
        _record_sim_op("ws_gemm", folds, cycles)
        return SimResult(values=out, cycles=cycles)

    def _run_ws_fold(self, a: np.ndarray, w: np.ndarray) -> Tuple[np.ndarray, int]:
        """One WS fold: ``a`` is ``M×r``, stationary ``w`` is ``r×c``."""
        if self.engine == "vector":
            return self._run_ws_fold_vector(a, w)
        return self._run_ws_fold_reference(a, w)

    def _run_ws_fold_vector(self, a: np.ndarray, w: np.ndarray) -> Tuple[np.ndarray, int]:
        """Wavefront formulation of one WS fold.

        The partial sum of stream vector ``v`` cascades *down* its column:
        it picks up the row-``i`` product in ``i``-ascending order at every
        column, whatever the skew.  Rank-1 updates over the ``r`` resident
        rows replay that order exactly.
        """
        m, r = a.shape
        _, c = w.shape
        out = np.zeros((m, c), dtype=np.result_type(a, w))
        for i in range(r):
            out += a[:, i, np.newaxis] * w[np.newaxis, i, :]
        preload = r
        total = preload + (r - 1) + (c - 1) + m + 1
        return out, total

    def _run_ws_fold_reference(self, a: np.ndarray, w: np.ndarray) -> Tuple[np.ndarray, int]:
        """Scalar stepper for one WS fold."""
        m, r = a.shape
        _, c = w.shape
        out = np.zeros((m, c), dtype=np.result_type(a, w))
        # a_reg[i][j]: streaming operand at PE (i, j); psum[i][j]: the
        # partial sum PE (i, j) just produced (flows down next cycle).
        a_reg = np.zeros((r, c), dtype=a.dtype)
        psum = np.zeros((r, c), dtype=out.dtype)

        preload = r  # weights march down their columns, one row per cycle
        # Vector v's element i enters row i at cycle v + i; after j right
        # hops PE (i, j) uses it at cycle v + i + j, adding to the psum that
        # left PE (i-1, j) the cycle before.  The column output for vector v
        # exits the bottom at cycle v + (r - 1) + j + 1.
        stream_cycles = (m - 1) + (r - 1) + (c - 1) + 1 + 1
        for t in range(stream_cycles):
            # Shift streams right and psums down (before injection).
            a_reg[:, 1:] = a_reg[:, :-1]
            new_top = np.zeros(c, dtype=out.dtype)
            emitted = psum[r - 1, :].copy()
            psum[1:, :] = psum[:-1, :]
            psum[0, :] = new_top
            for i in range(r):
                v = t - i
                a_reg[i, 0] = a[v, i] if 0 <= v < m else 0
            # Each PE adds its product into the psum passing through.
            psum += a_reg * w
            # The value emitted from the bottom of column j at cycle t
            # belongs to vector v = t - (r - 1) - j - 1.
            for j in range(c):
                v = t - (r - 1) - j - 1
                if 0 <= v < m:
                    out[v, j] = emitted[j]
        total = preload + (r - 1) + (c - 1) + m + 1
        assert total == preload + stream_cycles
        return out, total

    # ------------------------------------------------------------- IS GEMM

    def run_is_gemm(self, a: np.ndarray, b: np.ndarray) -> SimResult:
        """Compute ``a @ b`` under the input-stationary dataflow.

        An ``M×K`` tile of A rests in the array (M along rows, K along
        columns; ``r`` preload cycles); the N columns of B stream down the
        columns with per-column skew while partial sums cascade rightward
        along the rows.  K-tiles accumulate in an output buffer outside
        the array, mirroring :meth:`run_ws_gemm`.
        """
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError(f"GEMM shapes disagree: {a.shape} @ {b.shape}")
        out = np.zeros((m, n), dtype=np.result_type(a, b))
        cycles = 0
        folds = 0
        with get_tracer().span("sim.is_gemm", category="sim", m=m, k=k, n=n,
                               engine=self.engine) as sp:
            for m0 in range(0, m, self.array.rows):
                r = min(self.array.rows, m - m0)
                for k0 in range(0, k, self.array.cols):
                    c = min(self.array.cols, k - k0)
                    tile, tile_cycles = self._run_is_fold(
                        a[m0:m0 + r, k0:k0 + c], b[k0:k0 + c, :]
                    )
                    out[m0:m0 + r, :] += tile
                    cycles += tile_cycles
                    folds += 1
            sp.set(folds=folds, cycles=cycles)
        _record_sim_op("is_gemm", folds, cycles)
        return SimResult(values=out, cycles=cycles)

    def _run_is_fold(self, a_tile: np.ndarray, b_tile: np.ndarray) -> Tuple[np.ndarray, int]:
        if self.engine == "vector":
            return self._run_is_fold_vector(a_tile, b_tile)
        return self._run_is_fold_reference(a_tile, b_tile)

    def _run_is_fold_vector(self, a_tile: np.ndarray, b_tile: np.ndarray) -> Tuple[np.ndarray, int]:
        """Wavefront formulation of one IS fold.

        Partial sums cascade *rightward*: every output picks up its
        column-``j`` product in ``j``-ascending order, so rank-1 updates
        over the ``c`` resident columns replay the stepper exactly.
        """
        r, c = a_tile.shape
        _, n = b_tile.shape
        out = np.zeros((r, n), dtype=np.result_type(a_tile, b_tile))
        for j in range(c):
            out += a_tile[:, j, np.newaxis] * b_tile[j, np.newaxis, :]
        preload = r
        total = preload + (r - 1) + (c - 1) + n + 1
        return out, total

    def _run_is_fold_reference(self, a_tile: np.ndarray, b_tile: np.ndarray) -> Tuple[np.ndarray, int]:
        """One IS fold: stationary ``a_tile`` is ``r×c``, stream ``b_tile``
        is ``c×N``.

        Column vector n's element j enters column j's top at cycle
        ``n + j`` and reaches row i after ``i`` down-hops; the partial sum
        for (row i, vector n) moves one column right per cycle and exits
        the right edge at cycle ``n + (c-1) + i + 1``.
        """
        r, c = a_tile.shape
        _, n = b_tile.shape
        out = np.zeros((r, n), dtype=np.result_type(a_tile, b_tile))
        b_reg = np.zeros((r, c), dtype=b_tile.dtype)
        psum = np.zeros((r, c), dtype=out.dtype)

        preload = r  # stationary inputs march down their columns
        stream_cycles = (n - 1) + (r - 1) + (c - 1) + 1 + 1
        for t in range(stream_cycles):
            emitted = psum[:, c - 1].copy()
            psum[:, 1:] = psum[:, :-1]
            psum[:, 0] = 0
            b_reg[1:, :] = b_reg[:-1, :]
            for j in range(c):
                v = t - j
                b_reg[0, j] = b_tile[j, v] if 0 <= v < n else 0
            psum += a_tile * b_reg
            for i in range(r):
                v = t - (c - 1) - i - 1
                if 0 <= v < n:
                    out[i, v] = emitted[i]
        total = preload + (r - 1) + (c - 1) + n + 1
        assert total == preload + stream_cycles
        return out, total

    # ------------------------------------------------- broadcast 1D convs

    def run_conv1d_broadcast(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        stride: int = 1,
    ) -> SimResult:
        """Run a bank of independent 1D convolutions with row broadcast.

        Args:
            inputs: ``(G, L_in)`` — one input line per convolution.
            weights: ``(G, K)`` — one 1D filter per convolution.
            stride: stride along the convolution axis (no padding; callers
                pre-pad, as the mapper slices padded feature maps).

        Returns:
            ``(G, L_out)`` outputs with ``L_out = (L_in - K) // stride + 1``.
        """
        if not self.array.broadcast:
            raise ValueError("this array has no broadcast links (§IV-C hardware)")
        g, l_in = inputs.shape
        g2, k = weights.shape
        if g != g2:
            raise ValueError(f"got {g} input lines but {g2} filters")
        l_out = (l_in - k) // stride + 1
        if l_out <= 0:
            raise ValueError(f"1D conv output collapsed: L_in={l_in}, K={k}")

        out = np.zeros((g, l_out), dtype=np.result_type(inputs, weights))
        cycles = 0
        folds = 0
        with get_tracer().span("sim.conv1d", category="sim",
                               convs=g, k=k, stride=stride,
                               engine=self.engine) as sp:
            if self.engine == "vector":
                cycles, folds = self._run_conv1d_vector(
                    inputs, weights, stride, out
                )
            else:
                for g0 in range(0, g, self.array.rows):
                    r = min(self.array.rows, g - g0)
                    for l0 in range(0, l_out, self.array.cols):
                        c = min(self.array.cols, l_out - l0)
                        tile, tile_cycles = self._run_broadcast_fold_reference(
                            inputs[g0:g0 + r], weights[g0:g0 + r],
                            stride, l0, c
                        )
                        out[g0:g0 + r, l0:l0 + c] = tile
                        cycles += tile_cycles
                        folds += 1
            sp.set(folds=folds, cycles=cycles)
        _record_sim_op("conv1d", folds, cycles)
        return SimResult(values=out, cycles=cycles)

    def _run_conv1d_vector(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        stride: int,
        out: np.ndarray,
    ) -> Tuple[int, int]:
        """Vectorized wavefront execution of a whole conv1d bank.

        The input stream of PE ``(i, j)`` of a fold is the stride-tricks
        tap view ``taps[i, j, t] = inputs[i, (l0 + j)·stride + t]`` — the
        column-``j`` skew only delays when tap ``t`` arrives, never which
        value it is, and the broadcast link hands every PE of row ``i``
        weight ``w[i, t]`` at step ``t``.  One rank-1 update per broadcast
        step, batched over all same-shaped folds, replays the per-PE
        ``t``-ascending accumulation of the stepper exactly.
        """
        g, _ = inputs.shape
        _, k = weights.shape
        _, l_out = out.shape
        cycles = 0
        folds = 0
        s0, s1 = inputs.strides
        for g0, gtiles, r in _spans(g, self.array.rows):
            w_grp = weights[g0:g0 + gtiles * r].reshape(gtiles, r, k)
            w_steps = w_grp.transpose(2, 0, 1)  # (k, gtiles, r) view
            for l0, ctiles, c in _spans(l_out, self.array.cols):
                # taps[gt, i, ct, j, t] = inputs[g0 + gt*r + i,
                #                                (l0 + ct*c + j)*stride + t]
                window = inputs[g0:, l0 * stride:]
                taps = np.lib.stride_tricks.as_strided(
                    window,
                    shape=(gtiles, r, ctiles, c, k),
                    strides=(r * s0, s0, c * stride * s1, stride * s1, s1),
                    writeable=False,
                )
                tap_steps = taps.transpose(4, 0, 1, 2, 3)
                acc = np.zeros((gtiles, r, ctiles, c),
                               dtype=np.result_type(inputs, weights))
                for t in range(k):
                    acc += (w_steps[t][:, :, np.newaxis, np.newaxis]
                            * tap_steps[t])
                out[g0:g0 + gtiles * r, l0:l0 + ctiles * c] = (
                    acc.reshape(gtiles * r, ctiles * c)
                )
                fold_cycles = BroadcastFold(r=r, c=c, k=k, stride=stride).cycles
                cycles += gtiles * ctiles * fold_cycles
                folds += gtiles * ctiles
        return cycles, folds

    def run_conv1d_packed(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        stride: int,
        taps,
    ) -> SimResult:
        """A broadcast conv1d bank streaming only the live ``taps``.

        The packed FuSe schedule groups channels with identical tap
        support (see :func:`repro.ir.packing.pack_fuse1d`): a fold may
        skip a weight cycle only when *every* resident row's tap is zero
        there, which holds by construction within a group.  The broadcast
        link then delivers ``len(taps)`` weights instead of ``K``, and
        each PE's input window gathers the matching tap offsets.

        ``inputs`` are the full ``(G, L_in)`` lines and ``weights`` the
        full ``(G, K)`` filters — weights outside ``taps`` must be zero
        (validated), and the output length is still derived from the full
        ``K`` window.  Per-PE accumulation visits live taps in ascending
        order, so values equal the dense bank's on the same pruned
        filters (the dense run's skipped terms are exact ``+0.0`` adds).
        """
        if not self.array.broadcast:
            raise ValueError(
                "this array has no broadcast links (§IV-C hardware)")
        g, l_in = inputs.shape
        g2, k = weights.shape
        if g != g2:
            raise ValueError(f"got {g} input lines but {g2} filters")
        taps = tuple(int(t) for t in taps)
        if not taps:
            raise ValueError("taps must name at least one live weight")
        if list(taps) != sorted(set(taps)) or taps[0] < 0 or taps[-1] >= k:
            raise ValueError(
                f"taps must be strictly increasing within [0, {k}), "
                f"got {taps}")
        dead = np.delete(weights, taps, axis=1)
        if dead.size and np.any(dead):
            raise ValueError(
                "filters hold nonzero weights outside the live taps — "
                "weights do not match the packed mapping")
        l_out = (l_in - k) // stride + 1
        if l_out <= 0:
            raise ValueError(f"1D conv output collapsed: L_in={l_in}, K={k}")
        kt = len(taps)
        w_live = np.ascontiguousarray(weights[:, list(taps)])
        # gathered[i, j, t] = inputs[i, j*stride + taps[t]]
        gather_idx = (np.arange(l_out) * stride)[:, np.newaxis] \
            + np.asarray(taps)[np.newaxis, :]
        gathered = inputs[:, gather_idx]  # (G, L_out, kt)
        out = np.zeros((g, l_out), dtype=np.result_type(inputs, weights))
        cycles = 0
        folds = 0
        with get_tracer().span("sim.conv1d_packed", category="sim",
                               convs=g, k=k, live_taps=kt, stride=stride,
                               engine=self.engine) as sp:
            for t in range(kt):
                out += w_live[:, t, np.newaxis] * gathered[:, :, t]
            for _, gtiles, r in _spans(g, self.array.rows):
                for _, ctiles, c in _spans(l_out, self.array.cols):
                    fold_cycles = BroadcastFold(
                        r=r, c=c, k=kt, stride=stride).cycles
                    cycles += gtiles * ctiles * fold_cycles
                    folds += gtiles * ctiles
            sp.set(folds=folds, cycles=cycles)
        _record_sim_op("conv1d_packed", folds, cycles)
        return SimResult(values=out, cycles=cycles)

    def _run_broadcast_fold_reference(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        stride: int,
        out_offset: int,
        c: int,
    ) -> Tuple[np.ndarray, int]:
        """One broadcast fold: ``r`` rows × ``c`` output columns.

        PE (i, j) computes ``sum_t w[i, t] * x[i, (out_offset + j)*s + t]``.
        The input stream of row ``i`` reaches column ``j`` with ``j`` cycles
        of skew; the broadcast link delivers ``w[i, t]`` to the whole row at
        once, so PE (i, j) executes its step-t MAC at cycle ``j + t`` —
        there is no skew along the rows of the array (this is exactly the
        saving over the pure systolic dataflow).
        """
        r, k = weights.shape
        acc = np.zeros((r, c), dtype=np.result_type(inputs, weights))
        mac_cycles = (c - 1) + k
        for cycle in range(mac_cycles):
            active = np.zeros((r, c), dtype=bool)
            for j in range(c):
                t = cycle - j  # local time of column j behind the skew
                if 0 <= t < k:
                    base = (out_offset + j) * stride
                    acc[:, j] += weights[:, t] * inputs[:, base + t]
                    active[:, j] = True
            if self.observer is not None:
                self.observer(
                    "broadcast", cycle, {"acc": acc.copy(), "active": active}
                )
        drain_cycles = r
        total = mac_cycles + drain_cycles
        expected = BroadcastFold(r=r, c=c, k=k, stride=stride).cycles
        assert total == expected, f"broadcast fold mismatch: {total} != {expected}"
        return acc, total


def simulate_gemm(
    a: np.ndarray, b: np.ndarray, array: ArrayConfig, engine: str = "vector"
) -> SimResult:
    """Convenience wrapper: output-stationary GEMM through a fresh simulator."""
    return SystolicArraySim(array, engine=engine).run_gemm(a, b)


def simulate_conv1d_bank(
    inputs: np.ndarray,
    weights: np.ndarray,
    array: ArrayConfig,
    stride: int = 1,
    engine: str = "vector",
) -> SimResult:
    """Convenience wrapper: broadcast-dataflow 1D convolution bank."""
    return SystolicArraySim(array, engine=engine).run_conv1d_broadcast(
        inputs, weights, stride
    )
