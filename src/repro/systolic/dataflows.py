"""Alternative GEMM dataflows: weight-stationary and input-stationary.

The paper evaluates the output-stationary (OS) dataflow only ("we only
consider the output stationary dataflow", §V-A.3).  This module extends
the simulator with the other two classic dataflows so the choice can be
ablated — and so the depthwise pathology can be shown to be dataflow-
independent (its single-filter GEMMs starve every mapping).

Accounting (mirroring SCALE-Sim's WS/IS models):

* **WS** — a ``K×N`` weight tile rests in the array (``r`` preload
  cycles); the ``M`` rows of A stream through; partial sums flow down and
  out.  Fold cost ``r + (r - 1) + (c - 1) + m + 1``; folds =
  ``ceil(K/R)·ceil(N/C)``.  Accumulation across K-tiles happens in an
  output buffer outside the array.
* **IS** — an ``M×K`` input tile rests in the array; the ``N`` columns of
  B stream through.  Symmetric cost with ``n`` streaming steps; folds =
  ``ceil(M/R)·ceil(K/C)``.

Both return the same :class:`repro.systolic.gemm.MappingStats` structure
as the OS model, so every downstream report works unchanged.
"""

from __future__ import annotations

from .config import ArrayConfig
from .gemm import GemmDims, MappingStats


def _stationary_stats(
    folds_rows: int,
    rows_rem: int,
    folds_cols: int,
    cols_rem: int,
    stream: int,
    array: ArrayConfig,
    stationary_reads_per_pe: int = 1,
) -> MappingStats:
    """Shared accounting for the two stationary dataflows.

    A fold with ``r×c`` resident PEs and ``stream`` streaming vectors costs
    ``r`` preload cycles + ``(r - 1) + (c - 1)`` skew + ``stream`` MAC
    cycles + 1 drain step for the last partial sum to exit.
    """
    stats = MappingStats()
    for r, nr in ((array.rows, folds_rows), (rows_rem, 1 if rows_rem else 0)):
        if nr == 0 or r == 0:
            continue
        for c, nc in ((array.cols, folds_cols), (cols_rem, 1 if cols_rem else 0)):
            if nc == 0 or c == 0:
                continue
            count = nr * nc
            cycles = r + (r - 1) + (c - 1) + stream + 1
            stats.cycles += count * cycles
            stats.folds += count
            stats.active_mac_cycles += count * r * c * stream
            stats.occupied_pe_cycles += count * cycles * array.num_pes
            # Preload r*c stationary values; stream r values per step.
            stats.sram_reads += count * (r * c * stationary_reads_per_pe + r * stream)
            stats.sram_writes += count * c * stream
    return stats


def ws_gemm_stats(dims: GemmDims, array: ArrayConfig) -> MappingStats:
    """Weight-stationary GEMM: K along rows, N along columns, stream M."""
    kf, kr = divmod(dims.k, array.rows)
    nf, nr = divmod(dims.n, array.cols)
    return _stationary_stats(kf, kr, nf, nr, dims.m, array)


def is_gemm_stats(dims: GemmDims, array: ArrayConfig) -> MappingStats:
    """Input-stationary GEMM: M along rows, K along columns, stream N."""
    mf, mr = divmod(dims.m, array.rows)
    kf, kr = divmod(dims.k, array.cols)
    return _stationary_stats(mf, mr, kf, kr, dims.n, array)


def gemm_stats(dims: GemmDims, array: ArrayConfig) -> MappingStats:
    """Dispatch a GEMM to the array's configured dataflow."""
    from .gemm import os_gemm_stats

    if array.dataflow == "os":
        return os_gemm_stats(dims, array)
    if array.dataflow == "ws":
        return ws_gemm_stats(dims, array)
    if array.dataflow == "is":
        return is_gemm_stats(dims, array)
    raise ValueError(f"unknown dataflow {array.dataflow!r}")
