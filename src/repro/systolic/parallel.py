"""Process-pool fan-out with deterministic merging and metrics capture.

The sweeps this repo runs — Table I speed-ups, the Fig. 8 latency/scaling
curves, D-knob ablations, and functional :class:`~repro.systolic.executor.
ArrayNetworkExecutor` runs — are embarrassingly parallel at the network /
layer / channel-chunk level, but numpy releases the GIL only inside single
kernels, so threads don't help the Python-heavy parts.  This module wraps
:class:`concurrent.futures.ProcessPoolExecutor` with the three properties
every caller here needs:

* **Determinism** — :func:`scatter` returns results in *input order*, no
  matter which worker finished first, so parallel sweeps are byte-identical
  to ``jobs=1`` runs.
* **Metrics round-trip** — each task runs under a fresh
  :class:`~repro.obs.MetricsRegistry` (installed via
  :func:`repro.obs.set_registry`); the snapshot travels back with the
  result and is folded into the parent registry with
  :meth:`~repro.obs.MetricsRegistry.merge_dict`, so ``--metrics-out``
  sidecars look the same whether the work ran in-process or fanned out.
* **Graceful degradation** — ``jobs=1`` (or a single task) bypasses the
  pool entirely and runs inline, which keeps tracing (spans don't cross
  process boundaries), observers, debuggers and coverage working.

Worker functions must be module-level (picklable); on Linux the pool forks,
so numpy arrays in closed-over state are shared copy-on-write.

A fourth property was added with the robustness work (``docs/
robustness.md``): **resurrection**.  A worker process dying (OOM killer,
segfault in a C extension, an injected ``parallel.worker`` kill) breaks
the whole ``ProcessPoolExecutor``; by default :func:`scatter` detects the
``BrokenProcessPool``, rebuilds the pool, and re-dispatches exactly the
tasks whose results had not yet been consumed — input order and thus
byte-determinism of the merged results are preserved (results of a
resurrected run equal a clean run; only worker-side metric snapshots of
the lost in-flight tasks are recomputed rather than double-merged).
``resilient=False`` (or ``$REPRO_POOL_RESILIENT=0``) keeps the
fail-fast behavior, now with an actionable error message.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple

from ..faults import inject
from ..obs import MetricsRegistry, get_logger, get_registry, set_registry

__all__ = ["default_jobs", "resolve_jobs", "scatter", "shutdown_pool"]

#: Environment knob consulted when ``jobs`` is not given explicitly.
JOBS_ENV = "REPRO_JOBS"

#: Set to ``0`` to disable pool resurrection (fail fast on worker death).
RESILIENT_ENV = "REPRO_POOL_RESILIENT"

_log = get_logger("systolic.parallel")


def _default_resilient() -> bool:
    return os.environ.get(RESILIENT_ENV, "1") != "0"


def default_jobs() -> int:
    """Worker count when the caller passes ``jobs=None``.

    ``$REPRO_JOBS`` if set (``0`` meaning "all cores"), else 1 — parallelism
    is opt-in so that plain test runs and traced/observed sessions stay
    single-process.
    """
    raw = os.environ.get(JOBS_ENV)
    if raw is None:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(f"${JOBS_ENV} must be an integer, got {raw!r}")
    return resolve_jobs(jobs)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: ``None`` → env/default, ``0`` → cores."""
    if jobs is None:
        return default_jobs()
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


#: Cached pool, reused across :func:`scatter` calls: an executor fanning
#: out dozens of layers must not pay a pool spawn per layer.  Keyed by the
#: worker count it was built with; a request for *more* workers rebuilds it.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_JOBS = 0


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_JOBS
    if _POOL is None or _POOL_JOBS < jobs:
        shutdown_pool()
        _POOL = ProcessPoolExecutor(max_workers=jobs)
        _POOL_JOBS = jobs
    return _POOL


def shutdown_pool() -> None:
    """Tear down the cached worker pool (idempotent).

    Registered via :mod:`atexit`; call explicitly to reclaim workers early
    or to force the next :func:`scatter` to fork fresh processes (e.g.
    after mutating module-level state workers inherited on fork).
    """
    global _POOL, _POOL_JOBS
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
        _POOL_JOBS = 0


atexit.register(shutdown_pool)


def _call_with_registry(fn: Callable, task) -> Tuple[object, dict]:
    """Run one task under a fresh metrics registry; ship its snapshot back."""
    # Fault point for chaos/tests: a ``kill`` spec here exits the worker
    # process mid-task, breaking the pool.  Forked workers inherit the
    # parent's installed plan (each child gets its own firing counters).
    inject("parallel.worker")
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        result = fn(task)
    finally:
        set_registry(previous)
    return result, registry.to_dict()


def scatter(
    fn: Callable,
    tasks: Sequence,
    jobs: Optional[int] = None,
    merge_metrics: bool = True,
    resilient: Optional[bool] = None,
    max_resurrections: int = 2,
) -> List[object]:
    """Map ``fn`` over ``tasks`` across a process pool, deterministically.

    Args:
        fn: a *module-level* callable of one argument (pickled to workers).
        tasks: the work items; results come back in this exact order.
        jobs: worker processes. ``None`` → :func:`default_jobs`, ``0`` →
            all cores, ``1`` → run inline (no pool, no pickling).
        merge_metrics: fold each worker's metrics snapshot into the parent
            registry (see module docstring).  Inline runs record into the
            parent registry directly, so the flag only matters for pools.
        resilient: rebuild the pool and re-dispatch unfinished tasks when
            a worker process dies (see module docstring).  ``None`` reads
            ``$REPRO_POOL_RESILIENT`` (default on).
        max_resurrections: pool rebuilds allowed per :func:`scatter` call
            before the failure is re-raised as persistent.

    Returns:
        ``[fn(t) for t in tasks]`` — same values, same order, whatever the
        completion order of the workers was.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(t) for t in tasks]
    if resilient is None:
        resilient = _default_resilient()

    registry = get_registry()
    results: List[object] = []
    resurrections = 0
    while True:
        remaining = tasks[len(results):]
        pool = _get_pool(min(jobs, len(remaining)))
        try:
            # Executor.map preserves input order regardless of completion
            # order; consuming in order means ``results`` is always an
            # exact prefix of ``tasks``, which is what makes re-dispatching
            # ``tasks[len(results):]`` after a pool loss correct.
            for result, snapshot in pool.map(
                _call_with_registry, [fn] * len(remaining), remaining
            ):
                if merge_metrics:
                    registry.merge_dict(snapshot)
                results.append(result)
            return results
        except BrokenProcessPool as exc:
            shutdown_pool()  # the executor is unusable; drop it
            if not resilient:
                raise RuntimeError(
                    f"a worker process died while running {len(tasks)} "
                    f"task(s) ({len(results)} completed) — likely an OOM "
                    "kill or a crash in a C extension. Re-run with fewer "
                    f"jobs (jobs={jobs} now), more memory, or jobs=1 to "
                    "debug inline; or leave resurrection enabled "
                    f"(${RESILIENT_ENV} unset) to retry automatically."
                ) from exc
            if resurrections >= max_resurrections:
                raise RuntimeError(
                    f"worker pool died {resurrections + 1} times during one "
                    f"scatter ({len(results)}/{len(tasks)} tasks done) — "
                    "the failure looks persistent, not transient. Run with "
                    "jobs=1 to reproduce inline."
                ) from exc
            resurrections += 1
            registry.counter("resilience.pool_resurrections").inc()
            _log.warning(
                "worker pool died; resurrecting",
                done=len(results), total=len(tasks),
                resurrection=resurrections,
            )
