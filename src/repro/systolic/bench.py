"""Engine comparison harness: reference stepper vs vectorized wavefront.

Times the same workloads through both :class:`SystolicArraySim` engines,
checks byte-exact agreement (values *and* cycle counts), and reports the
speedup per dataflow.  Used three ways:

* ``python -m repro.systolic.bench --size 32 --out results.json`` — ad-hoc
  measurement with a JSON report;
* ``--min-speedup N`` turns it into a regression gate (non-zero exit when
  any workload's speedup drops below ``N``; see ``make bench-smoke``);
* :func:`compare_engines` is imported by ``benchmarks/bench_simulator_micro.py``
  to record the speedup into its results sidecar.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from .config import ArrayConfig
from .functional import SystolicArraySim


def _best_time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time in seconds (min is noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _workloads(size: int, seed: int) -> Dict[str, Callable[[SystolicArraySim], object]]:
    """One representative multi-fold problem per dataflow.

    Shapes are non-multiples of the array size on purpose so both full
    and remainder fold groups are exercised.
    """
    rng = np.random.default_rng(seed)
    m, k, n = 3 * size + 5, 2 * size + 3, 2 * size + 7
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    g, l_in, kernel = 2 * size + 9, 4 * size + 2, 3
    lines = rng.standard_normal((g, l_in))
    filters = rng.standard_normal((g, kernel))
    return {
        "os_gemm": lambda sim: sim.run_gemm(a, b),
        "ws_gemm": lambda sim: sim.run_ws_gemm(a, b),
        "is_gemm": lambda sim: sim.run_is_gemm(a, b),
        "conv1d_broadcast": lambda sim: sim.run_conv1d_broadcast(
            lines, filters, stride=1
        ),
    }


def compare_engines(
    size: int = 32,
    repeats: int = 3,
    seed: int = 0,
    array: Optional[ArrayConfig] = None,
) -> Dict[str, object]:
    """Time reference vs vector engines on every dataflow.

    Returns a JSON-ready report::

        {"array": {"rows": R, "cols": C},
         "workloads": {name: {"reference_s": ..., "vector_s": ...,
                              "speedup": ..., "exact_match": true,
                              "cycles": ...}, ...},
         "min_speedup": <worst workload>}
    """
    if array is None:
        array = ArrayConfig.square(size, broadcast=True)
    reference = SystolicArraySim(array, engine="reference")
    vector = SystolicArraySim(array, engine="vector")
    report: Dict[str, object] = {
        "array": {"rows": array.rows, "cols": array.cols},
        "repeats": repeats,
        "workloads": {},
    }
    speedups = []
    for name, run in _workloads(size, seed).items():
        ref_result = run(reference)
        vec_result = run(vector)
        exact = (
            ref_result.values.tobytes() == vec_result.values.tobytes()
            and ref_result.cycles == vec_result.cycles
        )
        ref_s = _best_time(lambda: run(reference), repeats)
        vec_s = _best_time(lambda: run(vector), repeats)
        ratio = ref_s / vec_s if vec_s > 0 else float("inf")
        speedups.append(ratio)
        report["workloads"][name] = {
            "reference_s": ref_s,
            "vector_s": vec_s,
            "speedup": ratio,
            "exact_match": exact,
            "cycles": vec_result.cycles,
        }
    report["min_speedup"] = min(speedups)
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable table of a :func:`compare_engines` report."""
    arr = report["array"]
    lines = [
        f"engine comparison on a {arr['rows']}x{arr['cols']} array "
        f"(best of {report['repeats']}):",
        f"{'workload':<18} {'reference':>11} {'vector':>11} "
        f"{'speedup':>8}  exact",
    ]
    for name, row in report["workloads"].items():
        lines.append(
            f"{name:<18} {row['reference_s'] * 1e3:>9.2f}ms "
            f"{row['vector_s'] * 1e3:>9.2f}ms "
            f"{row['speedup']:>7.1f}x  {'yes' if row['exact_match'] else 'NO'}"
        )
    lines.append(f"minimum speedup: {report['min_speedup']:.1f}x")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare the reference and vector simulator engines"
    )
    parser.add_argument("--size", type=int, default=32,
                        help="array side length (default 32)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best is kept (default 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit 1 if any workload speeds up less than this")
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    report = compare_engines(size=args.size, repeats=args.repeats,
                             seed=args.seed)
    print(format_report(report))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.out}")

    mismatched = [name for name, row in report["workloads"].items()
                  if not row["exact_match"]]
    if mismatched:
        print(f"FAIL: engines disagree on {', '.join(mismatched)}",
              file=sys.stderr)
        return 1
    if report["min_speedup"] < args.min_speedup:
        print(
            f"FAIL: minimum speedup {report['min_speedup']:.1f}x is below "
            f"the {args.min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
