"""Run an entire network through the functional PE-grid simulator.

This is the reproduction's strongest internal consistency check: the same
IR graph is executed twice —

* numerically, by :class:`repro.nn.graph.GraphExecutor` (vectorized numpy);
* on the simulated machine, by :class:`ArrayNetworkExecutor` below, which
  lowers each compute layer to array operations and pushes *real values*
  through :class:`repro.systolic.functional.SystolicArraySim`, using the
  exact weights of the GraphExecutor —

and the claims under test are (1) the array produces the same numbers and
(2) the cycles it takes equal :func:`repro.systolic.latency.estimate_layer`
for every layer.  Intended for small networks (the functional simulator is
a Python-loop machine); the test suite runs it on MobileNet-style blocks.

Host-side layers (BatchNorm, activations, pooling, plumbing) execute on
the "CPU" exactly as the latency model assumes (they contribute no array
cycles, §V-A.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.reference import im2col, pad_input
from ..ir import layer as ir
from ..ir.network import Network
from ..ir.packing import NetworkPacking
from ..nn.graph import GraphExecutor
from ..nn.tensor import Tensor
from ..obs import get_logger, get_registry, get_tracer
from .config import ArrayConfig
from .functional import SystolicArraySim
from .latency import estimate_layer
from .parallel import resolve_jobs, scatter

_log = get_logger("systolic.executor")


def _tile_chunks(extent: int, tile: int, parts: int) -> List[tuple]:
    """Split ``extent`` into ≤ ``parts`` contiguous ``(start, stop)`` chunks
    whose boundaries fall on multiples of ``tile``.

    Fold shapes are decided by how an axis divides into ``tile``-sized
    spans, so cutting only at tile boundaries guarantees a chunked run
    produces the exact same folds (values *and* cycles) as the unchunked
    one — the remainder span stays intact inside the last chunk.
    """
    ntiles = -(-extent // tile)
    parts = max(1, min(parts, ntiles))
    bounds = [round(i * ntiles / parts) for i in range(parts + 1)]
    return [
        (bounds[i] * tile, min(bounds[i + 1] * tile, extent))
        for i in range(parts)
        if bounds[i] < bounds[i + 1]
    ]


def _gemm_chunk_worker(task):
    """Run one row-chunk of a GEMM in a worker process."""
    array, engine, a, b = task
    run = SystolicArraySim(array, engine=engine).run_gemm(a, b)
    return run.values, run.cycles


def _conv1d_chunk_worker(task):
    """Run one line-chunk of a broadcast conv1d bank in a worker process."""
    array, engine, lines, weights, stride = task
    run = SystolicArraySim(array, engine=engine).run_conv1d_broadcast(
        lines, weights, stride
    )
    return run.values, run.cycles


def _depthwise_chunk_worker(task):
    """Lower and run a chunk of depthwise channels in a worker process."""
    array, engine, x_chunk, w_chunk, kernel_hw, stride_hw, padding = task
    sim = SystolicArraySim(array, engine=engine)
    outs = []
    cycles = 0
    for ch in range(x_chunk.shape[0]):
        cols = im2col(x_chunk[ch:ch + 1], kernel_hw, stride_hw, padding)
        run = sim.run_gemm(cols, w_chunk[ch].reshape(-1, 1))
        outs.append(run.values.reshape(-1))
        cycles += run.cycles
    return np.stack(outs), cycles


@dataclass
class LayerRun:
    """Per-layer record of an array execution."""

    name: str
    kind: str
    cycles: int
    expected_cycles: int
    utilization: float = 0.0

    @property
    def consistent(self) -> bool:
        return self.cycles == self.expected_cycles


@dataclass
class ArrayRunResult:
    """Output of a full-network array execution."""

    values: np.ndarray
    cycles: int
    layers: List[LayerRun] = field(default_factory=list)

    @property
    def all_cycles_consistent(self) -> bool:
        return all(layer.consistent for layer in self.layers)


class ArrayNetworkExecutor:
    """Execute an IR network on the functional systolic array.

    Args:
        network: the IR graph.
        model: a :class:`GraphExecutor` holding the weights (built with
            ``seed`` if omitted).  The model is switched to eval mode —
            BatchNorm uses running statistics, as at inference.
        array: the simulated array (defaults to a small 16×16 — functional
            simulation is slow on big grids).
        engine: simulator engine (``"vector"`` default / ``"reference"``),
            forwarded to :class:`SystolicArraySim`.
        jobs: fan heavy layers (depthwise channel chunks, FuSe line banks,
            large GEMMs) across this many worker processes via
            :mod:`repro.systolic.parallel`.  ``None`` → ``$REPRO_JOBS`` or
            1; ``0`` → all cores.  Chunk boundaries are always multiples
            of ``array.rows``, so fold shapes — and therefore values and
            cycle counts — are identical to the single-process run.
        packing: a :class:`~repro.ir.packing.NetworkPacking` from the
            sparse compile pipeline.  Covered layers execute their
            column-combined schedule (packed GEMM columns, per-channel
            live-tap depthwise, tap-grouped FuSe banks); the model's
            weights must already be pruned to match (see
            :func:`repro.nn.passes.apply_pruning`) — mismatches raise.
            Packed layers always run single-process.
    """

    def __init__(
        self,
        network: Network,
        model: Optional[GraphExecutor] = None,
        array: Optional[ArrayConfig] = None,
        seed: int = 0,
        engine: str = "vector",
        jobs: Optional[int] = None,
        packing: Optional[NetworkPacking] = None,
    ) -> None:
        self.network = network
        self.model = model or GraphExecutor(network, seed=seed)
        self.model.eval()
        self.array = array or ArrayConfig.square(16)
        self.engine = engine
        self.jobs = resolve_jobs(jobs)
        self.packing = packing
        self.sim = SystolicArraySim(self.array, engine=engine)

    # ------------------------------------------------------------------ run

    def run(self, x: np.ndarray) -> ArrayRunResult:
        """Execute one ``(C, H, W)`` input through the simulated array."""
        if x.ndim != 3:
            raise ValueError(f"expected a (C, H, W) input, got shape {x.shape}")
        outputs: Dict[str, np.ndarray] = {}
        result = ArrayRunResult(values=x, cycles=0)
        current = x
        registry = get_registry()
        tracer = get_tracer()
        active_macs = 0
        occupied = 0
        with tracer.span("executor.network", category="executor",
                         network=self.network.name) as net_span:
            for node in self.network:
                inputs = [outputs[name] for name in node.inputs] or [x]
                packed = None if self.packing is None \
                    else self.packing.get(node.name)
                with tracer.span("executor.layer", category="executor",
                                 layer=node.name, kind=node.kind) as sp:
                    current, cycles = self._run_node(node, inputs, packed)
                    sp.set(cycles=cycles)
                outputs[node.name] = current
                if cycles:
                    expected = estimate_layer(node, self.array,
                                              packed=packed)
                    run = LayerRun(
                        name=node.name,
                        kind=node.kind,
                        cycles=cycles,
                        expected_cycles=expected.cycles,
                        utilization=expected.utilization,
                    )
                    result.layers.append(run)
                    result.cycles += cycles
                    active_macs += expected.stats.active_mac_cycles
                    occupied += cycles * self.array.num_pes
                    registry.counter(
                        "executor.layer.cycles",
                        network=self.network.name, layer=node.name,
                    ).inc(cycles)
                    if not run.consistent:
                        registry.counter("executor.cycle_mismatch").inc()
                        _log.warning(
                            "measured cycles diverge from the analytical model",
                            layer=node.name, measured=cycles,
                            expected=expected.cycles,
                        )
            net_span.set(cycles=result.cycles)
        registry.counter("executor.runs", network=self.network.name).inc()
        registry.gauge("executor.network.cycles", network=self.network.name).set(
            result.cycles
        )
        registry.gauge("executor.pe_utilization", network=self.network.name).set(
            active_macs / occupied if occupied else 0.0
        )
        result.values = current
        return result

    # ---------------------------------------------------------- array layers

    def _run_node(self, node, inputs, packed=None):
        spec = node.layer
        x = inputs[0]
        if isinstance(spec, ir.Conv2D):
            return self._conv(node, x, packed)
        if isinstance(spec, ir.DepthwiseConv2D):
            return self._depthwise(node, x, packed)
        if isinstance(spec, ir.PointwiseConv2D):
            return self._pointwise(node, x, packed)
        if isinstance(spec, ir.FuSeConv1D):
            return self._fuse(node, x, packed)
        if isinstance(spec, ir.Linear):
            return self._linear(node, x, packed)
        if isinstance(spec, ir.SqueezeExcite):
            return self._squeeze_excite(node, x)
        return self._host(node, inputs), 0

    def _weights(self, name: str) -> np.ndarray:
        return self.model.module_for(name).weight.data.astype(np.float64)

    def _gemm(self, a: np.ndarray, b: np.ndarray):
        """``a @ b`` through the array, row-chunked across workers.

        Chunks split the M axis at multiples of ``array.rows`` only
        (see :func:`_tile_chunks`), so values and cycles match the
        unchunked run exactly.
        """
        m = a.shape[0]
        if self.jobs > 1 and m > self.array.rows:
            chunks = _tile_chunks(m, self.array.rows, self.jobs)
            if len(chunks) > 1:
                tasks = [
                    (self.array, self.engine, a[s:e], b) for s, e in chunks
                ]
                parts = scatter(_gemm_chunk_worker, tasks, jobs=self.jobs)
                values = np.concatenate([v for v, _ in parts], axis=0)
                return values, sum(cyc for _, cyc in parts)
        run = self.sim.run_gemm(a, b)
        return run.values, run.cycles

    def _conv1d_bank(self, lines: np.ndarray, weights: np.ndarray, stride: int):
        """A broadcast conv1d bank, line-chunked across workers."""
        g = lines.shape[0]
        if self.jobs > 1 and g > self.array.rows:
            chunks = _tile_chunks(g, self.array.rows, self.jobs)
            if len(chunks) > 1:
                tasks = [
                    (self.array, self.engine, lines[s:e], weights[s:e], stride)
                    for s, e in chunks
                ]
                parts = scatter(_conv1d_chunk_worker, tasks, jobs=self.jobs)
                values = np.concatenate([v for v, _ in parts], axis=0)
                return values, sum(cyc for _, cyc in parts)
        run = self.sim.run_conv1d_broadcast(lines, weights, stride)
        return run.values, run.cycles

    def _conv(self, node, x, packed=None):
        spec = node.layer
        w = self._weights(node.name)
        c_out, oh, ow = node.out_shape
        g = spec.groups
        c_in = node.in_shape[0]
        if packed is not None:
            if g != 1:
                raise ValueError(
                    f"packed mapping on grouped conv {node.name!r}")
            cols = im2col(x.astype(np.float64), spec.kernel_hw,
                          spec.stride_hw, spec.padding)
            run = self.sim.run_packed_gemm(
                cols, w.reshape(c_out, -1).T, packed)
            return run.values.T.reshape(c_out, oh, ow), run.cycles
        cycles = 0
        out = np.empty((c_out, oh, ow))
        cg_in, cg_out = c_in // g, c_out // g
        for gi in range(g):
            cols = im2col(
                x[gi * cg_in:(gi + 1) * cg_in].astype(np.float64),
                spec.kernel_hw, spec.stride_hw, spec.padding,
            )
            wmat = w[gi * cg_out:(gi + 1) * cg_out].reshape(cg_out, -1)
            values, gemm_cycles = self._gemm(cols, wmat.T)
            out[gi * cg_out:(gi + 1) * cg_out] = values.T.reshape(cg_out, oh, ow)
            cycles += gemm_cycles
        return out, cycles

    def _depthwise(self, node, x, packed=None):
        spec = node.layer
        w = self._weights(node.name)  # (C, 1, kh, kw)
        c, oh, ow = node.out_shape
        if packed is not None:
            # Per-channel live-tap schedule: each channel streams only the
            # rows of its single-column GEMM whose weights survived the
            # prune; all-zero channels produce zeros with no array cycles.
            out = np.zeros((c, oh, ow))
            cycles = 0
            for ch in range(c):
                wflat = w[ch].reshape(-1)
                ke = packed.k_eff[ch]
                if ke == packed.k:
                    # Identity schedule (γ=1 keeps the full window): run
                    # the dense single-column GEMM, zeros and all.
                    cols = im2col(
                        x[ch:ch + 1].astype(np.float64),
                        spec.kernel_hw, spec.stride_hw, spec.padding,
                    )
                    run = self.sim.run_gemm(cols, wflat.reshape(-1, 1))
                    out[ch] = run.values.reshape(oh, ow)
                    cycles += run.cycles
                    continue
                support = np.flatnonzero(wflat)
                if len(support) != ke:
                    raise ValueError(
                        f"depthwise packing of {node.name!r} expects "
                        f"{ke} live taps on channel {ch}, weights have "
                        f"{len(support)} — run apply_pruning with the "
                        f"matching transform first")
                if not len(support):
                    continue
                cols = im2col(
                    x[ch:ch + 1].astype(np.float64),
                    spec.kernel_hw, spec.stride_hw, spec.padding,
                )
                run = self.sim.run_gemm(
                    np.ascontiguousarray(cols[:, support]),
                    wflat[support].reshape(-1, 1),
                )
                out[ch] = run.values.reshape(oh, ow)
                cycles += run.cycles
            return out, cycles
        if self.jobs > 1 and c > 1:
            # Channels are independent single-column GEMMs — any chunking
            # preserves the per-channel fold structure.
            parts = min(self.jobs, c)
            bounds = [round(i * c / parts) for i in range(parts + 1)]
            tasks = [
                (self.array, self.engine,
                 x[bounds[i]:bounds[i + 1]].astype(np.float64),
                 w[bounds[i]:bounds[i + 1]],
                 spec.kernel_hw, spec.stride_hw, spec.padding)
                for i in range(parts)
            ]
            results = scatter(_depthwise_chunk_worker, tasks, jobs=self.jobs)
            out = np.concatenate([v for v, _ in results], axis=0)
            return out.reshape(c, oh, ow), sum(cyc for _, cyc in results)
        out = np.empty((c, oh, ow))
        cycles = 0
        for ch in range(c):
            cols = im2col(
                x[ch:ch + 1].astype(np.float64),
                spec.kernel_hw, spec.stride_hw, spec.padding,
            )
            run = self.sim.run_gemm(cols, w[ch].reshape(-1, 1))
            out[ch] = run.values.reshape(oh, ow)
            cycles += run.cycles
        return out, cycles

    def _pointwise(self, node, x, packed=None):
        w = self._weights(node.name)  # (C_out, C_in, 1, 1)
        c_in, h, width = x.shape
        a = x.reshape(c_in, h * width).T.astype(np.float64)
        b = w.reshape(w.shape[0], c_in).T
        if packed is not None:
            run = self.sim.run_packed_gemm(a, b, packed)
            return run.values.T.reshape(w.shape[0], h, width), run.cycles
        values, cycles = self._gemm(a, b)
        return values.T.reshape(w.shape[0], h, width), cycles

    def _fuse(self, node, x, packed=None):
        spec = node.layer
        w = self._weights(node.name)  # (C, K)
        c, oh, ow = node.out_shape
        sh, sw = spec.stride_hw
        xp = pad_input(x.astype(np.float64), spec.kernel_hw, spec.stride_hw, spec.padding)
        if packed is not None:
            return self._fuse_packed(node, spec, w, xp, packed)
        if spec.axis == "row":
            # Lines: every (channel, selected row); conv along the width.
            lines = xp[:, ::sh, :].reshape(c * oh, xp.shape[2])
            weights = np.repeat(w, oh, axis=0)
            values, cycles = self._conv1d_bank(lines, weights, stride=sw)
            out = values.reshape(c, oh, ow)
        else:
            lines = xp[:, :, ::sw].transpose(0, 2, 1).reshape(c * ow, xp.shape[1])
            weights = np.repeat(w, ow, axis=0)
            values, cycles = self._conv1d_bank(lines, weights, stride=sh)
            out = values.reshape(c, ow, oh).transpose(0, 2, 1)
        return out, cycles

    def _fuse_packed(self, node, spec, w, xp, packed):
        """Tap-grouped FuSe banks: one broadcast bank per identical tap
        support, streaming only the live taps; channels outside every group
        (fully pruned) produce zero rows with no array cycles."""
        c, oh, ow = node.out_shape
        sh, sw = spec.stride_hw
        out = np.zeros((c, oh, ow))
        cycles = 0
        covered: set = set()
        for taps, chans in packed.tap_groups:
            covered.update(chans)
            chans = list(chans)
            if spec.axis == "row":
                lines = xp[chans][:, ::sh, :].reshape(len(chans) * oh,
                                                      xp.shape[2])
                weights = np.repeat(w[chans], oh, axis=0)
                run = self.sim.run_conv1d_packed(lines, weights,
                                                 stride=sw, taps=taps)
                out[chans] = run.values.reshape(len(chans), oh, ow)
            else:
                lines = xp[chans][:, :, ::sw].transpose(0, 2, 1) \
                    .reshape(len(chans) * ow, xp.shape[1])
                weights = np.repeat(w[chans], ow, axis=0)
                run = self.sim.run_conv1d_packed(lines, weights,
                                                 stride=sh, taps=taps)
                out[chans] = run.values.reshape(len(chans), ow, oh) \
                    .transpose(0, 2, 1)
            cycles += run.cycles
        dropped = [ch for ch in range(c) if ch not in covered]
        if dropped and np.any(w[dropped]):
            raise ValueError(
                f"fuse1d packing of {node.name!r} drops channels with "
                f"nonzero weights — run apply_pruning with the matching "
                f"transform first")
        return out, cycles

    def _linear(self, node, x, packed=None):
        module = self.model.module_for(node.name)
        w = module.weight.data.astype(np.float64)
        a = x.reshape(1, -1).astype(np.float64)
        if packed is not None:
            run = self.sim.run_packed_gemm(a, w.T, packed)
        else:
            run = self.sim.run_gemm(a, w.T)
        out = run.values.reshape(-1)
        if module.bias is not None:
            out = out + module.bias.data
        return out.reshape(node.out_shape), run.cycles

    def _squeeze_excite(self, node, x):
        module = self.model.module_for(node.name)
        squeezed = x.mean(axis=(1, 2)).reshape(1, -1).astype(np.float64)
        run1 = self.sim.run_gemm(squeezed, module.fc1.weight.data.T.astype(np.float64))
        hidden = np.maximum(run1.values + module.fc1.bias.data, 0.0)
        run2 = self.sim.run_gemm(hidden, module.fc2.weight.data.T.astype(np.float64))
        raw = run2.values.reshape(-1) + module.fc2.bias.data
        scale = np.clip(raw + 3.0, 0.0, 6.0) / 6.0  # h-sigmoid
        return x * scale[:, None, None], run1.cycles + run2.cycles

    # ------------------------------------------------------------ host ops

    def _host(self, node, inputs) -> np.ndarray:
        """Non-array layers run on the host via the GraphExecutor modules."""
        tensors = [Tensor(np.asarray(v, dtype=np.float32)[None]) for v in inputs]
        out = self.model._run_node(node, tensors)
        return out.data[0].astype(np.float64)
