"""Network latency estimation on a systolic array (the paper's §V-A.3 model).

Adds up, per layer, the cycles to load operands, compute MACs, communicate
partials systolically and flush outputs — nothing else (no cache model, no
DRAM stalls), exactly the simplification the paper adopts from SCALE-Sim.

Entry points:

* :func:`estimate_layer` — one layer on one array;
* :func:`estimate_network` — whole network, with per-node, per-operator-class
  and per-block breakdowns (feeding Table I, Fig. 8a/b/c).

Observability: :func:`mapping_stats` results are memoized on
``(layer, shapes, array, batch)`` — design sweeps and Table I re-estimate
the same depthwise shapes constantly — with ``latency.cache.hit`` /
``latency.cache.miss`` counters on the default registry.  With the tracer
enabled (``--trace-out``) the cache is bypassed so every network estimate
emits its full ``network → layer → fold`` span tree.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.counting import op_class
from ..ir.layer import LayerSpec, Shape
from ..ir.network import Network, Node
from ..ir.packing import NetworkPacking, PackedMapping
from ..obs import get_registry, get_tracer
from .config import ArrayConfig
from .fuse_mapping import (
    Conv1DBank,
    broadcast_conv1d_stats,
    fallback_conv1d_gemms,
)
from .gemm import MappingStats
from .im2col import lower_layer, lower_packed_layer


@dataclass
class LayerLatency:
    """Latency result for one node."""

    name: str
    kind: str
    op_class: str
    block: str
    stats: MappingStats

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def utilization(self) -> float:
        return self.stats.utilization


@dataclass
class NetworkLatency:
    """Latency result for a whole network."""

    network: str
    array: ArrayConfig
    layers: List[LayerLatency] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_ms(self) -> float:
        return self.array.cycles_to_ms(self.total_cycles)

    def cycles_by_class(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for layer in self.layers:
            out[layer.op_class] = out.get(layer.op_class, 0) + layer.cycles
        return out

    def cycles_by_block(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for layer in self.layers:
            key = layer.block or layer.name
            out[key] = out.get(key, 0) + layer.cycles
        return out

    def class_fractions(self) -> Dict[str, float]:
        """Latency distribution over operator classes (Fig. 8c)."""
        total = self.total_cycles
        if total == 0:
            return {}
        return {k: v / total for k, v in self.cycles_by_class().items()}

    @property
    def mean_utilization(self) -> float:
        """MAC-cycle-weighted PE utilization across the network."""
        active = sum(l.stats.active_mac_cycles for l in self.layers)
        occupied = sum(l.stats.occupied_pe_cycles for l in self.layers)
        return active / occupied if occupied else 0.0


#: Memo for :func:`mapping_stats` (bounded; cleared wholesale when full).
#: Guarded by ``_STATS_LOCK``: server worker threads estimate concurrently
#: (see ``repro.serve``), and dict reads racing a wholesale ``clear()``
#: are not something to rely on even under the GIL.
_STATS_CACHE: Dict[Tuple, MappingStats] = {}
_STATS_CACHE_MAX = 8192
_STATS_LOCK = threading.Lock()


def clear_mapping_cache() -> None:
    """Drop the memoized :func:`mapping_stats` results (thread-safe)."""
    with _STATS_LOCK:
        _STATS_CACHE.clear()


def mapping_cache_info() -> Dict[str, float]:
    """Introspection: current size and lifetime hit/miss counts of the memo.

    Counts come from the default metrics registry (``latency.cache.hit`` /
    ``latency.cache.miss``), so they also land in ``--metrics-out``
    sidecars.  Safe to call while server workers are estimating.
    """
    registry = get_registry()
    hit = registry.get("latency.cache.hit")
    miss = registry.get("latency.cache.miss")
    with _STATS_LOCK:
        size = len(_STATS_CACHE)
    return {
        "size": size,
        "max_size": _STATS_CACHE_MAX,
        "hits": hit.value if hit else 0.0,
        "misses": miss.value if miss else 0.0,
    }


def _cache_key(layer: LayerSpec, in_shape: Shape, out_shape: Shape,
               array: ArrayConfig, batch: int,
               packed: Optional[PackedMapping]) -> Tuple:
    """Memo key over every cycle-relevant degree of freedom.

    The :class:`ArrayConfig` fields are spelled out one by one so that a
    field added to the config later *must* be classified here: everything
    that changes fold shapes or cycle counts (rows, cols, broadcast link,
    dataflow, fold pipelining) is part of the key; ``frequency_mhz`` is
    deliberately excluded — it only rescales cycles to milliseconds after
    the fact, so two arrays differing only in clock share an entry.
    ``datawidth`` is likewise excluded: 8- and 16-bit PEs run the same
    fold schedule, the width only changes area/power/energy (see
    :mod:`repro.hw`).

    ``packed`` (the frozen, fully-tuple-valued
    :class:`~repro.ir.packing.PackedMapping`, or ``None`` for dense) is
    part of the key: two estimates of the same layer spec with different
    packings produce different fold schedules and must never share an
    entry — the layer spec alone carries no sparsity information.
    """
    return (
        layer, in_shape, out_shape, batch,
        array.rows, array.cols, array.broadcast,
        array.dataflow, array.pipelined_folds,
        packed,
    )


def mapping_stats(layer: LayerSpec, in_shape: Shape, out_shape: Shape,
                  array: ArrayConfig, batch: int = 1,
                  packed: Optional[PackedMapping] = None) -> MappingStats:
    """Array cycle/utilization stats for one layer spec (memoized).

    ``packed`` maps the layer onto combined physical columns (see
    :func:`repro.systolic.im2col.lower_packed_layer`); ``None`` is the
    dense schedule.
    """
    from collections import Counter

    tracer = get_tracer()
    key: Optional[Tuple] = None
    if not tracer.enabled:
        # Tracing bypasses the memo so every estimate emits fold spans.
        try:
            key = _cache_key(layer, in_shape, out_shape, array, batch,
                             packed)
            with _STATS_LOCK:
                cached = _STATS_CACHE.get(key)
        except TypeError:  # unhashable layer spec: skip the cache
            key = None
        else:
            registry = get_registry()
            if cached is not None:
                registry.counter("latency.cache.hit").inc()
                return cached.copy()
            registry.counter("latency.cache.miss").inc()

    if packed is None:
        lowered = lower_layer(layer, in_shape, out_shape, batch)
    else:
        lowered = lower_packed_layer(layer, in_shape, out_shape, batch,
                                     packed)
    total = MappingStats()
    from .dataflows import gemm_stats

    # Depthwise layers lower to C identical GEMMs — compute each distinct
    # operation once and scale.
    # repr(op) is only worth computing when a span will record it.
    describe = repr if tracer.enabled else (lambda op: "")
    for op, count in Counter(lowered.ops).items():
        if isinstance(op, Conv1DBank):
            with tracer.span("broadcast.fold", category="latency",
                             op=describe(op), repeats=count) as sp:
                if array.broadcast:
                    op_stats = broadcast_conv1d_stats(op, array)
                else:
                    # Without the proposed link, 1D convs degrade to the
                    # single-column im2col mapping (§III-B).
                    op_stats = MappingStats()
                    for dims, n in Counter(fallback_conv1d_gemms(op)).items():
                        op_stats.merge(_scaled(gemm_stats(dims, array), n))
                sp.set(folds=op_stats.folds * count, cycles=op_stats.cycles * count)
        else:
            with tracer.span("gemm.fold", category="latency",
                             op=describe(op), repeats=count) as sp:
                op_stats = gemm_stats(op, array)
                sp.set(folds=op_stats.folds * count, cycles=op_stats.cycles * count)
        total.merge(_scaled(op_stats, count))

    if key is not None:
        with _STATS_LOCK:
            if len(_STATS_CACHE) >= _STATS_CACHE_MAX:
                _STATS_CACHE.clear()
            # Store a private copy: callers may merge() into the returned stats.
            _STATS_CACHE[key] = total.copy()
            size = len(_STATS_CACHE)
        get_registry().gauge("latency.cache.size").set(size)
    return total


def _scaled(stats: MappingStats, count: int) -> MappingStats:
    """Stats for ``count`` sequential repetitions of the same operation."""
    if count == 1:
        return stats
    return MappingStats(
        cycles=stats.cycles * count,
        folds=stats.folds * count,
        active_mac_cycles=stats.active_mac_cycles * count,
        occupied_pe_cycles=stats.occupied_pe_cycles * count,
        sram_reads=stats.sram_reads * count,
        sram_writes=stats.sram_writes * count,
    )


def estimate_layer(node: Node, array: ArrayConfig, batch: int = 1,
                   packed: Optional[PackedMapping] = None) -> LayerLatency:
    """Latency of one placed node (``packed``: its column-combined map)."""
    with get_tracer().span("layer.estimate", category="latency",
                           layer=node.name, kind=node.kind) as sp:
        result = LayerLatency(
            name=node.name,
            kind=node.kind,
            op_class=op_class(node.layer),
            block=node.block,
            stats=mapping_stats(node.layer, node.in_shape, node.out_shape,
                                array, batch, packed),
        )
        sp.set(cycles=result.cycles, folds=result.stats.folds)
    return result


def estimate_network(
    network: Network,
    array: Optional[ArrayConfig] = None,
    batch: int = 1,
    packing: Optional[NetworkPacking] = None,
) -> NetworkLatency:
    """Latency of a whole network; ``array`` defaults to the paper's 64×64.

    ``batch > 1`` estimates one pass over a batch (throughput studies);
    the paper's Table I numbers are batch 1.  ``packing`` (from the
    sparse compile pipeline, ``plan.packing``) switches every layer it
    covers to its packed schedule; uncovered layers stay dense.
    """
    if array is None:
        from .config import PAPER_ARRAY

        array = PAPER_ARRAY
    registry = get_registry()
    result = NetworkLatency(network=network.name, array=array)
    with get_tracer().span("network.estimate", category="latency",
                           network=network.name,
                           array=f"{array.rows}x{array.cols}") as sp:
        for node in network:
            packed = None if packing is None else packing.get(node.name)
            layer_latency = estimate_layer(node, array, batch, packed)
            if layer_latency.stats.cycles:
                result.layers.append(layer_latency)
                registry.counter(
                    "latency.layer.cycles",
                    network=network.name, layer=node.name,
                ).inc(layer_latency.cycles)
                registry.counter(
                    "latency.layer.folds",
                    network=network.name, layer=node.name,
                ).inc(layer_latency.stats.folds)
        sp.set(cycles=result.total_cycles)
    registry.counter("latency.network.estimates", network=network.name).inc()
    registry.gauge("latency.network.cycles", network=network.name).set(
        result.total_cycles
    )
    registry.gauge("latency.network.pe_utilization", network=network.name).set(
        result.mean_utilization
    )
    return result


def speedup(baseline: NetworkLatency, variant: NetworkLatency) -> float:
    """Baseline-over-variant cycle ratio (Table I "Speedup" column)."""
    if variant.total_cycles == 0:
        raise ZeroDivisionError("variant network has no modeled compute")
    return baseline.total_cycles / variant.total_cycles
