"""SRAM / DRAM traffic accounting for layers mapped onto the array.

The latency model (§V-A.3) assumes edge buffers always feed the array; this
module quantifies what that assumption costs: how many values stream from
SRAM (including im2col duplication), how many unique values must come from
DRAM, and the resulting reuse factor per layer.  Useful for the ablation
discussion — depthwise convolution is not only slow, it also re-reads
inputs with *zero* reuse across the array (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ir.counting import op_class
from ..ir.network import Network, Node
from .config import ArrayConfig, PAPER_ARRAY
from .latency import mapping_stats

#: The paper uses FP16 weights and activations (§V-A.2).
BYTES_PER_VALUE = 2


@dataclass(frozen=True)
class LayerTraffic:
    """Traffic accounting for one node."""

    name: str
    kind: str
    op_class: str
    sram_reads: int
    sram_writes: int
    unique_inputs: int
    unique_weights: int
    unique_outputs: int

    @property
    def dram_bytes(self) -> int:
        """Bytes moved if every unique value crosses DRAM exactly once."""
        return BYTES_PER_VALUE * (
            self.unique_inputs + self.unique_weights + self.unique_outputs
        )

    @property
    def sram_bytes(self) -> int:
        return BYTES_PER_VALUE * (self.sram_reads + self.sram_writes)

    @property
    def read_amplification(self) -> float:
        """SRAM reads per unique operand value (≥ 1; 1 = perfect reuse)."""
        unique = self.unique_inputs + self.unique_weights
        return self.sram_reads / unique if unique else 0.0


@dataclass
class TrafficReport:
    """Traffic accounting for a whole network."""

    network: str
    array: ArrayConfig
    layers: List[LayerTraffic]

    @property
    def total_sram_reads(self) -> int:
        return sum(l.sram_reads for l in self.layers)

    @property
    def total_sram_writes(self) -> int:
        return sum(l.sram_writes for l in self.layers)

    @property
    def total_dram_bytes(self) -> int:
        return sum(l.dram_bytes for l in self.layers)

    @property
    def mean_read_amplification(self) -> float:
        unique = sum(l.unique_inputs + l.unique_weights for l in self.layers)
        return self.total_sram_reads / unique if unique else 0.0


def layer_traffic(node: Node, array: ArrayConfig) -> Optional[LayerTraffic]:
    """Traffic for one node, or None for layers with no array compute."""
    stats = mapping_stats(node.layer, node.in_shape, node.out_shape, array)
    if stats.cycles == 0:
        return None
    c_in, h_in, w_in = node.in_shape
    c_out, h_out, w_out = node.out_shape
    return LayerTraffic(
        name=node.name,
        kind=node.kind,
        op_class=op_class(node.layer),
        sram_reads=stats.sram_reads,
        sram_writes=stats.sram_writes,
        unique_inputs=c_in * h_in * w_in,
        unique_weights=node.params(),
        unique_outputs=c_out * h_out * w_out,
    )


def traffic_report(network: Network, array: Optional[ArrayConfig] = None) -> TrafficReport:
    """Per-layer traffic for a whole network (default array: the paper's 64×64)."""
    array = array or PAPER_ARRAY
    layers = []
    for node in network:
        row = layer_traffic(node, array)
        if row is not None:
            layers.append(row)
    return TrafficReport(network=network.name, array=array, layers=layers)
