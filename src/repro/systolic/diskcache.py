"""On-disk memo cache for analytical :func:`estimate_network` results.

Sweeps re-estimate the same (network, array) pairs constantly — every CLI
invocation of ``table1`` recomputes five networks × five variants, and the
Fig. 8(d) size sweep multiplies that by six array sizes.  The analytical
model is deterministic, so those results can be memoized *across
processes*: this module keys a JSON snapshot of the per-layer
:class:`~repro.systolic.gemm.MappingStats` on a SHA-256 fingerprint of

* the full serialized network graph (``repro.ir.serialize.network_to_dict``
  — layer specs, shapes, wiring), and
* every cycle-relevant :class:`~repro.systolic.ArrayConfig` field plus the
  batch size.

Any change to the network transform, the array, or the serialization
format changes the fingerprint, so stale entries are never *returned* —
they just age out when the directory is deleted.  Entries are written
atomically (``os.replace`` of a same-directory temp file), so concurrent
sweep workers can share one cache directory; hits and misses are counted
as ``latency.diskcache.hit`` / ``latency.diskcache.miss`` on the default
metrics registry (visible via ``repro ... --metrics-out``).

The cache stores *estimates only* (analytical model output), never
functional simulation values.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from ..faults import should_fire
from ..ir.network import Network
from ..ir.packing import NetworkPacking
from ..ir.serialize import network_to_dict
from ..obs import get_logger, get_registry
from .config import ArrayConfig
from .gemm import MappingStats
from .latency import LayerLatency, NetworkLatency, estimate_network

_log = get_logger("systolic.diskcache")

#: Bump when the payload layout below changes: old entries miss, not break.
CACHE_FORMAT = 1


def cache_key(network: Network, array: ArrayConfig, batch: int = 1,
              packing: Optional[NetworkPacking] = None) -> str:
    """SHA-256 fingerprint of one (network, array, batch, packing) estimate.

    The layer specs in the serialized graph carry no sparsity, so a
    packed estimate MUST fold the packing's own fingerprint into the key
    — otherwise a pruned network's cycles would be served for its dense
    twin (and vice versa).  Dense keys are unchanged from earlier cache
    formats: the field is only added when a packing is present.
    """
    payload = {
        "format": CACHE_FORMAT,
        "network": network_to_dict(network),
        # Cycle-relevant fields only: frequency_mhz rescales afterwards
        # and datawidth changes silicon cost, not the fold schedule.
        "array": {
            "rows": array.rows,
            "cols": array.cols,
            "broadcast": array.broadcast,
            "dataflow": array.dataflow,
            "pipelined_folds": array.pipelined_folds,
        },
        "batch": batch,
    }
    if packing is not None:
        payload["packing"] = packing.fingerprint()
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _entry_path(cache_dir: Path, key: str) -> Path:
    # Two-level fan-out keeps directory listings sane on big sweeps.
    return cache_dir / key[:2] / f"{key}.json"


def _layer_to_dict(layer: LayerLatency) -> dict:
    s = layer.stats
    return {
        "name": layer.name,
        "kind": layer.kind,
        "op_class": layer.op_class,
        "block": layer.block,
        "stats": {
            "cycles": s.cycles,
            "folds": s.folds,
            "active_mac_cycles": s.active_mac_cycles,
            "occupied_pe_cycles": s.occupied_pe_cycles,
            "sram_reads": s.sram_reads,
            "sram_writes": s.sram_writes,
        },
    }


def _layer_from_dict(entry: dict) -> LayerLatency:
    return LayerLatency(
        name=entry["name"],
        kind=entry["kind"],
        op_class=entry["op_class"],
        block=entry["block"],
        stats=MappingStats(**entry["stats"]),
    )


def estimate_network_cached(
    network: Network,
    array: Optional[ArrayConfig] = None,
    batch: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    packing: Optional[NetworkPacking] = None,
) -> NetworkLatency:
    """:func:`estimate_network`, memoized on disk under ``cache_dir``.

    With ``cache_dir=None`` this is exactly :func:`estimate_network`.
    A corrupt or unreadable entry is treated as a miss and rewritten.
    Note the returned latency carries the *caller's* ``array`` (the
    fingerprint guarantees it matches the cycle-relevant fields; only
    ``frequency_mhz``, which scales ms after the fact, may differ).
    ``packing`` estimates the column-combined schedule and is part of
    the disk key.
    """
    if array is None:
        from .config import PAPER_ARRAY

        array = PAPER_ARRAY
    if cache_dir is None:
        return estimate_network(network, array, batch, packing)

    cache_dir = Path(cache_dir)
    registry = get_registry()
    key = cache_key(network, array, batch, packing)
    path = _entry_path(cache_dir, key)
    try:
        entry = json.loads(path.read_text())
        result = NetworkLatency(
            network=entry["network"],
            array=array,
            layers=[_layer_from_dict(e) for e in entry["layers"]],
        )
    except FileNotFoundError:
        pass  # plain miss: nothing cached yet
    except (OSError, ValueError, KeyError, TypeError) as exc:
        # The entry *exists* but cannot be decoded — a torn write from a
        # killed process, disk corruption, or an injected fault.  Degrade
        # to a miss (and rewrite below), but leave an audit trail.
        registry.counter("faults.diskcache.corrupt").inc()
        _log.warning("corrupt disk cache entry; treating as miss",
                     path=str(path), error=f"{type(exc).__name__}: {exc}")
    else:
        registry.counter("latency.diskcache.hit").inc()
        return result

    registry.counter("latency.diskcache.miss").inc()
    result = estimate_network(network, array, batch, packing)
    _write_entry(path, result)
    return result


def _write_entry(path: Path, result: NetworkLatency) -> None:
    payload = {
        "format": CACHE_FORMAT,
        "network": result.network,
        "layers": [_layer_to_dict(layer) for layer in result.layers],
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                blob = json.dumps(payload, separators=(",", ":"))
                if should_fire("diskcache.write") is not None:
                    # Simulate a torn write: half the payload, no tail.
                    # os.replace still lands it, so the *next* read sees a
                    # present-but-undecodable entry (the corruption path).
                    blob = blob[: len(blob) // 2]
                fh.write(blob)
            os.replace(tmp, path)  # atomic on POSIX: readers never see partials
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError as exc:
        # A read-only or full cache dir degrades to "no cache", not a crash.
        _log.warning("disk cache write failed", path=str(path), error=str(exc))
