"""Systolic array configuration (SCALE-Sim-style).

The paper's methodology (§V-A.3): performance is limited only by operations
on the array — load, MAC, systolic communication of partials, and output
flush.  We model an ``rows × cols`` grid of MACs with the output-stationary
dataflow, optionally extended with the per-row weight-broadcast links of
§IV-C (the paper's proposed hardware change).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ArrayConfig:
    """A systolic array instance.

    Attributes:
        rows: PEs along systolic dimension 2 (inputs stream left→right).
        cols: PEs along systolic dimension 1 (weights stream top→bottom).
        broadcast: whether rows carry the paper's weight-broadcast link,
            enabling the efficient FuSeConv mapping (§IV-C.1).  Baselines in
            the paper are evaluated on the same array, so the link defaults
            to present; it only changes how ``FuSeConv1D`` layers are mapped.
        dataflow: ``"os"`` (output stationary — the paper's choice), or
            ``"ws"`` / ``"is"`` (weight-/input-stationary, provided as an
            ablation extension; see :mod:`repro.systolic.dataflows`).
        frequency_mhz: clock used when converting cycles to wall time.
        datawidth: operand width of the PE datapath in bits — 16 (FP16
            MACs, the paper's §V-A.2 setup) or 8 (int8 MACs with int32
            accumulation, matching the compiled int8 inference plans).
            Cycle counts are datawidth-independent in this model (the
            array has the same rows × cols and the same fold shapes);
            what changes is silicon cost and energy — an int8 multiplier
            is several times smaller and cheaper per MAC than an FP16
            one, and SRAM accesses move half the bits.
        pipelined_folds: when True, consecutive folds of one operation
            overlap: the next fold's operand skew streams in behind the
            current fold's drain, so only the first fold pays the full
            fill cost (a calibration knob — SCALE-Sim-family simulators
            differ in how much per-fold overhead they amortize; see the
            ablation in ``benchmarks/bench_ablation_pipelining.py``).
    """

    rows: int
    cols: int
    broadcast: bool = True
    dataflow: str = "os"
    frequency_mhz: float = 700.0
    datawidth: int = 16
    pipelined_folds: bool = False

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"array must be positive-sized, got {self.rows}x{self.cols}")
        if self.dataflow not in ("os", "ws", "is"):
            raise ValueError(
                f"dataflow must be 'os', 'ws' or 'is', got {self.dataflow!r}"
            )
        if self.datawidth not in (8, 16):
            raise ValueError(
                f"datawidth must be 8 or 16 bits, got {self.datawidth!r}"
            )

    @classmethod
    def square(cls, size: int, **kwargs) -> "ArrayConfig":
        """A ``size × size`` array (the paper evaluates 64×64 by default)."""
        return cls(rows=size, cols=size, **kwargs)

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def without_broadcast(self) -> "ArrayConfig":
        """The same array minus the broadcast links (baseline hardware)."""
        return replace(self, broadcast=False)

    def with_datawidth(self, bits: int) -> "ArrayConfig":
        """The same array with ``bits``-wide PEs (8 = int8 MACs)."""
        return replace(self, datawidth=bits)

    def cycles_to_ms(self, cycles: int) -> float:
        """Convert a cycle count to milliseconds at the configured clock."""
        return cycles / (self.frequency_mhz * 1e3)


#: The array size used for all headline numbers in the paper (§V-A.3).
PAPER_ARRAY = ArrayConfig.square(64)

#: The array size used for the §I motivation and the §V-B.5 overhead study.
MOTIVATION_ARRAY = ArrayConfig.square(32)
