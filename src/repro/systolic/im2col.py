"""Mapping layer specs to systolic-array operations (GEMMs / 1D-conv banks).

This is the *shape-level* im2col of §III-B: a convolution becomes a matrix
multiplication whose dimensions determine fold counts and cycles.  (The
numerical im2col used for actually computing values lives in
:mod:`repro.core.reference`.)

Key mappings and their §III significance:

* standard conv → one GEMM with ``N = C_out`` columns: filters provide reuse
  along systolic dimension 1 (Fig. 3a) — good utilization;
* depthwise conv → ``C`` independent GEMMs with ``N = 1``: a single active
  column (Fig. 2c) — the inefficiency the paper identifies;
* FuSeConv 1D group → a :class:`repro.systolic.fuse_mapping.Conv1DBank`
  executed with the broadcast dataflow — spans both dimensions (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from ..ir.layer import (
    Conv2D,
    DepthwiseConv2D,
    FuSeConv1D,
    LayerSpec,
    Linear,
    PointwiseConv2D,
    Shape,
    SqueezeExcite,
)
from ..ir.packing import PackedMapping
from .fuse_mapping import Conv1DBank
from .gemm import GemmDims

#: A layer lowers to either GEMMs or 1D-convolution banks.
ArrayOp = Union[GemmDims, Conv1DBank]


@dataclass(frozen=True)
class LoweredLayer:
    """The array operations implementing one layer."""

    ops: List[ArrayOp]

    @property
    def macs(self) -> int:
        return sum(op.macs for op in self.ops)


def lower_layer(
    layer: LayerSpec, in_shape: Shape, out_shape: Shape, batch: int = 1
) -> LoweredLayer:
    """Lower a compute layer to array operations.

    Layers with no array compute (activations, BN, pooling, plumbing)
    lower to an empty op list — the paper's latency model considers
    compute-bound convolution, Squeeze-and-Excite and FC layers only
    (§V-A.3).

    ``batch`` folds additional images into the GEMM M dimension (for
    convolutions) or independent rows (for FC / 1D banks) — the standard
    SCALE-Sim batching model; the paper's numbers are batch 1.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if isinstance(layer, Conv2D):
        return _lower_conv(layer, in_shape, out_shape, batch)
    if isinstance(layer, DepthwiseConv2D):
        return _lower_depthwise(layer, in_shape, out_shape, batch)
    if isinstance(layer, PointwiseConv2D):
        c, h, w = in_shape
        return LoweredLayer([GemmDims(m=batch * h * w, k=c, n=layer.out_channels)])
    if isinstance(layer, FuSeConv1D):
        return _lower_fuse(layer, in_shape, out_shape, batch)
    if isinstance(layer, Linear):
        c = in_shape[0]
        return LoweredLayer([GemmDims(m=batch, k=c, n=layer.out_features)])
    if isinstance(layer, SqueezeExcite):
        c = in_shape[0]
        mid = layer.bottleneck(c)
        return LoweredLayer(
            [GemmDims(m=batch, k=c, n=mid), GemmDims(m=batch, k=mid, n=c)]
        )
    return LoweredLayer([])


def lower_packed_layer(
    layer: LayerSpec, in_shape: Shape, out_shape: Shape, batch: int,
    packed: PackedMapping,
) -> LoweredLayer:
    """Lower a layer under a column-combining :class:`PackedMapping`.

    The packed schedule keeps the dense mapping's shape *family* and
    shrinks the sparse degrees of freedom (Kung et al. column combining):

    * ``"gemm"`` (standard conv / pointwise / linear) — N shrinks to the
      physical column count, K streams in full (each physical column
      accumulates its member columns' disjoint rows in one pass);
    * ``"depthwise"`` — each channel's single-column GEMM streams only
      its live taps (per-channel K), empty channels vanish;
    * ``"fuse1d"`` — one broadcast bank per identical-tap-support group,
      streaming just the group's live taps; empty channels drop rows.

    γ=1 identity mappings reproduce :func:`lower_layer` exactly.  Raises
    ``ValueError`` when the mapping does not match the layer's geometry
    (a stale packing applied to the wrong network).
    """
    dense = lower_layer(layer, in_shape, out_shape, batch)
    if packed.kind == "gemm":
        if not (isinstance(layer, (PointwiseConv2D, Linear))
                or (isinstance(layer, Conv2D) and layer.groups == 1)):
            raise ValueError(
                f"gemm packing cannot apply to {type(layer).__name__}")
        (dims,) = dense.ops
        if packed.k != dims.k or packed.n_orig != dims.n:
            raise ValueError(
                f"packed mapping (K={packed.k}, N={packed.n_orig}) does not "
                f"match layer GEMM (K={dims.k}, N={dims.n})")
        if packed.n_packed == 0:
            return LoweredLayer([])
        return LoweredLayer([GemmDims(m=dims.m, k=dims.k, n=packed.n_packed)])
    if packed.kind == "depthwise":
        if not isinstance(layer, DepthwiseConv2D):
            raise ValueError(
                f"depthwise packing cannot apply to {type(layer).__name__}")
        c_out, oh, ow = out_shape
        kh, kw = layer.kernel_hw
        if len(packed.k_eff) != c_out or packed.k != kh * kw:
            raise ValueError(
                f"packed mapping (C={len(packed.k_eff)}, K={packed.k}) does "
                f"not match depthwise layer (C={c_out}, K={kh * kw})")
        m = batch * oh * ow
        return LoweredLayer(
            [GemmDims(m=m, k=ke, n=1) for ke in packed.k_eff if ke > 0])
    if packed.kind == "fuse1d":
        if not isinstance(layer, FuSeConv1D):
            raise ValueError(
                f"fuse1d packing cannot apply to {type(layer).__name__}")
        c, oh, ow = out_shape
        if packed.k != layer.kernel or packed.n_orig != c:
            raise ValueError(
                f"packed mapping (C={packed.n_orig}, K={packed.k}) does not "
                f"match FuSe layer (C={c}, K={layer.kernel})")
        sh, sw = layer.stride_hw
        lines, out_length, stride = (oh, ow, sw) if layer.axis == "row" \
            else (ow, oh, sh)
        ops: List[ArrayOp] = [
            Conv1DBank(num_convs=batch * len(chans) * lines,
                       out_length=out_length, kernel=len(taps), stride=stride)
            for taps, chans in packed.tap_groups
        ]
        return LoweredLayer(ops)
    raise ValueError(f"unknown packing kind {packed.kind!r}")


def _lower_conv(
    layer: Conv2D, in_shape: Shape, out_shape: Shape, batch: int
) -> LoweredLayer:
    c_in = in_shape[0]
    c_out, oh, ow = out_shape
    kh, kw = layer.kernel_hw
    if layer.groups == 1:
        return LoweredLayer([GemmDims(m=batch * oh * ow, k=kh * kw * c_in, n=c_out)])
    per_group = GemmDims(
        m=batch * oh * ow, k=kh * kw * (c_in // layer.groups), n=c_out // layer.groups
    )
    return LoweredLayer([per_group] * layer.groups)


def _lower_depthwise(
    layer: DepthwiseConv2D, in_shape: Shape, out_shape: Shape, batch: int
) -> LoweredLayer:
    c_out, oh, ow = out_shape
    kh, kw = layer.kernel_hw
    # One single-column GEMM per output channel (Fig. 2c): no reuse along
    # systolic dimension 1.  Batching extends M (same filter, more pixels).
    return LoweredLayer([GemmDims(m=batch * oh * ow, k=kh * kw, n=1)] * c_out)


def _lower_fuse(
    layer: FuSeConv1D, in_shape: Shape, out_shape: Shape, batch: int
) -> LoweredLayer:
    c, oh, ow = out_shape
    sh, sw = layer.stride_hw
    if layer.axis == "row":
        # One 1D conv per (image, channel, surviving output row), each
        # producing a full output row of length ow.
        bank = Conv1DBank(
            num_convs=batch * c * oh, out_length=ow, kernel=layer.kernel, stride=sw
        )
    else:
        bank = Conv1DBank(
            num_convs=batch * c * ow, out_length=oh, kernel=layer.kernel, stride=sh
        )
    return LoweredLayer([bank])
