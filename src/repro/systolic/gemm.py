"""Analytical cycle model for output-stationary GEMM on a systolic array.

The model follows SCALE-Sim's output-stationary accounting: a GEMM of
``(M×K)·(K×N)`` is tiled into *folds* of at most ``rows × cols`` outputs.
A fold with ``r`` active rows, ``c`` active columns and accumulation length
``K`` costs

``(r - 1) + (c - 1)``  cycles of skew fill (operands enter from the array
edges, one hop per cycle), plus ``K`` MAC cycles, plus ``r`` cycles to
drain the stationary outputs down the column links — i.e.
``2r + c + K - 2`` cycles, the familiar SCALE-Sim ``2·S_R + S_C + T - 2``
expression when the fold covers the whole array.

The functional simulator in :mod:`repro.systolic.functional` executes this
dataflow on real values and is tested to agree with these counts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .config import ArrayConfig


@dataclass(frozen=True)
class GemmDims:
    """Dimensions of one matrix multiplication ``(M×K) · (K×N)``."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {self}")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n


@dataclass(frozen=True)
class FoldShape:
    """One fold: ``r × c`` active PEs accumulating over ``k`` values."""

    r: int
    c: int
    k: int

    @property
    def cycles(self) -> int:
        """Skew fill + MAC + drain (see module docstring)."""
        return (self.r - 1) + (self.c - 1) + self.k + self.r

    @property
    def pipelined_cycles(self) -> int:
        """Steady-state cost when folds issue back-to-back.

        The next fold's operands stream in behind this fold's drain, so a
        non-first fold pays its MAC phase plus the drain that frees the
        accumulators — the ``(r-1)+(c-1)`` skew fill is hidden.
        """
        return self.k + self.r

    @property
    def active_mac_cycles(self) -> int:
        return self.r * self.c * self.k


@dataclass
class MappingStats:
    """Cycle/utilization accounting for one operation mapped onto an array.

    Attributes:
        cycles: total latency in array cycles.
        folds: number of folds executed.
        active_mac_cycles: PE-cycles doing useful MACs (equals the MAC count
            of the operation).
        occupied_pe_cycles: PE-cycles summed over ``cycles`` for the whole
            grid — the denominator of utilization.
        sram_reads: operand values read from the edge buffers.
        sram_writes: output values written beyond the array.
    """

    cycles: int = 0
    folds: int = 0
    active_mac_cycles: int = 0
    occupied_pe_cycles: int = 0
    sram_reads: int = 0
    sram_writes: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of PE-cycles spent on useful MACs (0 when idle)."""
        if self.occupied_pe_cycles == 0:
            return 0.0
        return self.active_mac_cycles / self.occupied_pe_cycles

    def merge(self, other: "MappingStats") -> None:
        """Accumulate another operation's stats into this one (sequential)."""
        self.cycles += other.cycles
        self.folds += other.folds
        self.active_mac_cycles += other.active_mac_cycles
        self.occupied_pe_cycles += other.occupied_pe_cycles
        self.sram_reads += other.sram_reads
        self.sram_writes += other.sram_writes

    def copy(self) -> "MappingStats":
        """A detached copy — safe to :meth:`merge` into without aliasing."""
        return MappingStats(
            self.cycles, self.folds, self.active_mac_cycles,
            self.occupied_pe_cycles, self.sram_reads, self.sram_writes,
        )


def iter_folds(dims: GemmDims, array: ArrayConfig) -> Iterator[FoldShape]:
    """Folds of a GEMM over the array, row-major over the output tiles."""
    for m0 in range(0, dims.m, array.rows):
        r = min(array.rows, dims.m - m0)
        for n0 in range(0, dims.n, array.cols):
            c = min(array.cols, dims.n - n0)
            yield FoldShape(r=r, c=c, k=dims.k)


def fold_counts(dims: GemmDims, array: ArrayConfig) -> Tuple[int, int]:
    """Number of (row folds, column folds)."""
    rf = -(-dims.m // array.rows)
    cf = -(-dims.n // array.cols)
    return rf, cf


def _tile_counts(extent: int, tile: int) -> List[Tuple[int, int]]:
    """Distinct (tile size, multiplicity) pairs when tiling ``extent`` by ``tile``."""
    full, rem = divmod(extent, tile)
    out: List[Tuple[int, int]] = []
    if full:
        out.append((tile, full))
    if rem:
        out.append((rem, 1))
    return out


def os_gemm_stats(dims: GemmDims, array: ArrayConfig) -> MappingStats:
    """Latency and utilization of one GEMM under output-stationary dataflow.

    Computed in closed form over the (at most four) distinct fold shapes;
    identical by construction to summing :func:`iter_folds` (tested).
    """
    stats = MappingStats()
    first = True
    for r, nr in _tile_counts(dims.m, array.rows):
        for c, nc in _tile_counts(dims.n, array.cols):
            count = nr * nc
            fold = FoldShape(r=r, c=c, k=dims.k)
            if array.pipelined_folds:
                cycles = count * fold.pipelined_cycles
                if first:
                    # Only the operation's first fold pays the fill skew.
                    cycles += (fold.r - 1) + (fold.c - 1)
                    first = False
            else:
                cycles = count * fold.cycles
            stats.cycles += cycles
            stats.folds += count
            stats.active_mac_cycles += count * fold.active_mac_cycles
            stats.occupied_pe_cycles += cycles * array.num_pes
            # Per fold: r rows of A (r*k values), c columns of B (c*k
            # values), r*c outputs drained.
            stats.sram_reads += count * (fold.r * fold.k + fold.c * fold.k)
            stats.sram_writes += count * fold.r * fold.c
    assert stats.active_mac_cycles == dims.macs
    return stats


def os_gemm_cycles(dims: GemmDims, array: ArrayConfig) -> int:
    """Convenience wrapper: total cycles only."""
    return os_gemm_stats(dims, array).cycles


def batch_stats(gemms: List[GemmDims], array: ArrayConfig) -> MappingStats:
    """Sequentially execute a list of GEMMs (e.g. per-channel depthwise)."""
    total = MappingStats()
    for dims in gemms:
        total.merge(os_gemm_stats(dims, array))
    return total
