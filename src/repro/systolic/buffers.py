"""SRAM buffer sizing (SCALE-Sim's buffer requirement analysis).

The latency model assumes edge buffers always feed the array; this module
computes how large those buffers must be for that assumption to hold with
double buffering: per fold, the input buffer must hold the fold's
streaming operands and the output buffer its results, ×2 so the next
fold's operands load while the current fold computes.

Per-fold working sets (values):

* OS GEMM fold (r×c, depth K): ``r·K`` of A + ``c·K`` of B in, ``r·c`` out;
* broadcast fold (r rows, c outputs, K taps, stride s):
  ``r·((c-1)s + K)`` input samples + ``r·K`` weights in, ``r·c`` out.

The report aggregates the maximum over all folds of all layers — the
minimum SRAM that sustains full-speed execution of the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.network import Network
from .config import ArrayConfig, PAPER_ARRAY
from .fuse_mapping import Conv1DBank
from .gemm import GemmDims, _tile_counts
from .im2col import lower_layer
from .memory import BYTES_PER_VALUE


@dataclass(frozen=True)
class BufferRequirement:
    """Minimum buffer sizes (in values) for stall-free execution."""

    input_values: int
    output_values: int
    double_buffered: bool = True

    @property
    def input_bytes(self) -> int:
        factor = 2 if self.double_buffered else 1
        return factor * self.input_values * BYTES_PER_VALUE

    @property
    def output_bytes(self) -> int:
        factor = 2 if self.double_buffered else 1
        return factor * self.output_values * BYTES_PER_VALUE

    @property
    def total_kib(self) -> float:
        return (self.input_bytes + self.output_bytes) / 1024.0

    def merge(self, other: "BufferRequirement") -> "BufferRequirement":
        return BufferRequirement(
            input_values=max(self.input_values, other.input_values),
            output_values=max(self.output_values, other.output_values),
            double_buffered=self.double_buffered,
        )


def gemm_buffer_requirement(dims: GemmDims, array: ArrayConfig) -> BufferRequirement:
    """Largest per-fold working set of one GEMM."""
    worst_in = 0
    worst_out = 0
    for r, _ in _tile_counts(dims.m, array.rows):
        for c, _ in _tile_counts(dims.n, array.cols):
            worst_in = max(worst_in, r * dims.k + c * dims.k)
            worst_out = max(worst_out, r * c)
    return BufferRequirement(input_values=worst_in, output_values=worst_out)


def bank_buffer_requirement(bank: Conv1DBank, array: ArrayConfig) -> BufferRequirement:
    """Largest per-fold working set of one broadcast 1D-conv bank."""
    worst_in = 0
    worst_out = 0
    for r, _ in _tile_counts(bank.num_convs, array.rows):
        for c, _ in _tile_counts(bank.out_length, array.cols):
            stream = (c - 1) * bank.stride + bank.kernel
            worst_in = max(worst_in, r * stream + r * bank.kernel)
            worst_out = max(worst_out, r * c)
    return BufferRequirement(input_values=worst_in, output_values=worst_out)


def network_buffer_requirement(
    network: Network, array: Optional[ArrayConfig] = None
) -> BufferRequirement:
    """Minimum SRAM buffers that sustain the whole network at full speed."""
    array = array or PAPER_ARRAY
    worst = BufferRequirement(input_values=0, output_values=0)
    for node in network:
        lowered = lower_layer(node.layer, node.in_shape, node.out_shape)
        for op in lowered.ops:
            if isinstance(op, Conv1DBank):
                requirement = bank_buffer_requirement(op, array)
            else:
                requirement = gemm_buffer_requirement(op, array)
            worst = worst.merge(requirement)
    return worst
