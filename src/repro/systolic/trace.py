"""Cycle-accurate operand demand traces (SCALE-Sim's trace output).

SCALE-Sim's primary artifact is per-cycle SRAM read/write traces; this
module generates the same kind of demand streams for both dataflows:

* :func:`trace_gemm` — output-stationary GEMM: which A/B elements enter
  the array edges at each cycle, and when C elements drain out;
* :func:`trace_conv1d_bank` — the broadcast dataflow: per-cycle weight
  broadcasts and input stream reads.

Addresses are operand-local logical offsets (row-major), which is what a
buffer model consumes.  Traces are exact for the GEMM dataflow; for
strided 1D-conv streams the (c-1)·s+k input values of a fold are paced
uniformly over its streaming window (documented approximation).

Intended for small operations (debug, buffer sizing studies): a trace has
one event per operand access, so a whole MobileNet layer produces millions
of events — use :class:`repro.systolic.gemm.MappingStats` for aggregate
counts instead.

Export: cycle-level events share one format with the wall-clock spans of
:mod:`repro.obs.tracing` — :meth:`TraceEvent.to_chrome_event` adapts one
event to a Chrome trace-event dict (one simulated cycle = one trace
microsecond, lanes as threads) and :func:`chrome_trace` wraps a whole
stream into the same ``traceEvents`` payload the CLI's ``--trace-out``
emits, so operand traces open in ``chrome://tracing`` / Perfetto too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from .config import ArrayConfig
from .fuse_mapping import Conv1DBank
from .gemm import GemmDims


@dataclass(frozen=True)
class TraceEvent:
    """One SRAM access demanded by the array.

    Attributes:
        cycle: global cycle index (monotone across folds).
        kind: ``"read"`` or ``"write"``.
        operand: ``"A"``, ``"B"``, ``"W"``, ``"X"`` or ``"C"``.
        address: operand-local logical offset (row-major).
        lane: edge lane (array row for A/W/X, column for B; column for C
            drains).
    """

    cycle: int
    kind: str
    operand: str
    address: int
    lane: int

    def to_chrome_event(self, us_per_cycle: float = 1.0) -> Dict[str, object]:
        """This access as a Chrome trace-event dict.

        One simulated cycle maps to ``us_per_cycle`` trace microseconds
        (default 1 — cycle indices read directly off the Perfetto
        timeline); each edge lane renders as its own thread row.
        """
        return {
            "name": f"{self.operand} {self.kind}",
            "cat": "systolic",
            "ph": "X",
            "ts": self.cycle * us_per_cycle,
            "dur": us_per_cycle,
            "pid": 0,
            "tid": self.lane,
            "args": {
                "cycle": self.cycle,
                "operand": self.operand,
                "kind": self.kind,
                "address": self.address,
                "lane": self.lane,
            },
        }


def trace_gemm(dims: GemmDims, array: ArrayConfig) -> Iterator[TraceEvent]:
    """Exact OS-dataflow demand trace of one GEMM.

    Yields events in non-decreasing cycle order within each fold; folds are
    serialized (no pipelining — matching ``pipelined_folds=False``).
    """
    cycle_base = 0
    for m0 in range(0, dims.m, array.rows):
        r = min(array.rows, dims.m - m0)
        for n0 in range(0, dims.n, array.cols):
            c = min(array.cols, dims.n - n0)
            mac_cycles = (r - 1) + (c - 1) + dims.k
            for t in range(mac_cycles):
                for i in range(r):  # left edge: row i consumes A[m0+i, t-i]
                    kk = t - i
                    if 0 <= kk < dims.k:
                        yield TraceEvent(
                            cycle=cycle_base + t,
                            kind="read",
                            operand="A",
                            address=(m0 + i) * dims.k + kk,
                            lane=i,
                        )
                for j in range(c):  # top edge: col j consumes B[t-j, n0+j]
                    kk = t - j
                    if 0 <= kk < dims.k:
                        yield TraceEvent(
                            cycle=cycle_base + t,
                            kind="read",
                            operand="B",
                            address=kk * dims.n + (n0 + j),
                            lane=j,
                        )
            # Drain: stationary outputs exit row-by-row down the columns.
            for i in range(r):
                for j in range(c):
                    yield TraceEvent(
                        cycle=cycle_base + mac_cycles + i,
                        kind="write",
                        operand="C",
                        address=(m0 + i) * dims.n + (n0 + j),
                        lane=j,
                    )
            cycle_base += mac_cycles + r


def trace_conv1d_bank(bank: Conv1DBank, array: ArrayConfig) -> Iterator[TraceEvent]:
    """Broadcast-dataflow demand trace of a 1D-convolution bank.

    Weight reads are exact (one broadcast value per active row per MAC
    cycle); input-stream reads are paced uniformly over each fold's
    streaming window when the stride exceeds 1.
    """
    if not array.broadcast:
        raise ValueError("broadcast traces need an array with broadcast links")
    line_len = (bank.out_length - 1) * bank.stride + bank.kernel
    cycle_base = 0
    for g0 in range(0, bank.num_convs, array.rows):
        r = min(array.rows, bank.num_convs - g0)
        for l0 in range(0, bank.out_length, array.cols):
            c = min(array.cols, bank.out_length - l0)
            mac_cycles = (c - 1) + bank.kernel
            # Weight broadcasts: w[g, t] at cycle t (per active row).
            for t in range(bank.kernel):
                for i in range(r):
                    yield TraceEvent(
                        cycle=cycle_base + t,
                        kind="read",
                        operand="W",
                        address=(g0 + i) * bank.kernel + t,
                        lane=i,
                    )
            # Input stream: the fold needs (c-1)*stride + kernel values per
            # row, starting at offset l0*stride, paced over mac_cycles.
            stream_len = (c - 1) * bank.stride + bank.kernel
            for step in range(stream_len):
                cycle = cycle_base + min(step, mac_cycles - 1)
                for i in range(r):
                    yield TraceEvent(
                        cycle=cycle,
                        kind="read",
                        operand="X",
                        address=(g0 + i) * line_len + l0 * bank.stride + step,
                        lane=i,
                    )
            # Outputs drain down columns, one row per cycle.
            for i in range(r):
                for j in range(c):
                    yield TraceEvent(
                        cycle=cycle_base + mac_cycles + i,
                        kind="write",
                        operand="C",
                        address=(g0 + i) * bank.out_length + (l0 + j),
                        lane=j,
                    )
            cycle_base += mac_cycles + r


@dataclass
class TraceSummary:
    """Aggregate view of a trace: counts and peak per-cycle bandwidth."""

    events: int = 0
    reads: int = 0
    writes: int = 0
    cycles: int = 0
    peak_reads_per_cycle: int = 0

    @classmethod
    def from_events(cls, events: Iterator[TraceEvent]) -> "TraceSummary":
        summary = cls()
        per_cycle: Dict[int, int] = {}
        last_cycle = -1
        for event in events:
            summary.events += 1
            if event.kind == "read":
                summary.reads += 1
                per_cycle[event.cycle] = per_cycle.get(event.cycle, 0) + 1
            else:
                summary.writes += 1
            last_cycle = max(last_cycle, event.cycle)
        summary.cycles = last_cycle + 1
        summary.peak_reads_per_cycle = max(per_cycle.values(), default=0)
        return summary


def unique_addresses(events: Iterator[TraceEvent], operand: str) -> List[int]:
    """Sorted unique addresses touched for one operand."""
    return sorted({e.address for e in events if e.operand == operand})


def chrome_trace(
    events: Iterable[TraceEvent],
    array: Optional[ArrayConfig] = None,
    us_per_cycle: float = 1.0,
) -> Dict[str, object]:
    """A full Chrome-trace payload for a cycle-level event stream.

    The result matches the ``--trace-out`` schema (``repro.trace/v1``
    header in ``otherData``) so ``python -m repro.obs.validate`` and the
    Perfetto UI accept operand traces and wall-clock span traces alike.
    """
    from ..obs.export import TRACE_SCHEMA, run_header

    other = {"schema": TRACE_SCHEMA}
    other.update(run_header(array, {"clock": "simulated-cycles"}))
    return {
        "traceEvents": [e.to_chrome_event(us_per_cycle) for e in events],
        "displayTimeUnit": "ms",
        "otherData": other,
    }
