"""PE-utilization analysis (the paper's §III inefficiency, made measurable).

Utilization here is *useful MAC cycles / (total cycles × PEs)* — the
fraction of the array doing real work while a layer occupies it.  The
paper's central observation becomes a number: a depthwise convolution
mapped via im2col uses a single column, so its utilization is bounded by
``1 / cols``; FuSeConv with the broadcast link spans both dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.counting import op_class
from ..ir.network import Network
from .config import ArrayConfig, PAPER_ARRAY
from .latency import estimate_network


@dataclass(frozen=True)
class UtilizationRow:
    """Utilization of one layer."""

    name: str
    kind: str
    op_class: str
    cycles: int
    utilization: float


@dataclass
class UtilizationReport:
    """Utilization of a network, per layer and per operator class."""

    network: str
    array: ArrayConfig
    rows: List[UtilizationRow]

    def by_class(self) -> Dict[str, float]:
        """MAC-weighted mean utilization per operator class."""
        active: Dict[str, float] = {}
        occupied: Dict[str, float] = {}
        for row in self.rows:
            # Reconstruct PE-cycle numbers from the stored ratio.
            occ = row.cycles * self.array.num_pes
            occupied[row.op_class] = occupied.get(row.op_class, 0.0) + occ
            active[row.op_class] = active.get(row.op_class, 0.0) + row.utilization * occ
        return {k: active[k] / occupied[k] for k in occupied if occupied[k]}

    @property
    def overall(self) -> float:
        occ = sum(r.cycles for r in self.rows) * self.array.num_pes
        act = sum(r.utilization * r.cycles * self.array.num_pes for r in self.rows)
        return act / occ if occ else 0.0


def utilization_report(
    network: Network, array: Optional[ArrayConfig] = None
) -> UtilizationReport:
    """Per-layer utilization for a network (default array: 64×64)."""
    array = array or PAPER_ARRAY
    latency = estimate_network(network, array)
    rows = [
        UtilizationRow(
            name=l.name,
            kind=l.kind,
            op_class=l.op_class,
            cycles=l.cycles,
            utilization=l.utilization,
        )
        for l in latency.layers
    ]
    return UtilizationReport(network=network.name, array=array, rows=rows)


def depthwise_utilization_bound(array: ArrayConfig) -> float:
    """Upper bound on depthwise im2col utilization: one active column.

    A depthwise channel maps to a single-column GEMM (§III-B), so at most
    ``rows × 1`` of the ``rows × cols`` grid can ever be active.
    """
    return 1.0 / array.cols
