"""Mapping FuSeConv 1D convolutions with the row-broadcast dataflow (§IV-C).

A ``FuSeConv1D`` layer is a bank of independent depthwise 1D convolutions.
With the paper's modified dataflow each array row executes one 1D
convolution: the row's weight values are *broadcast* to all PEs of the row
(one weight per cycle), inputs stream systolically along the row, and each
PE holds one output element stationary (Fig. 6/7).

Fold accounting: with ``G`` independent 1D convolutions, each producing
``L_out`` outputs with kernel ``K``,

* the array runs ``ceil(G / rows)`` row batches ("folds" over convolutions,
  Fig. 7(b): multiple channels mapped simultaneously when the input is
  smaller than the array), and
* each conv needs ``ceil(L_out / cols)`` column folds.

A fold with ``r`` active rows and ``c`` active columns costs ``(c - 1)``
cycles of input skew fill, ``K`` broadcast-MAC cycles, and ``r`` cycles to
drain the stationary outputs down the columns — mirroring the GEMM model in
:mod:`repro.systolic.gemm` with the ``(r - 1)`` weight-skew term removed,
because the broadcast link delivers a weight to a whole row in one cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .config import ArrayConfig
from .gemm import MappingStats


@dataclass(frozen=True)
class Conv1DBank:
    """A bank of independent 1D convolutions (one FuSeConv filter group).

    Attributes:
        num_convs: number of independent 1D convolutions ``G`` (=
            channels × surviving orthogonal lines after stride subsampling).
        out_length: outputs per convolution ``L_out``.
        kernel: filter taps ``K``.
        stride: stride along the convolution axis (affects how many input
            values stream through a row, hence SRAM reads).
    """

    num_convs: int
    out_length: int
    kernel: int
    stride: int = 1

    def __post_init__(self) -> None:
        if min(self.num_convs, self.out_length, self.kernel, self.stride) <= 0:
            raise ValueError(f"Conv1DBank fields must be positive, got {self}")

    @property
    def macs(self) -> int:
        return self.num_convs * self.out_length * self.kernel


@dataclass(frozen=True)
class BroadcastFold:
    """One fold of the broadcast dataflow: ``r`` convs × ``c`` outputs each."""

    r: int
    c: int
    k: int
    stride: int = 1

    @property
    def cycles(self) -> int:
        """Input skew fill + broadcast MACs + output drain."""
        return (self.c - 1) + self.k + self.r

    @property
    def pipelined_cycles(self) -> int:
        """Steady-state cost with back-to-back folds (fill skew hidden)."""
        return self.k + self.r

    @property
    def active_mac_cycles(self) -> int:
        return self.r * self.c * self.k

    @property
    def input_reads(self) -> int:
        """Input values streamed into each active row for this fold."""
        per_row = (self.c - 1) * self.stride + self.k
        return self.r * per_row


def iter_broadcast_folds(bank: Conv1DBank, array: ArrayConfig) -> Iterator[BroadcastFold]:
    """Folds of a 1D-convolution bank over the array."""
    for g0 in range(0, bank.num_convs, array.rows):
        r = min(array.rows, bank.num_convs - g0)
        for l0 in range(0, bank.out_length, array.cols):
            c = min(array.cols, bank.out_length - l0)
            yield BroadcastFold(r=r, c=c, k=bank.kernel, stride=bank.stride)


def broadcast_conv1d_stats(bank: Conv1DBank, array: ArrayConfig) -> MappingStats:
    """Latency/utilization of a 1D-convolution bank with broadcast links.

    Raises:
        ValueError: if the array has no broadcast links — the caller should
            fall back to the im2col mapping (a single-column GEMM per conv)
            in that case.
    """
    if not array.broadcast:
        raise ValueError(
            "broadcast dataflow requested on an array without broadcast links; "
            "use fallback_conv1d_gemms() instead"
        )
    from .gemm import _tile_counts

    stats = MappingStats()
    first = True
    for r, nr in _tile_counts(bank.num_convs, array.rows):
        for c, nc in _tile_counts(bank.out_length, array.cols):
            count = nr * nc
            fold = BroadcastFold(r=r, c=c, k=bank.kernel, stride=bank.stride)
            if array.pipelined_folds:
                cycles = count * fold.pipelined_cycles
                if first:
                    cycles += fold.c - 1
                    first = False
            else:
                cycles = count * fold.cycles
            stats.cycles += cycles
            stats.folds += count
            stats.active_mac_cycles += count * fold.active_mac_cycles
            stats.occupied_pe_cycles += cycles * array.num_pes
            # Weights: K values per active row per fold (broadcast, read once).
            stats.sram_reads += count * (fold.r * fold.k + fold.input_reads)
            stats.sram_writes += count * fold.r * fold.c
    assert stats.active_mac_cycles == bank.macs
    return stats


def fallback_conv1d_gemms(bank: Conv1DBank):
    """im2col mapping of a 1D-conv bank for arrays *without* broadcast links.

    Each 1D convolution becomes a ``(L_out × K) · (K × 1)`` GEMM — the
    degenerate single-column mapping of §III-B, provided so the cost of the
    missing link is measurable.
    """
    from .gemm import GemmDims

    return [GemmDims(m=bank.out_length, k=bank.kernel, n=1)] * bank.num_convs
