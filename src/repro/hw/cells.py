"""Standard-cell constants for the 45 nm area/power model.

The paper synthesized a 32×32 systolic array (Bluespec → Synopsys DC,
NanGate 45 nm open cell library) and measured the broadcast-link overhead
at 4.35 % area and 2.25 % power.  We substitute synthesis with a
*structural* model: a processing element is an inventory of coarse blocks
(multiplier, adder, registers, muxes, wires), each with representative
45 nm area/power constants of the right order of magnitude (NanGate45
datasheet values for DFF/MUX2 cells; multiplier/adder block figures from
published 45 nm synthesis results).  What the experiment checks is the
*ratio* of added cells to the base array, which a structural count
captures to first order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Cell:
    """One building block.

    Attributes:
        name: identifier.
        area_um2: silicon area in µm².
        power_uw: combined dynamic (nominal activity) + leakage power in µW
            at the nominal clock.
    """

    name: str
    area_um2: float
    power_uw: float

    def __post_init__(self) -> None:
        if self.area_um2 < 0 or self.power_uw < 0:
            raise ValueError(f"cell {self.name!r} has negative cost")


#: Coarse 45 nm blocks used by the PE inventory.
CELLS: Dict[str, Cell] = {
    # FP16 multiplier (the MAC's multiply half).
    "mult_fp16": Cell("mult_fp16", area_um2=800.0, power_uw=400.0),
    # Int8 multiplier — a fixed-point 8×8 array multiplier is roughly
    # 5× smaller and cheaper than the FP16 datapath (no alignment,
    # normalization or exponent logic; consistent with published 45 nm
    # synthesis ratios).
    "mult_int8": Cell("mult_int8", area_um2=160.0, power_uw=70.0),
    # 32-bit accumulator adder.
    "adder32": Cell("adder32", area_um2=150.0, power_uw=60.0),
    # Per-bit D flip-flop (pipeline and accumulator registers).
    "dff_bit": Cell("dff_bit", area_um2=4.5, power_uw=1.2),
    # Per-bit 2:1 mux — the broadcast/systolic input select (Fig. 5).
    "mux2_bit": Cell("mux2_bit", area_um2=1.6, power_uw=0.30),
    # Per-PE share of the row broadcast wire + repeater.
    "bcast_wire_pe": Cell("bcast_wire_pe", area_um2=28.4, power_uw=6.0),
    # Per-row broadcast driver at the array edge.
    "bcast_driver_row": Cell("bcast_driver_row", area_um2=60.0, power_uw=40.0),
    # Per-lane edge interface (operand feeders / output collectors).
    "edge_lane": Cell("edge_lane", area_um2=80.0, power_uw=30.0),
    # PE-local control (dataflow select, accumulate enable).
    "control": Cell("control", area_um2=40.0, power_uw=10.0),
}


def cell(name: str) -> Cell:
    """Look up a cell by name (KeyError lists available cells)."""
    try:
        return CELLS[name]
    except KeyError:
        raise KeyError(
            f"unknown cell {name!r}; available: {', '.join(sorted(CELLS))}"
        ) from None
