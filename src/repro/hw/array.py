"""Array-level area/power roll-up and the §V-B.5 overhead experiment.

Array cost = PEs + edge interfaces (one operand lane per row and per
column, one output collector per column) + (if broadcast) one broadcast
driver per row.  The headline number is :func:`broadcast_overhead`, the
relative cost of adding the FuSeConv dataflow — the paper measures
4.35 % area and 2.25 % power on a 32×32 array.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..systolic.config import ArrayConfig
from .cells import cell
from .pe import pe_cost


@dataclass(frozen=True)
class ArrayCost:
    """Total silicon cost of a systolic array."""

    rows: int
    cols: int
    broadcast: bool
    pe_area_um2: float
    pe_power_uw: float
    edge_area_um2: float
    edge_power_uw: float
    bcast_area_um2: float
    bcast_power_uw: float

    @property
    def area_um2(self) -> float:
        return self.pe_area_um2 + self.edge_area_um2 + self.bcast_area_um2

    @property
    def power_uw(self) -> float:
        return self.pe_power_uw + self.edge_power_uw + self.bcast_power_uw

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6

    @property
    def power_mw(self) -> float:
        return self.power_uw / 1e3


def array_cost(array: ArrayConfig) -> ArrayCost:
    """Structural cost of an array (honours ``broadcast`` and ``datawidth``)."""
    pe = pe_cost(broadcast=array.broadcast, datawidth=array.datawidth)
    n_pes = array.num_pes
    edge = cell("edge_lane")
    # Operand feeders along both edges plus output collectors per column.
    n_lanes = array.rows + 2 * array.cols
    driver = cell("bcast_driver_row")
    n_drivers = array.rows if array.broadcast else 0
    return ArrayCost(
        rows=array.rows,
        cols=array.cols,
        broadcast=array.broadcast,
        pe_area_um2=pe.area_um2 * n_pes,
        pe_power_uw=pe.power_uw * n_pes,
        edge_area_um2=edge.area_um2 * n_lanes,
        edge_power_uw=edge.power_uw * n_lanes,
        bcast_area_um2=driver.area_um2 * n_drivers,
        bcast_power_uw=driver.power_uw * n_drivers,
    )


@dataclass(frozen=True)
class OverheadReport:
    """Relative cost of the broadcast dataflow on one array size."""

    size: int
    datawidth: int
    base_area_um2: float
    base_power_uw: float
    bcast_area_um2: float
    bcast_power_uw: float

    @property
    def area_overhead(self) -> float:
        """Fractional area increase (paper: 0.0435 at 32×32)."""
        return self.bcast_area_um2 / self.base_area_um2 - 1.0

    @property
    def power_overhead(self) -> float:
        """Fractional power increase (paper: 0.0225 at 32×32)."""
        return self.bcast_power_uw / self.base_power_uw - 1.0


def broadcast_overhead(size: int = 32, datawidth: int = 16) -> OverheadReport:
    """The §V-B.5 experiment: array with vs without broadcast links.

    At the paper's 16-bit datapath the structural model lands on the
    measured 4.35 % area / 2.25 % power; at ``datawidth=8`` the base PE
    shrinks faster than the added mux, so the *relative* overhead grows.
    """
    base = array_cost(
        ArrayConfig.square(size, broadcast=False, datawidth=datawidth))
    with_links = array_cost(
        ArrayConfig.square(size, broadcast=True, datawidth=datawidth))
    return OverheadReport(
        size=size,
        datawidth=datawidth,
        base_area_um2=base.area_um2,
        base_power_uw=base.power_uw,
        bcast_area_um2=with_links.area_um2,
        bcast_power_uw=with_links.power_uw,
    )
