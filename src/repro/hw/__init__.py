"""Area/power model of the broadcast-link hardware overhead (§V-B.5)."""

from .array import ArrayCost, OverheadReport, array_cost, broadcast_overhead
from .cells import CELLS, Cell, cell
from .energy import (
    E_MAC_PJ,
    E_SRAM_READ_PJ,
    E_SRAM_WRITE_PJ,
    EnergyReport,
    energy_report,
)
from .pe import (
    ACC_BITS,
    OPERAND_BITS,
    BlockCount,
    PECost,
    baseline_pe_blocks,
    broadcast_extra_blocks,
    pe_cost,
)

__all__ = [
    "ArrayCost",
    "OverheadReport",
    "array_cost",
    "broadcast_overhead",
    "CELLS",
    "Cell",
    "cell",
    "E_MAC_PJ",
    "E_SRAM_READ_PJ",
    "E_SRAM_WRITE_PJ",
    "EnergyReport",
    "energy_report",
    "ACC_BITS",
    "OPERAND_BITS",
    "BlockCount",
    "PECost",
    "baseline_pe_blocks",
    "broadcast_extra_blocks",
    "pe_cost",
]
