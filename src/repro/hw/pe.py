"""Structural inventory of one processing element (PE).

The baseline PE (output-stationary MAC, Fig. 1d): a multiplier, a
32-bit accumulator adder, pipeline registers for the two streaming
operands (one ``datawidth`` each) and the stationary 32-bit accumulator,
plus local control.  The datapath width is parameterized: 16 bits is the
paper's FP16 setup (§V-A.2), 8 bits models an int8 MAC array with int32
accumulation, matching the compiled int8 inference plans
(:meth:`repro.nn.compile.CompileConfig.int8`).

The broadcast-capable PE (Fig. 5) adds a ``datawidth``-wide 2:1 mux
selecting between the top systolic link and the row broadcast link, and
its share of the broadcast wire/repeater.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .cells import Cell, cell

#: default operand width (FP16 weights/activations, §V-A.2)
OPERAND_BITS = 16
#: accumulator width (int32 for int8 MACs too — see docs/runtime.md)
ACC_BITS = 32

#: datapath width → multiplier cell
_MULT_CELLS = {16: "mult_fp16", 8: "mult_int8"}


def _mult_cell(datawidth: int) -> Cell:
    try:
        return cell(_MULT_CELLS[datawidth])
    except KeyError:
        raise ValueError(
            f"no multiplier cell for datawidth {datawidth}; "
            f"supported: {sorted(_MULT_CELLS)}"
        ) from None


@dataclass(frozen=True)
class BlockCount:
    """A cell type and how many instances the PE uses."""

    cell: Cell
    count: float

    @property
    def area_um2(self) -> float:
        return self.cell.area_um2 * self.count

    @property
    def power_uw(self) -> float:
        return self.cell.power_uw * self.count


def baseline_pe_blocks(datawidth: int = OPERAND_BITS) -> List[BlockCount]:
    """Inventory of the standard output-stationary PE."""
    return [
        BlockCount(_mult_cell(datawidth), 1),
        BlockCount(cell("adder32"), 1),
        # Two streaming operand registers + the stationary accumulator.
        BlockCount(cell("dff_bit"), 2 * datawidth + ACC_BITS),
        BlockCount(cell("control"), 1),
    ]


def broadcast_extra_blocks(datawidth: int = OPERAND_BITS) -> List[BlockCount]:
    """Cells *added* per PE by the §IV-C broadcast dataflow."""
    return [
        BlockCount(cell("mux2_bit"), datawidth),
        BlockCount(cell("bcast_wire_pe"), 1),
    ]


def _totals(blocks: List[BlockCount]) -> Tuple[float, float]:
    return (
        sum(b.area_um2 for b in blocks),
        sum(b.power_uw for b in blocks),
    )


@dataclass(frozen=True)
class PECost:
    """Area/power of one PE."""

    area_um2: float
    power_uw: float
    breakdown: Tuple[Tuple[str, float, float], ...]


def pe_cost(broadcast: bool = False, datawidth: int = OPERAND_BITS) -> PECost:
    """Cost of one PE, with or without the broadcast additions."""
    blocks = baseline_pe_blocks(datawidth)
    if broadcast:
        blocks = blocks + broadcast_extra_blocks(datawidth)
    area, power = _totals(blocks)
    return PECost(
        area_um2=area,
        power_uw=power,
        breakdown=tuple((b.cell.name, b.area_um2, b.power_uw) for b in blocks),
    )
