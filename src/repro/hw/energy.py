"""Inference energy model (extension): compute + data movement + static.

The paper evaluates latency, area and power; energy per inference is the
natural combination and the quantity edge deployments actually budget.
Model:

``E = E_mac·MACs + E_read·SRAM_reads + E_write·SRAM_writes + P_static·T``

with 45 nm-class constants (same order as the Horowitz ISSCC'14 numbers
commonly used for accelerator modeling: an FP16 MAC ≈ 1 pJ, a small-SRAM
16-bit access ≈ 2.5 pJ) and the static power taken from the structural
array model in :mod:`repro.hw.array`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.network import Network
from ..systolic.config import ArrayConfig, PAPER_ARRAY
from ..systolic.latency import estimate_network
from ..systolic.memory import traffic_report
from .array import array_cost

#: Energy per FP16 multiply-accumulate (pJ).
E_MAC_PJ = 1.0
#: Energy per int8 multiply-accumulate with int32 accumulation (pJ).
#: Horowitz ISSCC'14: an 8-bit integer MAC is ~5x cheaper than FP16
#: (0.2 pJ vs ~1 pJ at 45 nm) — the arithmetic shrinks faster than the
#: accumulator, which stays 32-bit either way.
E_MAC_INT8_PJ = 0.2
#: Energy per 16-bit SRAM read / write (pJ).  Accesses at other widths
#: scale linearly with the bits moved (datawidth / 16).
E_SRAM_READ_PJ = 2.5
E_SRAM_WRITE_PJ = 2.5
#: Fraction of the array's modeled power that is static (leakage + clock).
STATIC_POWER_FRACTION = 0.25


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown for one inference on one array."""

    network: str
    array: ArrayConfig
    mac_pj: float
    sram_read_pj: float
    sram_write_pj: float
    static_pj: float
    cycles: int

    @property
    def total_pj(self) -> float:
        return self.mac_pj + self.sram_read_pj + self.sram_write_pj + self.static_pj

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    @property
    def movement_fraction(self) -> float:
        """Share of energy spent moving data rather than computing."""
        return (self.sram_read_pj + self.sram_write_pj) / self.total_pj


def energy_report(network: Network, array: Optional[ArrayConfig] = None) -> EnergyReport:
    """Energy of one inference of ``network`` on ``array`` (default 64×64).

    The array's ``datawidth`` picks the MAC energy (FP16 vs int8) and
    scales the SRAM access energy with the bits moved per operand; the
    static term follows the structural cost model, whose PE shrinks at
    8 bits.
    """
    array = array or PAPER_ARRAY
    latency = estimate_network(network, array)
    traffic = traffic_report(network, array)
    macs = sum(l.stats.active_mac_cycles for l in latency.layers)

    e_mac = E_MAC_INT8_PJ if array.datawidth == 8 else E_MAC_PJ
    width_scale = array.datawidth / 16.0

    static_power_uw = array_cost(array).power_uw * STATIC_POWER_FRACTION
    seconds = latency.total_cycles / (array.frequency_mhz * 1e6)
    static_pj = static_power_uw * 1e-6 * seconds * 1e12  # W·s → pJ

    return EnergyReport(
        network=network.name,
        array=array,
        mac_pj=e_mac * macs,
        sram_read_pj=E_SRAM_READ_PJ * width_scale * traffic.total_sram_reads,
        sram_write_pj=E_SRAM_WRITE_PJ * width_scale * traffic.total_sram_writes,
        static_pj=static_pj,
        cycles=latency.total_cycles,
    )
