"""The fleet router: one JSON-lines frontend over N replica servers.

:class:`FleetRouter` speaks exactly the serving wire protocol of
:mod:`repro.serve.transport` — a client cannot tell a router from a
single :class:`~repro.serve.server.InferenceServer` — and forwards every
inference request to one of N replicas:

* **placement** — consistent hash of the request's *lane* (ModelKey +
  plan flavor, the batcher's coalescing key) over the
  :class:`~repro.fleet.placement.HashRing`, so each model's compiled
  plans and cost-model calibration warm exactly one replica;
* **least-loaded fallback** — when the primary is saturated (outstanding
  forwards above ``spill_outstanding``) or unusable, the request spills
  to the least-loaded usable replica; ring order breaks ties so spills
  are sticky too;
* **rerouting** — a transport failure against a replica demotes it
  immediately (:class:`~repro.fleet.health.ReplicaHealth`) and the
  request is retried on the next candidate; the health probe loop
  resurrects replicas that answer again;
* **replica-aware shedding** — a replica's SHED is retried on the next
  candidate; when every candidate sheds (or none is usable) the router
  sheds at its own level with a ``retry_after_ms`` aggregated from the
  replicas' hints (their minimum — the soonest any backend expects
  capacity);
* **slow-replica detection** — each probe pass compares every usable
  replica's forward-latency EWMA against the robust fleet median; a
  replica a configured factor above it for ``slow_windows`` consecutive
  windows is a *gray failure* (alive, probe-healthy, many times slow)
  and enters ``slow``: ordered last in every candidate list and covered
  by hedging (docs/robustness.md);
* **hedged requests** — for a first-attempt forward with deadline slack,
  a backup copy fires to the next ring candidate once the primary has
  been in flight longer than the p95 of recent forwards; the first
  answer wins, the loser is cancelled (``op: cancel``, best-effort), and
  only the winner's reply reaches the client — responses stay exactly-
  once per request id by construction.  Fired hedges are capped at
  ``hedge_rate_cap`` of routed requests (a SLOW primary bypasses the
  cap: that is the case hedging exists for);
* **deadline propagation** — the wire ``deadline_ms`` budget is
  re-stamped on every forward with the router's own elapsed time
  subtracted, so replicas can expire stale (or hedge-duplicated) work at
  admission instead of wasting batch slots on it;
* **trace propagation** — the router joins the client's
  :class:`~repro.obs.context.SpanContext` and forwards its own, so a
  traced request renders as ``client.request → router.request →
  router.forward → transport.request → serve.admit → ...`` chains.

Control ops: ``health`` answers the *fleet* view (router readiness plus
per-replica states), ``metrics`` aggregates every usable replica's
telemetry next to the router's own, ``fleet`` returns the router-side
per-replica accounting without touching the network, and ``ping`` stays
a pure round-trip.  The router keeps no model state — replicas are
unaware of the fleet and can be plain ``repro serve`` processes.
"""

from __future__ import annotations

import asyncio
import statistics
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Tuple

from ..faults import should_fire
from ..obs import get_logger, get_registry, get_tracer, render_exposition
from ..obs.context import SpanContext
from ..obs.stats import percentile
from ..serve.request import InferenceRequest, Status
from ..serve.transport import (
    MAX_LINE_BYTES,
    RemoteClient,
    _read_line,
    request_from_wire,
)
from .health import ReplicaEndpoint, ReplicaHealth, ReplicaState
from .placement import HashRing

__all__ = ["RouterConfig", "ReplicaLink", "FleetRouter"]

_log = get_logger("fleet.router")

#: EWMA smoothing for the per-replica observed forward latency.
_LATENCY_ALPHA = 0.2


@dataclass
class RouterConfig:
    """Routing knobs (CLI flags on ``repro fleet`` map onto these)."""

    seed: int = 0                    #: ring seed (placement determinism)
    vnodes: int = 64                 #: ring virtual nodes per replica
    max_attempts: int = 3            #: distinct replicas tried per request
    spill_outstanding: int = 32      #: primary backlog that triggers spill
    forward_timeout_s: float = 30.0  #: per-attempt replica timeout
    probe_interval_s: float = 0.25   #: health probe cadence
    probe_fail_threshold: int = 2    #: probe failures before ``down``
    shed_retry_floor_ms: float = 25.0  #: retry hint when no replica gave one

    # Hedged requests (docs/robustness.md): a first-attempt forward with
    # deadline slack gets a backup fired to the next candidate after the
    # p95 of recent forward latencies (never below ``hedge_floor_ms``);
    # first answer wins, the loser is cancelled.  Hedging stays off until
    # ``hedge_min_samples`` forwards have been observed (no meaningful
    # p95 before that) and fired hedges are capped at ``hedge_rate_cap``
    # of routed requests — except when the primary is already SLOW.
    hedge: bool = True               #: fire backup requests at all
    hedge_rate_cap: float = 0.05     #: max fired hedges / routed requests
    hedge_floor_ms: float = 5.0      #: minimum hedge delay
    hedge_min_samples: int = 16      #: forwards observed before hedging
    hedge_history: int = 256         #: forward-latency window for the p95

    # Slow-replica (gray-failure) detection: a usable replica whose
    # forward EWMA exceeds ``max(slow_min_ms, slow_factor * median)`` of
    # the usable fleet for ``slow_windows`` consecutive probe windows is
    # demoted to SLOW; the same count of clean windows recovers it.
    slow_factor: float = 4.0         #: outlier bound vs. fleet median EWMA
    slow_windows: int = 3            #: consecutive windows before SLOW
    slow_min_ms: float = 5.0         #: absolute floor on the outlier bound

    #: Ring-preference depth used when warming a new replica: it
    #: pre-compiles the lanes it is primary *or* fallback for
    #: (:func:`repro.fleet.warmup.assigned_lanes`).
    warm_depth: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.spill_outstanding < 1:
            raise ValueError("spill_outstanding must be >= 1")
        if not 0.0 <= self.hedge_rate_cap <= 1.0:
            raise ValueError("hedge_rate_cap must be in [0, 1]")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")
        if self.hedge_history < self.hedge_min_samples:
            raise ValueError("hedge_history must be >= hedge_min_samples")
        if self.slow_factor <= 1.0:
            raise ValueError("slow_factor must be > 1")
        if self.slow_windows < 1:
            raise ValueError("slow_windows must be >= 1")
        if self.warm_depth < 1:
            raise ValueError("warm_depth must be >= 1")


class ReplicaLink:
    """Router-side connection + accounting for one replica."""

    def __init__(self, endpoint: ReplicaEndpoint, config: RouterConfig) -> None:
        self.endpoint = endpoint
        self.health = ReplicaHealth(
            endpoint.replica_id,
            probe_fail_threshold=config.probe_fail_threshold,
            slow_windows=config.slow_windows,
        )
        # Router-level reroute is the retry mechanism: the per-link client
        # fails fast (retries=0) so a dead replica costs one timeout, not
        # a backoff loop against a corpse.
        self.client = RemoteClient(
            endpoint.host, endpoint.port,
            timeout_s=config.forward_timeout_s, retries=0,
            span_name="router.forward",
        )
        self.outstanding = 0      #: forwards currently in flight
        self.ok = 0               #: answered forwards (any terminal status)
        self.sheds = 0            #: SHED answers from this replica
        self.failures = 0         #: transport failures against this replica
        self.ewma_ms = 0.0        #: observed forward latency
        self.window_forwards = 0  #: forwards landed since the last probe pass
        self.last_health: dict = {}

    @property
    def replica_id(self) -> str:
        return self.endpoint.replica_id

    def observe_latency(self, ms: float) -> None:
        self.ewma_ms = (ms if self.ewma_ms == 0.0
                        else self.ewma_ms + _LATENCY_ALPHA * (ms - self.ewma_ms))

    def view(self) -> dict:
        """Router-side accounting for the ``fleet`` op and ``repro top``."""
        return {
            "replica": self.replica_id,
            "address": self.endpoint.address(),
            "state": self.health.state.value,
            "outstanding": self.outstanding,
            "answered": self.ok,
            "sheds": self.sheds,
            "failures": self.failures,
            "ewma_ms": round(self.ewma_ms, 3),
            "queue_depth": self.last_health.get("queue_depth"),
            "retry_after_ms": self.health.last_retry_after_ms,
        }

    async def close(self) -> None:
        await self.client.close()


class FleetRouter:
    """Consistent-hash frontend spreading one wire protocol over N replicas."""

    def __init__(
        self,
        endpoints: List[ReplicaEndpoint],
        config: Optional[RouterConfig] = None,
    ) -> None:
        self.config = config or RouterConfig()
        self.ring = HashRing(vnodes=self.config.vnodes, seed=self.config.seed)
        self._links: Dict[str, ReplicaLink] = {}
        self._tcp: Optional[asyncio.AbstractServer] = None
        self._probe_task: Optional[asyncio.Task] = None
        self._started = False
        self._metrics = get_registry()
        # Hedging state: recent forward latencies (fleet-wide) derive the
        # hedge delay; routed/fired counts enforce the rate cap.
        self._forward_ms: Deque[float] = deque(maxlen=self.config.hedge_history)
        self._routed = 0
        self._hedges_fired = 0
        self._reap_tasks: set = set()
        for endpoint in endpoints:
            self.add_replica(endpoint)

    # ------------------------------------------------------------ membership

    @property
    def links(self) -> Dict[str, ReplicaLink]:
        return self._links

    def add_replica(self, endpoint: ReplicaEndpoint) -> ReplicaLink:
        """Register a replica (autoscaler scale-up path); idempotent."""
        link = self._links.get(endpoint.replica_id)
        if link is not None:
            return link
        link = ReplicaLink(endpoint, self.config)
        self._links[endpoint.replica_id] = link
        self.ring.add(endpoint.replica_id)
        self._publish_membership()
        _log.info("replica registered", replica=endpoint.replica_id,
                  address=endpoint.address())
        return link

    async def remove_replica(self, replica_id: str) -> None:
        """Forget a replica (autoscaler scale-down / permanent failure)."""
        link = self._links.pop(replica_id, None)
        self.ring.remove(replica_id)
        self._publish_membership()
        if link is not None:
            await link.close()
            _log.info("replica removed", replica=replica_id)

    def mark_draining(self, replica_id: str) -> None:
        """Stop placing new lanes on a replica about to leave."""
        link = self._links.get(replica_id)
        if link is not None:
            link.health.mark_draining()
            self.ring.remove(replica_id)
            self._publish_membership()

    def _publish_membership(self) -> None:
        usable = sum(1 for l in self._links.values() if l.health.usable)
        self._metrics.gauge("fleet.replicas").set(float(len(self._links)))
        self._metrics.gauge("fleet.replicas_usable").set(float(usable))

    def _usable(self) -> List[ReplicaLink]:
        return [l for l in self._links.values() if l.health.usable]

    # ------------------------------------------------------------- lifecycle

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> "FleetRouter":
        if self._started:
            return self
        self._tcp = await asyncio.start_server(self._handle_connection,
                                               host, port)
        # Synchronous first probe: replicas register as STARTING (not
        # routable — the warm-up gate), so traffic arriving before the
        # first probe pass would shed against a fleet of warm replicas.
        await self.probe_once()
        self._probe_task = asyncio.create_task(self._probe_loop())
        self._started = True
        _log.info("router listening", host=host, port=self.port,
                  replicas=len(self._links))
        return self

    @property
    def port(self) -> Optional[int]:
        if self._tcp is None or not self._tcp.sockets:
            return None
        return self._tcp.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
            self._probe_task = None
        # Hedge losers still being reaped: let their cancel round-trips
        # finish (bounded by the per-link timeout) before closing links.
        if self._reap_tasks:
            await asyncio.gather(*list(self._reap_tasks),
                                 return_exceptions=True)
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        for link in self._links.values():
            await link.close()
        _log.info("router stopped")

    async def __aenter__(self) -> "FleetRouter":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ----------------------------------------------------------- health loop

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.probe_interval_s)
            await self.probe_once()

    async def probe_once(self) -> None:
        """One active health pass over every replica (also used by tests)."""
        async def probe(link: ReplicaLink) -> None:
            if link.health.state is ReplicaState.DRAINING:
                return
            try:
                payload = await asyncio.wait_for(
                    link.client.health(),
                    timeout=max(0.1, self.config.probe_interval_s * 4),
                )
            except (ConnectionError, asyncio.TimeoutError, OSError,
                    RuntimeError):
                was_usable = link.health.usable
                if link.health.record_probe(False) and was_usable:
                    self.ring.remove(link.replica_id)
                self._publish_membership()
                return
            link.last_health = payload
            # A warm-gated replica answers probes with ``warming: true``
            # while it pre-compiles its lanes: alive, but it must hold
            # STARTING (unroutable) — not be mistaken for draining.
            warming = bool(payload.get("warming"))
            draining = bool(payload.get("draining")) or (
                not warming and not payload.get("ready", True)
            )
            was_usable = link.health.usable
            link.health.record_probe(True, draining=draining, warming=warming)
            if link.health.usable and not was_usable:
                self.ring.add(link.replica_id)
            elif not link.health.usable and was_usable:
                self.ring.remove(link.replica_id)
            self._publish_membership()

        await asyncio.gather(*(probe(l) for l in list(self._links.values())))
        self._update_latency_windows()

    def _update_latency_windows(self) -> None:
        """One gray-failure pass: EWMA vs. robust peer median, per probe.

        Each replica is judged against ``max(slow_min_ms, slow_factor *
        median-of-its-PEERS)`` — a leave-one-out median over the other
        usable replicas that have served forwards.  Leaving the candidate
        out matters when few replicas carry traffic: with two active
        links, a fleet-wide median averages the outlier with its healthy
        peer and the bound chases the very latency it is supposed to
        catch (a 20×-slow replica in a pair would hide itself forever).
        Transitions carry ``slow_windows`` hysteresis in
        :class:`ReplicaHealth`.
        """
        sampled = [l for l in self._links.values()
                   if l.health.usable and l.ewma_ms > 0.0]
        if len(sampled) < 2:
            for link in self._links.values():
                link.window_forwards = 0
            return  # no peer group to be an outlier of
        self._metrics.gauge("fleet.latency.median_ms").set(
            statistics.median(l.ewma_ms for l in sampled))
        for link in sampled:
            peer_median = statistics.median(
                l.ewma_ms for l in sampled if l is not link)
            bound = max(self.config.slow_min_ms,
                        self.config.slow_factor * peer_median)
            # A window with no fresh forwards says nothing — the EWMA is
            # stale, and judging it would either persist SLOW forever on
            # old data or clear it without evidence.  Skipping leaves the
            # hysteresis streaks untouched; last-resort routing and
            # hedged backups provide the trickle that re-samples a SLOW
            # replica.
            if link.window_forwards == 0:
                continue
            outlier = link.ewma_ms > bound
            if link.health.record_latency_window(
                outlier, severe=link.ewma_ms > 2.0 * bound
            ):
                if link.health.state is ReplicaState.SLOW:
                    self._metrics.counter("fleet.slow_detections").inc()
                    _log.warning("gray failure: replica is a latency outlier",
                                 replica=link.replica_id,
                                 ewma_ms=f"{link.ewma_ms:.1f}",
                                 peer_median_ms=f"{peer_median:.1f}")
        for link in self._links.values():
            link.window_forwards = 0

    # --------------------------------------------------------------- routing

    @staticmethod
    def lane(key_canonical: str, int8: bool) -> str:
        """The placement lane: model identity plus plan flavor."""
        return f"{key_canonical}|int8" if int8 else key_canonical

    def candidates(self, lane: str) -> List[ReplicaLink]:
        """Forward order for one lane: primary, then fallbacks.

        Ring preference gives the sticky primary and deterministic
        fallback order; the least-loaded usable replica is promoted to
        the front when the primary's backlog crosses the spill bound.
        A replica the probe loop has taken off the ring can still appear
        usable for one pass (passive demotion races the probe) — filter
        on health, not ring membership.
        """
        order = [
            self._links[rid]
            for rid in self.ring.preference(lane)
            if rid in self._links and self._links[rid].health.usable
        ]
        # Draining/downed replicas are off the ring; pick up any usable
        # replica the ring does not know yet (just-resurrected).
        for link in self._usable():
            if link not in order:
                order.append(link)
        if not order:
            return []
        # Gray failures route last: a SLOW replica answers — eventually —
        # so it stays a valid last resort, but every healthy replica
        # outranks it (stable sort preserves ring order within each tier).
        order.sort(key=lambda l: l.health.state is ReplicaState.SLOW)
        spill = min(
            order[1:],
            key=lambda l: (l.health.state is ReplicaState.SLOW,
                           l.outstanding, l.replica_id),
            default=None,
        )
        if (spill is not None
                and order[0].outstanding >= self.config.spill_outstanding
                and spill.outstanding < order[0].outstanding):
            self._metrics.counter("fleet.spills").inc()
            order.remove(spill)
            order.insert(0, spill)
        return order[: self.config.max_attempts]

    async def _forward(
        self,
        link: ReplicaLink,
        request: InferenceRequest,
        envelope: dict,
        received: float,
        budget0: Optional[float],
    ) -> dict:
        """One forward attempt against one replica.

        Owns all per-link accounting (outstanding, EWMA, health) and the
        ``fleet.forward`` fault point (tagged with the replica id, so a
        chaos plan can stall exactly one replica's hop — the gray-failure
        drill).  Re-stamps the wire deadline budget with the router's own
        elapsed time subtracted.  Transport errors demote the replica and
        propagate to the caller's reroute loop.
        """
        link.outstanding += 1
        start = time.perf_counter()
        try:
            spec = should_fire("fleet.forward", tag=link.replica_id)
            if spec is not None:
                if spec.kind in ("delay", "stall"):
                    # The gray failure: this hop goes quiet for delay_ms
                    # without blocking any other forward on the loop.
                    await asyncio.sleep(spec.delay_ms / 1000.0)
                else:  # "error" / "kill": the hop dies as a transport error
                    raise ConnectionError("injected fleet.forward fault")
            if budget0 is not None:
                elapsed = (time.perf_counter() - received) * 1000.0
                request = replace(request, deadline_ms=budget0 - elapsed)
            reply = await link.client.request(
                request,
                return_output=bool(envelope.get("return_output")),
                timings=request.want_timings,
            )
        except (ConnectionError, asyncio.TimeoutError, OSError, RuntimeError):
            link.failures += 1
            if link.health.record_forward_failure():
                self.ring.remove(link.replica_id)
                self._publish_membership()
            raise
        finally:
            link.outstanding -= 1
        ms = (time.perf_counter() - start) * 1000.0
        link.ok += 1
        link.observe_latency(ms)
        link.window_forwards += 1
        self._forward_ms.append(ms)
        link.health.record_forward_ok()
        return reply

    # --------------------------------------------------------------- hedging

    def hedge_delay_ms(self) -> float:
        """How long the primary may be in flight before the backup fires.

        The p95 of recent forwards (fleet-wide): ~5% of healthy requests
        would hedge naturally, which is what the rate cap is calibrated
        to, while a gray-slow primary crosses it almost surely.  Clamped
        from above at ``slow_factor × p50`` — once a gray replica's
        stalled completions pollute the window, the raw p95 collapses
        toward the stall itself and a p95-delayed hedge would wait out
        the very latency it exists to cut; anything beyond the slow
        bound is by definition an outlier, so there is no point waiting
        longer than that before racing a backup.  Floored at
        ``hedge_floor_ms`` so microsecond-fast fleets do not hedge on
        scheduler jitter.  Infinite until enough samples exist.
        """
        if len(self._forward_ms) < self.config.hedge_min_samples:
            return float("inf")
        window = sorted(self._forward_ms)
        p95 = percentile(window, 95.0)
        p50 = percentile(window, 50.0)
        return max(self.config.hedge_floor_ms,
                   min(p95, self.config.slow_factor * p50))

    def _hedge_allowed(self, primary: ReplicaLink) -> bool:
        """May this first attempt race a backup if the primary dawdles?"""
        if not self.config.hedge:
            return False
        if len(self._forward_ms) < self.config.hedge_min_samples:
            return False
        if primary.health.state is ReplicaState.SLOW:
            # A known-slow primary is the case hedging exists for: the
            # rate cap must not strand its lanes behind a 20× hop.
            return True
        return (self._hedges_fired
                < self.config.hedge_rate_cap * max(1, self._routed))

    def _reap_loser(self, task: "asyncio.Task", link: ReplicaLink,
                    request_id: int) -> None:
        """Cancel + drain a hedge loser off the request path.

        Best-effort ``op: cancel`` frees the loser's queue slot if it is
        still queued; the awaited task consumes the eventual reply (or
        transport error) so nothing leaks.  The client never sees the
        loser — exactly-once responses hold regardless of what it says.
        """
        async def reap() -> None:
            try:
                await link.client.cancel(request_id)
            except (ConnectionError, asyncio.TimeoutError, OSError,
                    RuntimeError):
                pass
            try:
                await task
            except (ConnectionError, asyncio.TimeoutError, OSError,
                    RuntimeError):
                pass

        self._metrics.counter("fleet.hedge_cancels").inc()
        reaper = asyncio.create_task(reap())
        self._reap_tasks.add(reaper)
        reaper.add_done_callback(self._reap_tasks.discard)

    async def _forward_hedged(
        self,
        request: InferenceRequest,
        envelope: dict,
        primary: ReplicaLink,
        backup: ReplicaLink,
        received: float,
        budget0: Optional[float],
    ) -> Tuple[Optional[dict], Optional[ReplicaLink], bool]:
        """Race a backup against a dawdling primary; first answer wins.

        Returns ``(reply, served_link, hedge_fired)``.  ``reply`` is
        ``None`` when every attempt failed as a transport error (caller
        keeps rerouting).  When the hedge did not fire (primary answered
        or failed within the delay) the caller treats the outcome as a
        plain single attempt.
        """
        delay_s = self.hedge_delay_ms() / 1000.0
        primary_task = asyncio.ensure_future(
            self._forward(primary, request, envelope, received, budget0)
        )
        try:
            reply = await asyncio.wait_for(asyncio.shield(primary_task),
                                           delay_s)
            return reply, primary, False
        except asyncio.TimeoutError:
            if primary_task.done():
                # The *forward's own* timeout, not the hedge delay
                # (TimeoutError is ambiguous between the two): a plain
                # failure — reroute, no hedge.
                return None, None, False
        except (ConnectionError, OSError, RuntimeError):
            return None, None, False

        if budget0 is not None:
            remaining = budget0 - (time.perf_counter() - received) * 1000.0
            if remaining <= 0.0:
                # No deadline slack left to buy anything with: riding out
                # the primary is strictly better than doubling dead work.
                try:
                    return await primary_task, primary, False
                except (ConnectionError, asyncio.TimeoutError, OSError,
                        RuntimeError):
                    return None, None, False

        # The hedge fires: same request id on purpose — the replicas'
        # admission dedupe/cancel key and the exactly-once guarantee both
        # hang off it.
        backup_task = asyncio.ensure_future(
            self._forward(backup, replace(request), envelope, received,
                          budget0)
        )
        self._hedges_fired += 1
        self._metrics.counter("fleet.hedges").inc()
        _log.debug("hedge fired", request_id=request.request_id,
                   primary=primary.replica_id, backup=backup.replica_id,
                   delay_ms=f"{delay_s * 1000.0:.1f}")

        pending = {primary_task, backup_task}
        winner: Optional["asyncio.Task"] = None
        while pending and winner is None:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            # Prefer the primary on a photo finish (deterministic pick;
            # its reply is never staler than the backup's).
            for task in (primary_task, backup_task):
                if task in done and task.exception() is None \
                        and winner is None:
                    winner = task
        if winner is None:
            # Both failed.  Still a fired hedge that did not win:
            # fleet.hedges == hedge_wins + hedge_losses stays an identity.
            self._metrics.counter("fleet.hedge_losses").inc()
            return None, None, True
        if winner is backup_task:
            self._metrics.counter("fleet.hedge_wins").inc()
            loser_task, loser_link = primary_task, primary
        else:
            self._metrics.counter("fleet.hedge_losses").inc()
            loser_task, loser_link = backup_task, backup
        if not loser_task.done():
            self._reap_loser(loser_task, loser_link, request.request_id)
        return (winner.result(),
                backup if winner is backup_task else primary,
                True)

    async def _route_request(self, payload: dict, send) -> None:
        try:
            request, envelope = request_from_wire(payload)
        except (ValueError, KeyError, TypeError) as exc:
            self._metrics.counter("fleet.router.bad_requests").inc()
            await send({"id": payload.get("id"), "status": "error",
                        "error": f"bad request: {exc}"})
            return
        received = time.perf_counter()
        budget0 = request.deadline_ms  # client budget unspent at this hop

        with get_tracer().span(
            "router.request", category="fleet",
            ctx=SpanContext.from_wire(payload.get("trace")),
            new_trace=payload.get("trace") is None,
            request_id=request.request_id, model=request.key.canonical(),
        ) as span:
            if span.context is not None:
                request.trace = span.context
            lane = self.lane(request.key.canonical(), request.int8)
            order = self.candidates(lane)
            span.set(lane=lane, candidates=len(order))
            self._routed += 1

            reply: Optional[dict] = None
            served: Optional[ReplicaLink] = None
            shed_hints: List[float] = []
            attempts = 0
            hedged = False
            index = 0
            while index < len(order):
                link = order[index]
                backup = order[index + 1] if index + 1 < len(order) else None
                if index == 0 and backup is not None \
                        and self._hedge_allowed(link):
                    reply, served, fired = await self._forward_hedged(
                        request, envelope, link, backup, received, budget0)
                    hedged = hedged or fired
                    consumed = 2 if fired else 1
                    attempts += consumed
                    index += consumed
                else:
                    attempts += 1
                    index += 1
                    try:
                        reply = await self._forward(link, request, envelope,
                                                    received, budget0)
                        served = link
                    except (ConnectionError, asyncio.TimeoutError, OSError,
                            RuntimeError) as exc:
                        _log.warning("forward failed; rerouting",
                                     replica=link.replica_id, lane=lane,
                                     error=f"{type(exc).__name__}: {exc}")
                        reply = None
                if reply is None:
                    self._metrics.counter("fleet.reroutes").inc()
                    continue
                if reply.get("status") == Status.SHED.value:
                    assert served is not None
                    served.sheds += 1
                    hint = reply.get("retry_after_ms")
                    if hint is not None:
                        served.health.last_retry_after_ms = float(hint)
                        shed_hints.append(float(hint))
                    # Replica-aware shedding: one backend being full is
                    # not fleet overload — try the next candidate, and
                    # when ALL of them shed, answer with the router-level
                    # aggregate (min of this request's hints), not
                    # whichever hint the last replica happened to return.
                    if index < len(order):
                        self._metrics.counter("fleet.shed_retries").inc()
                    reply = None
                    served = None
                    continue
                break

            if reply is None:
                retry_after = self._aggregate_retry_after(shed_hints)
                self._metrics.counter("fleet.router.requests",
                                      status=Status.SHED.value).inc()
                self._metrics.counter("fleet.router.sheds").inc()
                span.set(outcome="shed", attempts=attempts)
                await send({
                    "id": envelope.get("id"),
                    "request_id": request.request_id,
                    "model": request.key.canonical(),
                    "status": Status.SHED.value,
                    "error": ("no usable replica" if not order
                              else "all replicas shedding"),
                    "retry_after_ms": round(retry_after, 3),
                    "router_shed": True,
                    **({"trace_id": span.context.trace_id}
                       if span.context is not None else {}),
                })
                return

            assert served is not None
            reply = dict(reply)
            reply["id"] = envelope.get("id")
            reply["replica"] = served.replica_id
            rerouted = attempts - (2 if hedged else 1)
            if rerouted > 0:
                reply["rerouted"] = rerouted
            if hedged:
                reply["hedged"] = True
            self._metrics.counter(
                "fleet.router.requests", status=str(reply.get("status"))
            ).inc()
            span.set(outcome=str(reply.get("status")),
                     replica=reply["replica"], attempts=attempts,
                     hedged=hedged)
            await send(reply)

    def _aggregate_retry_after(self, this_request_hints: List[float]) -> float:
        """The router-level SHED hint: soonest any backend expects room.

        Prefers the hints returned *on this request*; falls back to the
        last hints seen on any usable replica, then to a floor derived
        from the probe cadence (a downed replica is rediscovered within
        one probe interval).
        """
        if this_request_hints:
            return min(this_request_hints)
        seen = [l.health.last_retry_after_ms for l in self._links.values()
                if l.health.last_retry_after_ms is not None]
        if seen:
            return min(seen)
        return max(self.config.shed_retry_floor_ms,
                   self.config.probe_interval_s * 1000.0)

    # ------------------------------------------------------------- fleet ops

    def fleet_view(self) -> dict:
        """Router-side per-replica accounting (the ``fleet`` wire op)."""
        links = sorted(self._links.values(), key=lambda l: l.replica_id)
        delay = self.hedge_delay_ms()
        return {
            "role": "router",
            "ready": self._started,
            "replicas": [link.view() for link in links],
            "usable": sum(1 for l in links if l.health.usable),
            "total": len(links),
            "ring": {"vnodes": self.config.vnodes, "seed": self.config.seed,
                     "members": self.ring.replicas},
            "hedging": {
                "enabled": self.config.hedge,
                "fired": self._hedges_fired,
                "routed": self._routed,
                "delay_ms": (None if delay == float("inf")
                             else round(delay, 3)),
            },
        }

    def health(self) -> dict:
        """Fleet liveness: ready iff the router can place a request."""
        view = self.fleet_view()
        return {
            "status": "ok",
            "ready": self._started and view["usable"] > 0,
            "role": "router",
            "draining": False,
            "queue_depth": sum(l.outstanding for l in self._links.values()),
            "replicas": {l.replica_id: l.health.state.value
                         for l in self._links.values()},
            "usable": view["usable"],
            "total": view["total"],
        }

    async def telemetry_payload(self) -> dict:
        """Fleet telemetry: router view + every usable replica's own."""
        links = sorted(self._usable(), key=lambda l: l.replica_id)

        async def scrape(link: ReplicaLink) -> Optional[dict]:
            try:
                reply = await asyncio.wait_for(link.client.metrics(),
                                               timeout=5.0)
                return reply.get("telemetry")
            except (ConnectionError, asyncio.TimeoutError, OSError,
                    RuntimeError):
                return None

        scraped = await asyncio.gather(*(scrape(l) for l in links))
        return {
            "fleet": self.fleet_view(),
            "replicas": {
                link.replica_id: telemetry
                for link, telemetry in zip(links, scraped)
            },
        }

    # ------------------------------------------------------------ connection

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        self._metrics.counter("fleet.router.connections").inc()
        write_lock = asyncio.Lock()
        tasks = set()

        async def send(reply: dict) -> None:
            import json

            async with write_lock:
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()

        async def respond(line: bytes) -> None:
            import json

            try:
                payload = json.loads(line)
                if not isinstance(payload, dict):
                    raise ValueError(
                        f"expected an object, got {type(payload).__name__}")
            except ValueError as exc:
                self._metrics.counter("fleet.router.bad_requests").inc()
                await send({"status": "error",
                            "error": f"bad request: {exc}"})
                return
            op = payload.get("op")
            if op == "health":
                await send({"id": payload.get("id"), "op": "health",
                            **self.health()})
                return
            if op == "ping":
                await send({"id": payload.get("id"), "op": "pong"})
                return
            if op == "fleet":
                await send({"id": payload.get("id"), "op": "fleet",
                            **self.fleet_view()})
                return
            if op == "metrics":
                await send({"id": payload.get("id"), "op": "metrics",
                            "exposition": render_exposition(),
                            "telemetry": await self.telemetry_payload()})
                return
            await self._route_request(payload, send)

        buffer = bytearray()
        try:
            while True:
                try:
                    line = await _read_line(reader, buffer, MAX_LINE_BYTES)
                except ValueError as exc:
                    self._metrics.counter("fleet.router.bad_requests").inc()
                    await send({"status": "error",
                                "error": f"bad request: {exc}"})
                    continue
                if line is None:
                    break
                if not line:
                    continue
                task = asyncio.create_task(respond(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            _log.debug("router connection closed", peer=str(peer))
