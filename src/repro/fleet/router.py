"""The fleet router: one JSON-lines frontend over N replica servers.

:class:`FleetRouter` speaks exactly the serving wire protocol of
:mod:`repro.serve.transport` — a client cannot tell a router from a
single :class:`~repro.serve.server.InferenceServer` — and forwards every
inference request to one of N replicas:

* **placement** — consistent hash of the request's *lane* (ModelKey +
  plan flavor, the batcher's coalescing key) over the
  :class:`~repro.fleet.placement.HashRing`, so each model's compiled
  plans and cost-model calibration warm exactly one replica;
* **least-loaded fallback** — when the primary is saturated (outstanding
  forwards above ``spill_outstanding``) or unusable, the request spills
  to the least-loaded usable replica; ring order breaks ties so spills
  are sticky too;
* **rerouting** — a transport failure against a replica demotes it
  immediately (:class:`~repro.fleet.health.ReplicaHealth`) and the
  request is retried on the next candidate; the health probe loop
  resurrects replicas that answer again;
* **replica-aware shedding** — a replica's SHED is retried once on the
  least-loaded alternative; when every candidate sheds (or none is
  usable) the router sheds at its own level with a ``retry_after_ms``
  aggregated from the replicas' hints (their minimum — the soonest any
  backend expects capacity);
* **trace propagation** — the router joins the client's
  :class:`~repro.obs.context.SpanContext` and forwards its own, so a
  traced request renders as ``client.request → router.request →
  router.forward → transport.request → serve.admit → ...`` chains.

Control ops: ``health`` answers the *fleet* view (router readiness plus
per-replica states), ``metrics`` aggregates every usable replica's
telemetry next to the router's own, ``fleet`` returns the router-side
per-replica accounting without touching the network, and ``ping`` stays
a pure round-trip.  The router keeps no model state — replicas are
unaware of the fleet and can be plain ``repro serve`` processes.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs import get_logger, get_registry, get_tracer, render_exposition
from ..obs.context import SpanContext
from ..serve.request import Status
from ..serve.transport import (
    MAX_LINE_BYTES,
    RemoteClient,
    _read_line,
    request_from_wire,
)
from .health import ReplicaEndpoint, ReplicaHealth, ReplicaState
from .placement import HashRing

__all__ = ["RouterConfig", "ReplicaLink", "FleetRouter"]

_log = get_logger("fleet.router")

#: EWMA smoothing for the per-replica observed forward latency.
_LATENCY_ALPHA = 0.2


@dataclass
class RouterConfig:
    """Routing knobs (CLI flags on ``repro fleet`` map onto these)."""

    seed: int = 0                    #: ring seed (placement determinism)
    vnodes: int = 64                 #: ring virtual nodes per replica
    max_attempts: int = 3            #: distinct replicas tried per request
    spill_outstanding: int = 32      #: primary backlog that triggers spill
    forward_timeout_s: float = 30.0  #: per-attempt replica timeout
    probe_interval_s: float = 0.25   #: health probe cadence
    probe_fail_threshold: int = 2    #: probe failures before ``down``
    shed_retry_floor_ms: float = 25.0  #: retry hint when no replica gave one

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.spill_outstanding < 1:
            raise ValueError("spill_outstanding must be >= 1")


class ReplicaLink:
    """Router-side connection + accounting for one replica."""

    def __init__(self, endpoint: ReplicaEndpoint, config: RouterConfig) -> None:
        self.endpoint = endpoint
        self.health = ReplicaHealth(
            endpoint.replica_id,
            probe_fail_threshold=config.probe_fail_threshold,
        )
        # Router-level reroute is the retry mechanism: the per-link client
        # fails fast (retries=0) so a dead replica costs one timeout, not
        # a backoff loop against a corpse.
        self.client = RemoteClient(
            endpoint.host, endpoint.port,
            timeout_s=config.forward_timeout_s, retries=0,
            span_name="router.forward",
        )
        self.outstanding = 0      #: forwards currently in flight
        self.ok = 0               #: answered forwards (any terminal status)
        self.sheds = 0            #: SHED answers from this replica
        self.failures = 0         #: transport failures against this replica
        self.ewma_ms = 0.0        #: observed forward latency
        self.last_health: dict = {}

    @property
    def replica_id(self) -> str:
        return self.endpoint.replica_id

    def observe_latency(self, ms: float) -> None:
        self.ewma_ms = (ms if self.ewma_ms == 0.0
                        else self.ewma_ms + _LATENCY_ALPHA * (ms - self.ewma_ms))

    def view(self) -> dict:
        """Router-side accounting for the ``fleet`` op and ``repro top``."""
        return {
            "replica": self.replica_id,
            "address": self.endpoint.address(),
            "state": self.health.state.value,
            "outstanding": self.outstanding,
            "answered": self.ok,
            "sheds": self.sheds,
            "failures": self.failures,
            "ewma_ms": round(self.ewma_ms, 3),
            "queue_depth": self.last_health.get("queue_depth"),
            "retry_after_ms": self.health.last_retry_after_ms,
        }

    async def close(self) -> None:
        await self.client.close()


class FleetRouter:
    """Consistent-hash frontend spreading one wire protocol over N replicas."""

    def __init__(
        self,
        endpoints: List[ReplicaEndpoint],
        config: Optional[RouterConfig] = None,
    ) -> None:
        self.config = config or RouterConfig()
        self.ring = HashRing(vnodes=self.config.vnodes, seed=self.config.seed)
        self._links: Dict[str, ReplicaLink] = {}
        self._tcp: Optional[asyncio.AbstractServer] = None
        self._probe_task: Optional[asyncio.Task] = None
        self._started = False
        self._metrics = get_registry()
        for endpoint in endpoints:
            self.add_replica(endpoint)

    # ------------------------------------------------------------ membership

    @property
    def links(self) -> Dict[str, ReplicaLink]:
        return self._links

    def add_replica(self, endpoint: ReplicaEndpoint) -> ReplicaLink:
        """Register a replica (autoscaler scale-up path); idempotent."""
        link = self._links.get(endpoint.replica_id)
        if link is not None:
            return link
        link = ReplicaLink(endpoint, self.config)
        self._links[endpoint.replica_id] = link
        self.ring.add(endpoint.replica_id)
        self._publish_membership()
        _log.info("replica registered", replica=endpoint.replica_id,
                  address=endpoint.address())
        return link

    async def remove_replica(self, replica_id: str) -> None:
        """Forget a replica (autoscaler scale-down / permanent failure)."""
        link = self._links.pop(replica_id, None)
        self.ring.remove(replica_id)
        self._publish_membership()
        if link is not None:
            await link.close()
            _log.info("replica removed", replica=replica_id)

    def mark_draining(self, replica_id: str) -> None:
        """Stop placing new lanes on a replica about to leave."""
        link = self._links.get(replica_id)
        if link is not None:
            link.health.mark_draining()
            self.ring.remove(replica_id)
            self._publish_membership()

    def _publish_membership(self) -> None:
        usable = sum(1 for l in self._links.values() if l.health.usable)
        self._metrics.gauge("fleet.replicas").set(float(len(self._links)))
        self._metrics.gauge("fleet.replicas_usable").set(float(usable))

    def _usable(self) -> List[ReplicaLink]:
        return [l for l in self._links.values() if l.health.usable]

    # ------------------------------------------------------------- lifecycle

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> "FleetRouter":
        if self._started:
            return self
        self._tcp = await asyncio.start_server(self._handle_connection,
                                               host, port)
        self._probe_task = asyncio.create_task(self._probe_loop())
        self._started = True
        _log.info("router listening", host=host, port=self.port,
                  replicas=len(self._links))
        return self

    @property
    def port(self) -> Optional[int]:
        if self._tcp is None or not self._tcp.sockets:
            return None
        return self._tcp.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
            self._probe_task = None
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        for link in self._links.values():
            await link.close()
        _log.info("router stopped")

    async def __aenter__(self) -> "FleetRouter":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ----------------------------------------------------------- health loop

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.probe_interval_s)
            await self.probe_once()

    async def probe_once(self) -> None:
        """One active health pass over every replica (also used by tests)."""
        async def probe(link: ReplicaLink) -> None:
            if link.health.state is ReplicaState.DRAINING:
                return
            try:
                payload = await asyncio.wait_for(
                    link.client.health(),
                    timeout=max(0.1, self.config.probe_interval_s * 4),
                )
            except (ConnectionError, asyncio.TimeoutError, OSError,
                    RuntimeError):
                was_usable = link.health.usable
                if link.health.record_probe(False) and was_usable:
                    self.ring.remove(link.replica_id)
                self._publish_membership()
                return
            link.last_health = payload
            draining = bool(payload.get("draining")) or not payload.get(
                "ready", True
            )
            was_usable = link.health.usable
            link.health.record_probe(True, draining=draining)
            if link.health.usable and not was_usable:
                self.ring.add(link.replica_id)
            elif not link.health.usable and was_usable:
                self.ring.remove(link.replica_id)
            self._publish_membership()

        await asyncio.gather(*(probe(l) for l in list(self._links.values())))

    # --------------------------------------------------------------- routing

    @staticmethod
    def lane(key_canonical: str, int8: bool) -> str:
        """The placement lane: model identity plus plan flavor."""
        return f"{key_canonical}|int8" if int8 else key_canonical

    def candidates(self, lane: str) -> List[ReplicaLink]:
        """Forward order for one lane: primary, then fallbacks.

        Ring preference gives the sticky primary and deterministic
        fallback order; the least-loaded usable replica is promoted to
        the front when the primary's backlog crosses the spill bound.
        A replica the probe loop has taken off the ring can still appear
        usable for one pass (passive demotion races the probe) — filter
        on health, not ring membership.
        """
        order = [
            self._links[rid]
            for rid in self.ring.preference(lane)
            if rid in self._links and self._links[rid].health.usable
        ]
        # Draining/downed replicas are off the ring; pick up any usable
        # replica the ring does not know yet (just-resurrected).
        for link in self._usable():
            if link not in order:
                order.append(link)
        if not order:
            return []
        spill = min(order[1:], key=lambda l: (l.outstanding, l.replica_id),
                    default=None)
        if (spill is not None
                and order[0].outstanding >= self.config.spill_outstanding
                and spill.outstanding < order[0].outstanding):
            self._metrics.counter("fleet.spills").inc()
            order.remove(spill)
            order.insert(0, spill)
        return order[: self.config.max_attempts]

    async def _route_request(self, payload: dict, send) -> None:
        try:
            request, envelope = request_from_wire(payload)
        except (ValueError, KeyError, TypeError) as exc:
            self._metrics.counter("fleet.router.bad_requests").inc()
            await send({"id": payload.get("id"), "status": "error",
                        "error": f"bad request: {exc}"})
            return

        with get_tracer().span(
            "router.request", category="fleet",
            ctx=SpanContext.from_wire(payload.get("trace")),
            new_trace=payload.get("trace") is None,
            request_id=request.request_id, model=request.key.canonical(),
        ) as span:
            if span.context is not None:
                request.trace = span.context
            lane = self.lane(request.key.canonical(), request.int8)
            order = self.candidates(lane)
            span.set(lane=lane, candidates=len(order))

            reply: Optional[dict] = None
            shed_hints: List[float] = []
            attempts = 0
            for link in order:
                attempts += 1
                link.outstanding += 1
                start = time.perf_counter()
                try:
                    reply = await link.client.request(
                        request,
                        return_output=bool(envelope.get("return_output")),
                        timings=request.want_timings,
                    )
                except (ConnectionError, asyncio.TimeoutError, OSError,
                        RuntimeError) as exc:
                    link.failures += 1
                    if link.health.record_forward_failure():
                        self.ring.remove(link.replica_id)
                        self._publish_membership()
                    self._metrics.counter("fleet.reroutes").inc()
                    _log.warning("forward failed; rerouting",
                                 replica=link.replica_id, lane=lane,
                                 error=f"{type(exc).__name__}: {exc}")
                    continue
                finally:
                    link.outstanding -= 1
                link.ok += 1
                link.observe_latency((time.perf_counter() - start) * 1000.0)
                link.health.record_forward_ok()
                if reply.get("status") == Status.SHED.value:
                    link.sheds += 1
                    hint = reply.get("retry_after_ms")
                    if hint is not None:
                        link.health.last_retry_after_ms = float(hint)
                        shed_hints.append(float(hint))
                    # Replica-aware shedding: one backend being full is
                    # not fleet overload — try the next candidate before
                    # giving the client a retry-after.
                    if attempts < len(order):
                        self._metrics.counter("fleet.shed_retries").inc()
                        reply = None
                        continue
                break

            if reply is None:
                retry_after = self._aggregate_retry_after(shed_hints)
                self._metrics.counter("fleet.router.requests",
                                      status=Status.SHED.value).inc()
                self._metrics.counter("fleet.router.sheds").inc()
                span.set(outcome="shed", attempts=attempts)
                await send({
                    "id": envelope.get("id"),
                    "request_id": request.request_id,
                    "model": request.key.canonical(),
                    "status": Status.SHED.value,
                    "error": ("no usable replica" if not order
                              else "all replicas shedding"),
                    "retry_after_ms": round(retry_after, 3),
                    "router_shed": True,
                    **({"trace_id": span.context.trace_id}
                       if span.context is not None else {}),
                })
                return

            reply = dict(reply)
            reply["id"] = envelope.get("id")
            reply["replica"] = order[attempts - 1].replica_id
            if attempts > 1:
                reply["rerouted"] = attempts - 1
            self._metrics.counter(
                "fleet.router.requests", status=str(reply.get("status"))
            ).inc()
            span.set(outcome=str(reply.get("status")),
                     replica=reply["replica"], attempts=attempts)
            await send(reply)

    def _aggregate_retry_after(self, this_request_hints: List[float]) -> float:
        """The router-level SHED hint: soonest any backend expects room.

        Prefers the hints returned *on this request*; falls back to the
        last hints seen on any usable replica, then to a floor derived
        from the probe cadence (a downed replica is rediscovered within
        one probe interval).
        """
        if this_request_hints:
            return min(this_request_hints)
        seen = [l.health.last_retry_after_ms for l in self._links.values()
                if l.health.last_retry_after_ms is not None]
        if seen:
            return min(seen)
        return max(self.config.shed_retry_floor_ms,
                   self.config.probe_interval_s * 1000.0)

    # ------------------------------------------------------------- fleet ops

    def fleet_view(self) -> dict:
        """Router-side per-replica accounting (the ``fleet`` wire op)."""
        links = sorted(self._links.values(), key=lambda l: l.replica_id)
        return {
            "role": "router",
            "ready": self._started,
            "replicas": [link.view() for link in links],
            "usable": sum(1 for l in links if l.health.usable),
            "total": len(links),
            "ring": {"vnodes": self.config.vnodes, "seed": self.config.seed,
                     "members": self.ring.replicas},
        }

    def health(self) -> dict:
        """Fleet liveness: ready iff the router can place a request."""
        view = self.fleet_view()
        return {
            "status": "ok",
            "ready": self._started and view["usable"] > 0,
            "role": "router",
            "draining": False,
            "queue_depth": sum(l.outstanding for l in self._links.values()),
            "replicas": {l.replica_id: l.health.state.value
                         for l in self._links.values()},
            "usable": view["usable"],
            "total": view["total"],
        }

    async def telemetry_payload(self) -> dict:
        """Fleet telemetry: router view + every usable replica's own."""
        links = sorted(self._usable(), key=lambda l: l.replica_id)

        async def scrape(link: ReplicaLink) -> Optional[dict]:
            try:
                reply = await asyncio.wait_for(link.client.metrics(),
                                               timeout=5.0)
                return reply.get("telemetry")
            except (ConnectionError, asyncio.TimeoutError, OSError,
                    RuntimeError):
                return None

        scraped = await asyncio.gather(*(scrape(l) for l in links))
        return {
            "fleet": self.fleet_view(),
            "replicas": {
                link.replica_id: telemetry
                for link, telemetry in zip(links, scraped)
            },
        }

    # ------------------------------------------------------------ connection

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        self._metrics.counter("fleet.router.connections").inc()
        write_lock = asyncio.Lock()
        tasks = set()

        async def send(reply: dict) -> None:
            import json

            async with write_lock:
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()

        async def respond(line: bytes) -> None:
            import json

            try:
                payload = json.loads(line)
                if not isinstance(payload, dict):
                    raise ValueError(
                        f"expected an object, got {type(payload).__name__}")
            except ValueError as exc:
                self._metrics.counter("fleet.router.bad_requests").inc()
                await send({"status": "error",
                            "error": f"bad request: {exc}"})
                return
            op = payload.get("op")
            if op == "health":
                await send({"id": payload.get("id"), "op": "health",
                            **self.health()})
                return
            if op == "ping":
                await send({"id": payload.get("id"), "op": "pong"})
                return
            if op == "fleet":
                await send({"id": payload.get("id"), "op": "fleet",
                            **self.fleet_view()})
                return
            if op == "metrics":
                await send({"id": payload.get("id"), "op": "metrics",
                            "exposition": render_exposition(),
                            "telemetry": await self.telemetry_payload()})
                return
            await self._route_request(payload, send)

        buffer = bytearray()
        try:
            while True:
                try:
                    line = await _read_line(reader, buffer, MAX_LINE_BYTES)
                except ValueError as exc:
                    self._metrics.counter("fleet.router.bad_requests").inc()
                    await send({"status": "error",
                                "error": f"bad request: {exc}"})
                    continue
                if line is None:
                    break
                if not line:
                    continue
                task = asyncio.create_task(respond(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            _log.debug("router connection closed", peer=str(peer))
