"""Autoscaling: grow and shrink the fleet from live telemetry.

Split in the standard way so the interesting part is testable without a
fleet:

* :func:`price_capacity_qps` — what one replica is *worth*, priced by
  the :class:`~repro.serve.costmodel.BatchCostModel`: a replica with
  ``workers`` executors running full batches of ``max_batch`` whose
  predicted wall latency is ``predicted_wall_ms(max_batch)`` sustains
  ``workers * max_batch * 1000 / wall_ms`` requests per second.  The
  cost model's calibration (wall/simulated EWMA) keeps this honest as
  the run warms up.
* :class:`AutoscalerPolicy` — a pure, deterministic decision function
  over one :class:`FleetSnapshot`: scale **up** when observed fleet
  utilization crosses ``target_utilization`` or replicas shed, scale
  **down** only after ``patience_ticks`` consecutive low-utilization
  samples (sheds reset the streak), and never act twice within
  ``cooldown_ticks``.  Hysteresis lives here, in one place.
* :class:`Autoscaler` — the actuator loop: samples the router's
  per-replica accounting, asks the policy, and applies the decision via
  the :class:`~repro.fleet.supervisor.FleetSupervisor` (spawn on up,
  drain on down) and the router's membership API.

Scale-down drains the highest-numbered replica: replica ids are stable
(``r0``, ``r1``, ...), so shrinking from the top end means the surviving
replicas keep exactly the ring positions — and warm plan caches — they
already had.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..obs import get_logger, get_registry
from ..serve.costmodel import BatchCostModel
from ..serve.registry import RegisteredModel

__all__ = [
    "price_capacity_qps",
    "ReplicaSample",
    "FleetSnapshot",
    "ScaleDecision",
    "AutoscalerPolicy",
    "Autoscaler",
]

_log = get_logger("fleet.autoscaler")


def price_capacity_qps(
    cost_model: BatchCostModel,
    model: RegisteredModel,
    workers: int,
    max_batch: int,
    flavor: str = "float",
) -> float:
    """Sustained QPS one replica should manage on ``model`` at full batch."""
    wall_ms = cost_model.predicted_wall_ms(model, batch=max_batch,
                                           flavor=flavor)
    if wall_ms <= 0:
        return float("inf")
    return workers * max_batch * 1000.0 / wall_ms


@dataclass(frozen=True)
class ReplicaSample:
    """One replica's slice of a snapshot interval (router-side deltas)."""

    replica_id: str
    usable: bool
    outstanding: int = 0
    queue_depth: int = 0
    answered_delta: int = 0   #: forwards answered this interval
    sheds_delta: int = 0      #: SHED answers this interval


@dataclass(frozen=True)
class FleetSnapshot:
    """What the policy sees: one interval of fleet-wide load."""

    interval_s: float
    replicas: Tuple[ReplicaSample, ...]
    capacity_qps: float       #: priced per-replica capacity

    @property
    def usable(self) -> int:
        return sum(1 for r in self.replicas if r.usable)

    @property
    def qps(self) -> float:
        if self.interval_s <= 0:
            return 0.0
        return sum(r.answered_delta for r in self.replicas) / self.interval_s

    @property
    def shed_rate(self) -> float:
        answered = sum(r.answered_delta for r in self.replicas)
        sheds = sum(r.sheds_delta for r in self.replicas)
        total = answered + sheds
        return sheds / total if total else 0.0

    @property
    def utilization(self) -> float:
        """Observed fleet QPS over priced usable capacity (0 with no fleet)."""
        capacity = self.usable * self.capacity_qps
        if capacity <= 0 or capacity == float("inf"):
            return 0.0
        return self.qps / capacity


@dataclass(frozen=True)
class ScaleDecision:
    action: str               #: up | down | hold
    reason: str
    utilization: float = 0.0
    shed_rate: float = 0.0


class AutoscalerPolicy:
    """Pure scaling policy with hysteresis; deterministic tick-by-tick."""

    def __init__(
        self,
        min_replicas: int = 1,
        max_replicas: int = 8,
        target_utilization: float = 0.7,
        low_utilization: float = 0.3,
        shed_rate_up: float = 0.01,
        patience_ticks: int = 3,
        cooldown_ticks: int = 2,
    ) -> None:
        if not 1 <= min_replicas <= max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not 0.0 < low_utilization < target_utilization <= 1.0:
            raise ValueError("need 0 < low_utilization < target_utilization <= 1")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.target_utilization = target_utilization
        self.low_utilization = low_utilization
        self.shed_rate_up = shed_rate_up
        self.patience_ticks = patience_ticks
        self.cooldown_ticks = cooldown_ticks
        self._low_streak = 0
        self._cooldown = 0

    def decide(self, snapshot: FleetSnapshot) -> ScaleDecision:
        utilization = snapshot.utilization
        shed_rate = snapshot.shed_rate
        usable = snapshot.usable

        def hold(reason: str) -> ScaleDecision:
            return ScaleDecision("hold", reason, utilization, shed_rate)

        if self._cooldown > 0:
            self._cooldown -= 1
            return hold(f"cooldown ({self._cooldown + 1} ticks left)")

        if usable < self.min_replicas:
            self._low_streak = 0
            self._cooldown = self.cooldown_ticks
            return ScaleDecision("up", f"below min_replicas={self.min_replicas}",
                                 utilization, shed_rate)

        overloaded = (shed_rate > self.shed_rate_up
                      or utilization > self.target_utilization)
        if overloaded:
            self._low_streak = 0
            if usable >= self.max_replicas:
                return hold(f"overloaded but at max_replicas={self.max_replicas}")
            self._cooldown = self.cooldown_ticks
            why = (f"shed_rate={shed_rate:.3f}" if shed_rate > self.shed_rate_up
                   else f"utilization={utilization:.2f}"
                        f">{self.target_utilization:.2f}")
            return ScaleDecision("up", why, utilization, shed_rate)

        if utilization < self.low_utilization and shed_rate == 0.0:
            self._low_streak += 1
            if usable <= self.min_replicas:
                self._low_streak = 0
                return hold(f"idle but at min_replicas={self.min_replicas}")
            if self._low_streak >= self.patience_ticks:
                self._low_streak = 0
                self._cooldown = self.cooldown_ticks
                return ScaleDecision(
                    "down",
                    f"utilization<{self.low_utilization:.2f} "
                    f"for {self.patience_ticks} ticks",
                    utilization, shed_rate,
                )
            return hold(f"low streak {self._low_streak}/{self.patience_ticks}")

        self._low_streak = 0
        return hold("within band")


class Autoscaler:
    """The loop: router accounting → snapshot → policy → supervisor."""

    def __init__(
        self,
        router,                 #: FleetRouter (untyped to avoid the cycle)
        supervisor,             #: FleetSupervisor
        capacity_qps: float,
        policy: Optional[AutoscalerPolicy] = None,
        interval_s: float = 1.0,
        warm: bool = True,
    ) -> None:
        self.router = router
        self.supervisor = supervisor
        self.capacity_qps = capacity_qps
        self.policy = policy or AutoscalerPolicy()
        self.interval_s = interval_s
        #: Spawn scale-ups behind the warm-up gate (cold-plan protection).
        self.warm = warm
        self._last: dict = {}       # replica_id -> (answered, sheds)
        self._task: Optional[asyncio.Task] = None
        self._metrics = get_registry()
        self.decisions: list = []   #: applied (tick, decision) log

    # --------------------------------------------------------------- sampling

    def sample(self, interval_s: Optional[float] = None) -> FleetSnapshot:
        """Snapshot the router's per-replica counters as interval deltas."""
        samples = []
        for link in self.router.links.values():
            answered, sheds = link.ok, link.sheds
            last_answered, last_sheds = self._last.get(link.replica_id, (0, 0))
            self._last[link.replica_id] = (answered, sheds)
            samples.append(ReplicaSample(
                replica_id=link.replica_id,
                usable=link.health.usable,
                outstanding=link.outstanding,
                queue_depth=int(link.last_health.get("queue_depth") or 0),
                answered_delta=max(0, answered - last_answered),
                sheds_delta=max(0, sheds - last_sheds),
            ))
        return FleetSnapshot(
            interval_s=interval_s if interval_s is not None else self.interval_s,
            replicas=tuple(sorted(samples, key=lambda s: s.replica_id)),
            capacity_qps=self.capacity_qps,
        )

    # ------------------------------------------------------------------- tick

    async def tick(self, snapshot: Optional[FleetSnapshot] = None) -> ScaleDecision:
        """One sample → decide → apply step (the loop body; tests call it)."""
        snapshot = snapshot or self.sample()
        decision = self.policy.decide(snapshot)
        self._metrics.gauge("fleet.autoscaler.utilization").set(
            decision.utilization)
        self._metrics.gauge("fleet.autoscaler.shed_rate").set(
            decision.shed_rate)
        if decision.action == "up":
            await self._scale_up(decision)
        elif decision.action == "down":
            await self._scale_down(decision)
        self.decisions.append(decision)
        return decision

    async def _scale_up(self, decision: ScaleDecision) -> None:
        # Warm-up gate: the new replica spawns behind ``require_warmup``
        # and registers as STARTING (unroutable).  It pre-compiles the
        # lanes the ring assigns it before its health flips ready, so
        # scale-up traffic never lands on a cold plan (docs/robustness.md
        # — the gray-chaos drill asserts zero compiles after the gate).
        from .warmup import warm_replica

        endpoint = await self.supervisor.spawn(warm=self.warm)
        self.router.add_replica(endpoint)
        if self.warm:
            try:
                await warm_replica(self.router, endpoint.replica_id,
                                   serve_config=self.supervisor.base_config)
            except (ConnectionError, asyncio.TimeoutError, OSError,
                    RuntimeError, KeyError) as exc:
                # A replica that cannot warm stays STARTING (unroutable);
                # the fleet is no worse off than before the scale-up.
                _log.warning("scale-up warm-up failed",
                             replica=endpoint.replica_id,
                             error=f"{type(exc).__name__}: {exc}")
        else:
            await self.router.probe_once()
        self._metrics.counter("fleet.autoscaler.scale_ups").inc()
        _log.info("scaled up", replica=endpoint.replica_id,
                  reason=decision.reason,
                  utilization=round(decision.utilization, 3))

    async def _scale_down(self, decision: ScaleDecision) -> None:
        # Anything not already dead or leaving is a candidate — including
        # a still-STARTING replica (unroutable is not unretirable; a fleet
        # that scaled up into a warm-up failure must be able to back out).
        from .health import ReplicaState

        candidates = [
            rid for rid, link in self.router.links.items()
            if link.health.state not in (ReplicaState.DOWN,
                                         ReplicaState.DRAINING)
        ]
        if not candidates:
            return
        # Highest id leaves: survivors keep their ring arcs (see module doc).
        victim = max(candidates)
        self.router.mark_draining(victim)
        await self.supervisor.drain(victim)
        await self.router.remove_replica(victim)
        self._last.pop(victim, None)
        self._metrics.counter("fleet.autoscaler.scale_downs").inc()
        _log.info("scaled down", replica=victim, reason=decision.reason,
                  utilization=round(decision.utilization, 3))

    # ------------------------------------------------------------------- loop

    async def _loop(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            await self.tick()

    def start(self) -> "Autoscaler":
        if self._task is None:
            self._task = asyncio.create_task(self._loop())
        return self

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
