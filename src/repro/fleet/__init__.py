"""repro.fleet — the distributed serving fleet above :mod:`repro.serve`.

One node (PRs 3–7) batches, schedules, compiles, and traces; this
package scales it out: N :class:`~repro.serve.server.InferenceServer`
replicas behind one :class:`~repro.fleet.router.FleetRouter` frontend
speaking the same JSON-lines wire protocol, with consistent-hash
placement (:mod:`~repro.fleet.placement`), replica health tracking
(:mod:`~repro.fleet.health`), lifecycle supervision
(:mod:`~repro.fleet.supervisor`), cost-model-priced autoscaling
(:mod:`~repro.fleet.autoscaler`) and fleet-wide chaos
(:mod:`~repro.fleet.chaos`).  ``docs/fleet.md`` is the narrative tour.
"""

from .autoscaler import (
    Autoscaler,
    AutoscalerPolicy,
    FleetSnapshot,
    ReplicaSample,
    ScaleDecision,
    price_capacity_qps,
)
from .chaos import (
    FleetChaosReport,
    GrayChaosReport,
    run_fleet_chaos,
    run_gray_chaos,
)
from .health import ReplicaEndpoint, ReplicaHealth, ReplicaState
from .placement import DEFAULT_VNODES, HashRing
from .router import FleetRouter, ReplicaLink, RouterConfig
from .supervisor import FleetSupervisor, ReplicaHandle, free_port
from .warmup import assigned_lanes, lane_specs, warm_replica

__all__ = [
    "Autoscaler",
    "AutoscalerPolicy",
    "FleetSnapshot",
    "ReplicaSample",
    "ScaleDecision",
    "price_capacity_qps",
    "FleetChaosReport",
    "GrayChaosReport",
    "run_fleet_chaos",
    "run_gray_chaos",
    "ReplicaEndpoint",
    "ReplicaHealth",
    "ReplicaState",
    "DEFAULT_VNODES",
    "HashRing",
    "FleetRouter",
    "ReplicaLink",
    "RouterConfig",
    "FleetSupervisor",
    "ReplicaHandle",
    "free_port",
    "assigned_lanes",
    "lane_specs",
    "warm_replica",
]
