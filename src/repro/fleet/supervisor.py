"""Replica lifecycle: spawn, drain, and kill N inference servers.

The supervisor owns the replicas so the router does not have to — the
router only sees :class:`~repro.fleet.health.ReplicaEndpoint` addresses
and learns everything else from probes.  Two modes:

* **inproc** (default for tests, chaos, and the smoke benchmark) — each
  replica is a full :class:`~repro.serve.server.InferenceServer` plus a
  real TCP listener *in this process*.  Replicas still talk JSON lines
  over loopback sockets, so the router path under test is byte-for-byte
  the production path; only the process boundary is elided.  Note that
  in-process replicas share the process-global metrics registry — the
  router's own per-replica accounting (``op: fleet``) is the per-replica
  view in this mode.
* **process** — each replica is a ``python -m repro serve`` child with
  its own interpreter, registry, and telemetry.  This is what ``repro
  fleet`` launches so ``repro top --fleet`` can show true per-replica
  gauges.

``kill()`` is deliberately violent in both modes: connections are
aborted (RST, not FIN) and queued work is dropped without drain, because
the fleet chaos suite (:mod:`repro.fleet.chaos`) needs a realistic crash
for the router to reroute around.  ``drain()`` is the graceful opposite
used by the autoscaler's scale-down path.
"""

from __future__ import annotations

import asyncio
import signal
import socket
import sys
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..obs import get_logger, get_registry
from ..serve.server import InferenceServer, ServeConfig
from ..serve.transport import MAX_LINE_BYTES, _handle_connection
from .health import ReplicaEndpoint

__all__ = ["ReplicaHandle", "FleetSupervisor", "free_port"]

_log = get_logger("fleet.supervisor")


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (race-y by nature; fine for tests/CLI)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


@dataclass
class ReplicaHandle:
    """One live replica as the supervisor sees it."""

    endpoint: ReplicaEndpoint
    mode: str                                   #: inproc | process
    server: Optional[InferenceServer] = None    #: inproc only
    tcp: Optional[asyncio.AbstractServer] = None
    process: Optional[asyncio.subprocess.Process] = None
    connections: Optional[set] = None           #: inproc: open writers

    @property
    def replica_id(self) -> str:
        return self.endpoint.replica_id

    @property
    def alive(self) -> bool:
        if self.mode == "process":
            return self.process is not None and self.process.returncode is None
        return self.server is not None


class FleetSupervisor:
    """Spawns and retires replicas; the autoscaler's actuator."""

    def __init__(
        self,
        base_config: Optional[ServeConfig] = None,
        host: str = "127.0.0.1",
        mode: str = "inproc",
        serve_argv: Optional[List[str]] = None,
    ) -> None:
        if mode not in ("inproc", "process"):
            raise ValueError(f"mode must be inproc|process, got {mode!r}")
        self.base_config = base_config or ServeConfig()
        self.host = host
        self.mode = mode
        #: ``repro serve`` argv tail for process replicas (models + flags);
        #: host/port are appended per replica.
        self.serve_argv = list(serve_argv or [])
        self._replicas: Dict[str, ReplicaHandle] = {}
        self._next_index = 0
        self._metrics = get_registry()

    # -------------------------------------------------------------- inventory

    @property
    def replicas(self) -> Dict[str, ReplicaHandle]:
        return self._replicas

    def __len__(self) -> int:
        return len(self._replicas)

    def next_replica_id(self) -> str:
        rid = f"r{self._next_index}"
        self._next_index += 1
        return rid

    # ------------------------------------------------------------------ spawn

    async def spawn(
        self,
        replica_id: Optional[str] = None,
        config: Optional[ServeConfig] = None,
        warm: bool = False,
    ) -> ReplicaEndpoint:
        """Start one replica and return its endpoint (ready to serve).

        ``warm=True`` spawns it behind the warm-up gate: health reports
        ``warming: true`` (the router holds it unroutable in STARTING)
        until someone — normally :func:`repro.fleet.warmup.warm_replica`
        via the autoscaler — drives its ``op: warmup``.
        """
        rid = replica_id or self.next_replica_id()
        if rid in self._replicas:
            raise ValueError(f"replica {rid!r} already exists")
        if self.mode == "inproc":
            if warm and config is None:
                config = replace(self.base_config, require_warmup=True)
            handle = await self._spawn_inproc(rid, config)
        else:
            handle = await self._spawn_process(rid, warm=warm)
        self._replicas[rid] = handle
        self._metrics.counter("fleet.replicas_spawned").inc()
        _log.info("replica spawned", replica=rid, mode=self.mode,
                  address=handle.endpoint.address())
        return handle.endpoint

    async def _spawn_inproc(
        self, rid: str, config: Optional[ServeConfig]
    ) -> ReplicaHandle:
        # dataclasses.replace gives each replica its own config object so
        # the autoscaler can tune one replica without aliasing the rest.
        server = InferenceServer(config or replace(self.base_config))
        await server.start()
        connections: set = set()

        async def handler(reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
            # Track writers so kill() can abort() them: Python 3.11 has no
            # Server.close_clients(), and a graceful close would FIN the
            # socket — a crash must look like a crash to the router.
            connections.add(writer)
            try:
                await _handle_connection(server, reader, writer,
                                         MAX_LINE_BYTES)
            finally:
                connections.discard(writer)

        tcp = await asyncio.start_server(handler, self.host, 0)
        port = tcp.sockets[0].getsockname()[1]
        return ReplicaHandle(
            endpoint=ReplicaEndpoint(rid, self.host, port),
            mode="inproc", server=server, tcp=tcp, connections=connections,
        )

    async def _spawn_process(self, rid: str, warm: bool = False) -> ReplicaHandle:
        port = free_port(self.host)
        argv = [sys.executable, "-m", "repro", "serve", *self.serve_argv,
                "--host", self.host, "--port", str(port)]
        if warm:
            argv.append("--require-warmup")
        process = await asyncio.create_subprocess_exec(
            *argv,
            stdout=asyncio.subprocess.DEVNULL,
            stderr=asyncio.subprocess.DEVNULL,
        )
        endpoint = ReplicaEndpoint(rid, self.host, port)
        await self._wait_ready(endpoint, process)
        return ReplicaHandle(endpoint=endpoint, mode="process",
                             process=process)

    async def _wait_ready(
        self,
        endpoint: ReplicaEndpoint,
        process: asyncio.subprocess.Process,
        timeout_s: float = 60.0,
    ) -> None:
        from ..serve.transport import RemoteClient

        deadline = asyncio.get_running_loop().time() + timeout_s
        while True:
            if process.returncode is not None:
                raise RuntimeError(
                    f"replica {endpoint.replica_id} exited during startup "
                    f"(rc={process.returncode})"
                )
            try:
                client = RemoteClient(endpoint.host, endpoint.port,
                                      timeout_s=2.0)
                try:
                    payload = await client.health()
                    # A warm-gated replica reports ready: false until its
                    # op: warmup ran — it IS up as far as spawning goes;
                    # the router keeps it unroutable until warmed.
                    if payload.get("ready") or payload.get("warming"):
                        return
                finally:
                    await client.close()
            except (ConnectionError, asyncio.TimeoutError, OSError):
                pass
            if asyncio.get_running_loop().time() > deadline:
                process.kill()
                raise TimeoutError(
                    f"replica {endpoint.replica_id} not ready "
                    f"after {timeout_s}s"
                )
            await asyncio.sleep(0.1)

    # ----------------------------------------------------------------- retire

    async def kill(self, replica_id: str) -> None:
        """Crash a replica: abort connections, drop queued work.

        The chaos path — the router must discover the death through
        failed forwards/probes, exactly as with a real process crash.
        """
        handle = self._replicas.pop(replica_id, None)
        if handle is None:
            return
        self._metrics.counter("fleet.replicas_killed").inc()
        if handle.mode == "process":
            assert handle.process is not None
            if handle.process.returncode is None:
                handle.process.kill()
                await handle.process.wait()
        else:
            if handle.tcp is not None:
                handle.tcp.close()
                await handle.tcp.wait_closed()
            for writer in list(handle.connections or ()):
                transport = writer.transport
                if transport is not None:
                    transport.abort()
            if handle.server is not None:
                await handle.server.stop(drain=False)
        _log.info("replica killed", replica=replica_id)

    async def drain(self, replica_id: str) -> None:
        """Gracefully retire a replica (autoscaler scale-down)."""
        handle = self._replicas.pop(replica_id, None)
        if handle is None:
            return
        self._metrics.counter("fleet.replicas_drained").inc()
        if handle.mode == "process":
            assert handle.process is not None
            if handle.process.returncode is None:
                handle.process.send_signal(signal.SIGINT)
                try:
                    await asyncio.wait_for(handle.process.wait(), timeout=30.0)
                except asyncio.TimeoutError:
                    handle.process.kill()
                    await handle.process.wait()
        else:
            if handle.tcp is not None:
                handle.tcp.close()
                await handle.tcp.wait_closed()
            if handle.server is not None:
                await handle.server.stop(drain=True)
            for writer in list(handle.connections or ()):
                writer.close()
        _log.info("replica drained", replica=replica_id)

    async def stop(self) -> None:
        """Drain every remaining replica (shutdown path)."""
        for rid in list(self._replicas):
            await self.drain(rid)

    async def __aenter__(self) -> "FleetSupervisor":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()
