"""Consistent-hash placement: which replica serves which model lane.

The router spreads traffic across replicas *per lane* — a lane is a
:class:`~repro.serve.request.ModelKey` plus the plan flavor, the same
coalescing key the dynamic batcher uses — so every request for one model
lands on the same replica and that replica's compiled-plan caches
(:meth:`~repro.serve.registry.RegisteredModel.plan_for`) and cost-model
calibration stay warm.  Spreading per *request* would instead cold-start
every plan flavor on every replica.

:class:`HashRing` is the classic consistent-hash ring with virtual
nodes: each replica owns ``vnodes`` points on a 64-bit circle, a lane
hashes to a point, and the owning replica is the first point clockwise.
Properties the fleet layer depends on (and `tests/fleet/test_placement.py`
asserts):

* **deterministic** — placement is a pure function of ``(seed, replica
  ids, lane)``; two routers built with the same seed and replica set
  agree on every lane, so a restarted router re-warms nothing;
* **minimal movement** — when a replica joins or leaves, only the lanes
  in the arcs it owns move (expected ``1/N`` of keys, bounded well under
  ``2/N`` with enough vnodes); every other lane keeps its warm replica;
* **balanced** — vnodes smooth the arc lengths so no replica owns a
  pathological share of the circle.

Hashes are SHA-256 (stable across processes and Python versions —
``hash()`` is salted per process and useless here), truncated to 64 bits.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual nodes per replica.  64 keeps the ring a few hundred points for
#: typical fleets — cheap to rebuild — while holding key movement on a
#: join/leave close to the ideal 1/N.
DEFAULT_VNODES = 64


def _hash64(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class HashRing:
    """Seeded consistent-hash ring over replica ids."""

    def __init__(
        self,
        replicas: Iterable[str] = (),
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        self._points: List[int] = []       # sorted vnode hashes
        self._owners: List[str] = []       # replica id per point (parallel)
        self._replicas: List[str] = []
        for replica in replicas:
            self.add(replica)

    # ---------------------------------------------------------- membership

    @property
    def replicas(self) -> List[str]:
        """Replica ids currently on the ring (insertion order)."""
        return list(self._replicas)

    def __len__(self) -> int:
        return len(self._replicas)

    def __contains__(self, replica_id: str) -> bool:
        return replica_id in self._replicas

    def _vnode_hashes(self, replica_id: str) -> List[int]:
        return [
            _hash64(f"{self.seed}|{replica_id}|{v}") for v in range(self.vnodes)
        ]

    def add(self, replica_id: str) -> None:
        """Put a replica on the ring (idempotent)."""
        if replica_id in self._replicas:
            return
        self._replicas.append(replica_id)
        for point in self._vnode_hashes(replica_id):
            index = bisect.bisect_left(self._points, point)
            # SHA-256 collisions on 64 bits are not a practical concern,
            # but break the tie deterministically anyway: lowest id wins.
            while (index < len(self._points) and self._points[index] == point
                   and self._owners[index] < replica_id):
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, replica_id)

    def remove(self, replica_id: str) -> None:
        """Take a replica off the ring (idempotent)."""
        if replica_id not in self._replicas:
            return
        self._replicas.remove(replica_id)
        keep = [i for i, owner in enumerate(self._owners) if owner != replica_id]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # ------------------------------------------------------------- lookups

    def lookup(self, lane: str) -> Optional[str]:
        """The replica owning ``lane`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        point = _hash64(f"{self.seed}|{lane}")
        index = bisect.bisect_right(self._points, point) % len(self._points)
        return self._owners[index]

    def preference(self, lane: str, count: Optional[int] = None) -> List[str]:
        """Distinct replicas in ring order starting at ``lane``'s owner.

        The fallback order of the router: element 0 is the primary, the
        rest are the replicas a failed/saturated forward falls over to —
        every router agrees on the order, so retried requests re-land on
        the same warm fallback too.
        """
        if not self._points:
            return []
        want = len(self._replicas) if count is None else min(count, len(self._replicas))
        point = _hash64(f"{self.seed}|{lane}")
        start = bisect.bisect_right(self._points, point)
        seen: List[str] = []
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) >= want:
                    break
        return seen

    def assignment(self, lanes: Iterable[str]) -> Dict[str, str]:
        """``{lane: owner}`` for a batch of lanes (movement analysis)."""
        return {lane: self.lookup(lane) for lane in lanes}
