"""Fleet chaos: kill a replica mid-run, prove the router absorbs it.

The single-node chaos suite (:mod:`repro.serve.chaos`) injects faults
*inside* one server; the fleet suite injects the fault the fleet layer
exists for — a whole replica dying under live traffic.  One exercise:

1. spawn ``replicas`` in-process servers behind a :class:`FleetRouter`
   and drive the standard deterministic workload through the router;
2. once ``kill_fraction`` of the requests have completed, **crash** the
   replica that owns the first model's lane (connections aborted, queue
   dropped — :meth:`~repro.fleet.supervisor.FleetSupervisor.kill`), the
   worst case because it is the one taking traffic;
3. assert the chaos bounds afterwards
   (:meth:`FleetChaosReport.check`):

   * zero unhandled errors — every request got an answer (the router
     turns dead-replica forwards into reroutes, and total exhaustion
     into an accounted router-SHED, never an exception);
   * ≥ ``min_answered_rate`` of non-shed requests answered OK;
   * requests kept completing *after* the kill (rerouting actually
     carried traffic, not just the pre-kill prefix);
   * the router is still ready with exactly ``replicas - 1`` usable
     backends, and the victim's lanes — and only the victim's lanes —
     moved to surviving replicas (consistent hashing's minimal-movement
     property, observed end to end);
   * the same-seed replay fingerprint (the SHA-256 over the expanded
     request stream) is byte-identical to the pre-run digest, so a
     re-run replays exactly the traffic that survived the kill.

The exercise runs single-process (supervisor ``inproc`` mode) but every
request crosses real loopback sockets through the real router — the kill
is a genuine TCP RST storm, not a mock.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs import get_logger, get_registry
from ..serve.chaos import _requests_digest
from ..serve.loadgen import LoadReport, WorkloadSpec, run_workload
from ..serve.server import ServeConfig
from ..serve.transport import RemoteClient
from .router import FleetRouter, RouterConfig
from .supervisor import FleetSupervisor

__all__ = ["FleetChaosReport", "run_fleet_chaos"]

_log = get_logger("fleet.chaos")


@dataclass
class FleetChaosReport:
    """Everything one fleet-kill exercise observed, plus the bound checks."""

    report: LoadReport
    requests_digest: str        #: pre-run fingerprint of the request stream
    replay_digest: str          #: same spec re-expanded after the run
    replicas: int
    victim: str                 #: replica killed mid-run
    killed_at_completed: int    #: completions when the kill fired
    ok_after_kill: int          #: OK answers completed after the kill
    health_after: dict          #: router ``op: health`` after the run
    placement_before: Dict[str, str]
    placement_after: Dict[str, str]
    reroutes: int               #: forwards the router retried elsewhere
    min_answered_rate: float = 0.99
    max_p99_ms: Optional[float] = None
    failures: List[str] = field(default_factory=list)

    @property
    def answered_rate(self) -> float:
        denom = self.report.total - self.report.shed
        return self.report.ok / denom if denom > 0 else 1.0

    @property
    def moved_lanes(self) -> List[str]:
        return [lane for lane, owner in self.placement_before.items()
                if self.placement_after.get(lane) != owner]

    def check(self) -> List[str]:
        failures: List[str] = []
        if self.report.errors:
            failures.append(
                f"{self.report.errors} unhandled errors — a replica kill "
                f"must surface as reroute or accounted shed, never ERROR"
            )
        if self.answered_rate < self.min_answered_rate:
            failures.append(
                f"answered rate {self.answered_rate:.4f} < "
                f"{self.min_answered_rate} ({self.report.ok} ok of "
                f"{self.report.total - self.report.shed} non-shed)"
            )
        if self.killed_at_completed <= 0:
            failures.append("kill never fired — the exercise is inert")
        if self.ok_after_kill <= 0:
            failures.append(
                "no request completed after the kill — the router did not "
                "carry traffic on the surviving replicas"
            )
        if not self.health_after.get("ready", False):
            failures.append(f"router not ready after kill: {self.health_after}")
        usable = self.health_after.get("usable")
        if usable != self.replicas - 1:
            failures.append(
                f"expected {self.replicas - 1} usable replicas after the "
                f"kill, router reports {usable}"
            )
        stray = [lane for lane in self.moved_lanes
                 if self.placement_before[lane] != self.victim]
        if stray:
            failures.append(
                f"lanes not owned by the victim moved: {stray} — "
                f"minimal-movement violated"
            )
        victim_lanes = [lane for lane, owner in self.placement_before.items()
                        if owner == self.victim]
        if victim_lanes and not self.moved_lanes:
            failures.append(
                f"victim {self.victim} owned lanes {victim_lanes} but "
                f"none moved after the kill"
            )
        if any(owner == self.victim for owner in self.placement_after.values()):
            failures.append(f"dead replica {self.victim} still owns lanes")
        if self.replay_digest != self.requests_digest:
            failures.append(
                f"replay fingerprint changed: {self.requests_digest[:12]} → "
                f"{self.replay_digest[:12]}"
            )
        if self.max_p99_ms is not None and self.report.p99_ms > self.max_p99_ms:
            failures.append(
                f"p99 {self.report.p99_ms:.1f} ms exceeded the kill-latency "
                f"bound {self.max_p99_ms:.1f} ms"
            )
        self.failures = failures
        return failures

    @property
    def ok(self) -> bool:
        return not self.check()

    def record(self) -> None:
        registry = get_registry()
        registry.gauge("fleet.chaos.answered_rate").set(self.answered_rate)
        registry.gauge("fleet.chaos.ok_after_kill").set(
            float(self.ok_after_kill))
        registry.gauge("fleet.chaos.reroutes").set(float(self.reroutes))
        registry.gauge("fleet.chaos.moved_lanes").set(
            float(len(self.moved_lanes)))
        registry.gauge("fleet.chaos.unhandled_failures").set(
            float(len(self.check())))

    def render(self) -> str:
        lines = [
            self.report.render(),
            f"  fleet chaos : {self.replicas} replicas, killed "
            f"{self.victim} after {self.killed_at_completed} completions",
            f"  rerouting   : {self.reroutes} forwards rerouted, "
            f"{self.ok_after_kill} ok answers after the kill",
            f"  placement   : {len(self.moved_lanes)} lane(s) moved "
            f"({', '.join(self.moved_lanes) or 'none'})",
            f"  answered    : {self.answered_rate * 100:.2f}% of non-shed "
            f"(bound {self.min_answered_rate * 100:.0f}%)",
            f"  fingerprint : {self.requests_digest[:12]} "
            f"(replay {'identical' if self.replay_digest == self.requests_digest else 'DIVERGED'})",
            f"  health      : ready={self.health_after.get('ready')}  "
            f"usable={self.health_after.get('usable')}"
            f"/{self.health_after.get('total')}",
        ]
        failures = self.check()
        if failures:
            lines.append("  CHAOS FAIL  : " + "; ".join(failures))
        else:
            lines.append("  chaos check : all fleet bounds held")
        return "\n".join(lines)


async def run_fleet_chaos(
    spec: WorkloadSpec,
    replicas: int = 4,
    config: Optional[ServeConfig] = None,
    router_config: Optional[RouterConfig] = None,
    kill_fraction: float = 0.35,
    min_answered_rate: float = 0.99,
    max_p99_ms: Optional[float] = None,
    client_timeout_s: float = 30.0,
) -> FleetChaosReport:
    """One fleet-kill exercise (see the module docstring for the plot)."""
    if replicas < 2:
        raise ValueError("fleet chaos needs at least 2 replicas")
    config = config or ServeConfig(preload=list(spec.keys))
    router_config = router_config or RouterConfig(
        seed=spec.seed, probe_interval_s=0.1
    )
    digest_before = _requests_digest(spec)
    lanes = [FleetRouter.lane(k.canonical(), bool(config.int8))
             for k in spec.keys]

    supervisor = FleetSupervisor(base_config=config, mode="inproc")
    endpoints = [await supervisor.spawn() for _ in range(replicas)]
    router = FleetRouter(endpoints, router_config)
    await router.start()

    placement_before = router.ring.assignment(lanes)
    victim = placement_before[lanes[0]]
    kill_after = max(1, int(spec.requests * kill_fraction))
    _log.info("fleet chaos starting", replicas=replicas, victim=victim,
              kill_after=kill_after, requests=spec.requests)

    reroutes_before = _counter("fleet.reroutes")
    client = RemoteClient("127.0.0.1", router.port,
                          timeout_s=client_timeout_s, seed=spec.seed)
    state = {"completed": 0, "killed_at": 0, "ok_after_kill": 0,
             "kill_task": None}

    async def kill_victim() -> None:
        await supervisor.kill(victim)
        # The router discovers the death through failed forwards/probes —
        # membership is deliberately NOT updated here.
        _log.info("victim killed", replica=victim,
                  completed=state["killed_at"])

    async def submit(request):
        response = await client.submit(request)
        state["completed"] += 1
        if state["kill_task"] is None and state["completed"] >= kill_after:
            state["killed_at"] = state["completed"]
            state["kill_task"] = asyncio.create_task(kill_victim())
        elif state["kill_task"] is not None and response.ok:
            state["ok_after_kill"] += 1
        return response

    try:
        await client.connect()
        report = await run_workload(submit, spec)
        if state["kill_task"] is not None:
            await state["kill_task"]
        # Let the probe loop settle the victim's state before reading
        # health — forwards already demoted it, probes confirm.
        await router.probe_once()
        health = await client.health()
        placement_after = router.ring.assignment(lanes)
    finally:
        await client.close()
        await router.stop()
        await supervisor.stop()

    chaos = FleetChaosReport(
        report=report,
        requests_digest=digest_before,
        replay_digest=_requests_digest(spec),
        replicas=replicas,
        victim=victim,
        killed_at_completed=state["killed_at"],
        ok_after_kill=state["ok_after_kill"],
        health_after=health,
        placement_before=placement_before,
        placement_after=placement_after,
        reroutes=int(_counter("fleet.reroutes") - reroutes_before),
        min_answered_rate=min_answered_rate,
        max_p99_ms=max_p99_ms,
    )
    chaos.record()
    return chaos


def _counter(name: str) -> float:
    metric = get_registry().get(name)
    return float(metric.value) if metric is not None else 0.0
