"""Fleet chaos: kill a replica mid-run, prove the router absorbs it.

The single-node chaos suite (:mod:`repro.serve.chaos`) injects faults
*inside* one server; the fleet suite injects the fault the fleet layer
exists for — a whole replica dying under live traffic.  One exercise:

1. spawn ``replicas`` in-process servers behind a :class:`FleetRouter`
   and drive the standard deterministic workload through the router;
2. once ``kill_fraction`` of the requests have completed, **crash** the
   replica that owns the first model's lane (connections aborted, queue
   dropped — :meth:`~repro.fleet.supervisor.FleetSupervisor.kill`), the
   worst case because it is the one taking traffic;
3. assert the chaos bounds afterwards
   (:meth:`FleetChaosReport.check`):

   * zero unhandled errors — every request got an answer (the router
     turns dead-replica forwards into reroutes, and total exhaustion
     into an accounted router-SHED, never an exception);
   * ≥ ``min_answered_rate`` of non-shed requests answered OK;
   * requests kept completing *after* the kill (rerouting actually
     carried traffic, not just the pre-kill prefix);
   * the router is still ready with exactly ``replicas - 1`` usable
     backends, and the victim's lanes — and only the victim's lanes —
     moved to surviving replicas (consistent hashing's minimal-movement
     property, observed end to end);
   * the same-seed replay fingerprint (the SHA-256 over the expanded
     request stream) is byte-identical to the pre-run digest, so a
     re-run replays exactly the traffic that survived the kill.

The exercise runs single-process (supervisor ``inproc`` mode) but every
request crosses real loopback sockets through the real router — the kill
is a genuine TCP RST storm, not a mock.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..faults import FaultPlan, FaultSpec, clear_plan, install_plan
from ..obs import get_logger, get_registry
from ..obs.stats import percentile
from ..serve.chaos import _requests_digest
from ..serve.loadgen import (
    LoadReport,
    WorkloadSpec,
    build_requests,
    run_workload,
)
from ..serve.server import ServeConfig
from ..serve.transport import RemoteClient
from .router import FleetRouter, RouterConfig
from .supervisor import FleetSupervisor
from .warmup import lane_specs, warm_replica

__all__ = [
    "FleetChaosReport",
    "run_fleet_chaos",
    "GrayChaosReport",
    "run_gray_chaos",
]

_log = get_logger("fleet.chaos")


@dataclass
class FleetChaosReport:
    """Everything one fleet-kill exercise observed, plus the bound checks."""

    report: LoadReport
    requests_digest: str        #: pre-run fingerprint of the request stream
    replay_digest: str          #: same spec re-expanded after the run
    replicas: int
    victim: str                 #: replica killed mid-run
    killed_at_completed: int    #: completions when the kill fired
    ok_after_kill: int          #: OK answers completed after the kill
    health_after: dict          #: router ``op: health`` after the run
    placement_before: Dict[str, str]
    placement_after: Dict[str, str]
    reroutes: int               #: forwards the router retried elsewhere
    min_answered_rate: float = 0.99
    max_p99_ms: Optional[float] = None
    failures: List[str] = field(default_factory=list)

    @property
    def answered_rate(self) -> float:
        denom = self.report.total - self.report.shed
        return self.report.ok / denom if denom > 0 else 1.0

    @property
    def moved_lanes(self) -> List[str]:
        return [lane for lane, owner in self.placement_before.items()
                if self.placement_after.get(lane) != owner]

    def check(self) -> List[str]:
        failures: List[str] = []
        if self.report.errors:
            failures.append(
                f"{self.report.errors} unhandled errors — a replica kill "
                f"must surface as reroute or accounted shed, never ERROR"
            )
        if self.answered_rate < self.min_answered_rate:
            failures.append(
                f"answered rate {self.answered_rate:.4f} < "
                f"{self.min_answered_rate} ({self.report.ok} ok of "
                f"{self.report.total - self.report.shed} non-shed)"
            )
        if self.killed_at_completed <= 0:
            failures.append("kill never fired — the exercise is inert")
        if self.ok_after_kill <= 0:
            failures.append(
                "no request completed after the kill — the router did not "
                "carry traffic on the surviving replicas"
            )
        if not self.health_after.get("ready", False):
            failures.append(f"router not ready after kill: {self.health_after}")
        usable = self.health_after.get("usable")
        if usable != self.replicas - 1:
            failures.append(
                f"expected {self.replicas - 1} usable replicas after the "
                f"kill, router reports {usable}"
            )
        stray = [lane for lane in self.moved_lanes
                 if self.placement_before[lane] != self.victim]
        if stray:
            failures.append(
                f"lanes not owned by the victim moved: {stray} — "
                f"minimal-movement violated"
            )
        victim_lanes = [lane for lane, owner in self.placement_before.items()
                        if owner == self.victim]
        if victim_lanes and not self.moved_lanes:
            failures.append(
                f"victim {self.victim} owned lanes {victim_lanes} but "
                f"none moved after the kill"
            )
        if any(owner == self.victim for owner in self.placement_after.values()):
            failures.append(f"dead replica {self.victim} still owns lanes")
        if self.replay_digest != self.requests_digest:
            failures.append(
                f"replay fingerprint changed: {self.requests_digest[:12]} → "
                f"{self.replay_digest[:12]}"
            )
        if self.max_p99_ms is not None and self.report.p99_ms > self.max_p99_ms:
            failures.append(
                f"p99 {self.report.p99_ms:.1f} ms exceeded the kill-latency "
                f"bound {self.max_p99_ms:.1f} ms"
            )
        self.failures = failures
        return failures

    @property
    def ok(self) -> bool:
        return not self.check()

    def record(self) -> None:
        registry = get_registry()
        registry.gauge("fleet.chaos.answered_rate").set(self.answered_rate)
        registry.gauge("fleet.chaos.ok_after_kill").set(
            float(self.ok_after_kill))
        registry.gauge("fleet.chaos.reroutes").set(float(self.reroutes))
        registry.gauge("fleet.chaos.moved_lanes").set(
            float(len(self.moved_lanes)))
        registry.gauge("fleet.chaos.unhandled_failures").set(
            float(len(self.check())))

    def render(self) -> str:
        lines = [
            self.report.render(),
            f"  fleet chaos : {self.replicas} replicas, killed "
            f"{self.victim} after {self.killed_at_completed} completions",
            f"  rerouting   : {self.reroutes} forwards rerouted, "
            f"{self.ok_after_kill} ok answers after the kill",
            f"  placement   : {len(self.moved_lanes)} lane(s) moved "
            f"({', '.join(self.moved_lanes) or 'none'})",
            f"  answered    : {self.answered_rate * 100:.2f}% of non-shed "
            f"(bound {self.min_answered_rate * 100:.0f}%)",
            f"  fingerprint : {self.requests_digest[:12]} "
            f"(replay {'identical' if self.replay_digest == self.requests_digest else 'DIVERGED'})",
            f"  health      : ready={self.health_after.get('ready')}  "
            f"usable={self.health_after.get('usable')}"
            f"/{self.health_after.get('total')}",
        ]
        failures = self.check()
        if failures:
            lines.append("  CHAOS FAIL  : " + "; ".join(failures))
        else:
            lines.append("  chaos check : all fleet bounds held")
        return "\n".join(lines)


async def run_fleet_chaos(
    spec: WorkloadSpec,
    replicas: int = 4,
    config: Optional[ServeConfig] = None,
    router_config: Optional[RouterConfig] = None,
    kill_fraction: float = 0.35,
    min_answered_rate: float = 0.99,
    max_p99_ms: Optional[float] = None,
    client_timeout_s: float = 30.0,
) -> FleetChaosReport:
    """One fleet-kill exercise (see the module docstring for the plot)."""
    if replicas < 2:
        raise ValueError("fleet chaos needs at least 2 replicas")
    config = config or ServeConfig(preload=list(spec.keys))
    router_config = router_config or RouterConfig(
        seed=spec.seed, probe_interval_s=0.1
    )
    digest_before = _requests_digest(spec)
    lanes = [FleetRouter.lane(k.canonical(), bool(config.int8))
             for k in spec.keys]

    supervisor = FleetSupervisor(base_config=config, mode="inproc")
    endpoints = [await supervisor.spawn() for _ in range(replicas)]
    router = FleetRouter(endpoints, router_config)
    await router.start()

    placement_before = router.ring.assignment(lanes)
    victim = placement_before[lanes[0]]
    kill_after = max(1, int(spec.requests * kill_fraction))
    _log.info("fleet chaos starting", replicas=replicas, victim=victim,
              kill_after=kill_after, requests=spec.requests)

    reroutes_before = _counter("fleet.reroutes")
    client = RemoteClient("127.0.0.1", router.port,
                          timeout_s=client_timeout_s, seed=spec.seed)
    state = {"completed": 0, "killed_at": 0, "ok_after_kill": 0,
             "kill_task": None}

    async def kill_victim() -> None:
        await supervisor.kill(victim)
        # The router discovers the death through failed forwards/probes —
        # membership is deliberately NOT updated here.
        _log.info("victim killed", replica=victim,
                  completed=state["killed_at"])

    async def submit(request):
        response = await client.submit(request)
        state["completed"] += 1
        if state["kill_task"] is None and state["completed"] >= kill_after:
            state["killed_at"] = state["completed"]
            state["kill_task"] = asyncio.create_task(kill_victim())
        elif state["kill_task"] is not None and response.ok:
            state["ok_after_kill"] += 1
        return response

    try:
        await client.connect()
        report = await run_workload(submit, spec)
        if state["kill_task"] is not None:
            await state["kill_task"]
        # Let the probe loop settle the victim's state before reading
        # health — forwards already demoted it, probes confirm.
        await router.probe_once()
        health = await client.health()
        placement_after = router.ring.assignment(lanes)
    finally:
        await client.close()
        await router.stop()
        await supervisor.stop()

    chaos = FleetChaosReport(
        report=report,
        requests_digest=digest_before,
        replay_digest=_requests_digest(spec),
        replicas=replicas,
        victim=victim,
        killed_at_completed=state["killed_at"],
        ok_after_kill=state["ok_after_kill"],
        health_after=health,
        placement_before=placement_before,
        placement_after=placement_after,
        reroutes=int(_counter("fleet.reroutes") - reroutes_before),
        min_answered_rate=min_answered_rate,
        max_p99_ms=max_p99_ms,
    )
    chaos.record()
    return chaos


def _counter(name: str) -> float:
    metric = get_registry().get(name)
    return float(metric.value) if metric is not None else 0.0


# --------------------------------------------------------------- gray chaos

@dataclass
class GrayChaosReport:
    """One gray-failure drill: a 20×-slow replica under live traffic.

    Two identical workload runs — a healthy baseline, then the same spec
    with one replica's forward hop stalled (``fleet.forward`` fault point,
    ``kind="stall"``, tagged to the victim) — followed by a warm-gated
    scale-up.  ``check()`` asserts the gray-failure contract end to end:
    tail latency bounded by hedging, slow-detection fired, exactly one
    response per request id, zero unhandled errors, the replay
    fingerprint unchanged, and zero cold builds/compiles after the
    warm-up gate opened.

    The tail bound is asserted on **client-observed wall latency**
    (``*_wall_*`` fields), not on the replicas' ``total_ms``: a replica
    measures admission → response, and the stalled hop lives in the
    router *before* admission — on server clocks the gray failure is
    literally invisible, which is the whole point of the drill.
    """

    baseline: LoadReport
    gray: LoadReport
    baseline_wall_p50_ms: float  #: client-measured, healthy run
    baseline_wall_p99_ms: float
    gray_wall_p99_ms: float      #: client-measured, stalled run
    requests_digest: str
    replay_digest: str
    replicas: int
    victim: str
    stall_ms: float
    stalls_fired: int           #: fleet.forward stall firings (delta)
    duplicates: int             #: request ids answered more than once
    slow_detections: int        #: SLOW transitions during the gray run
    hedges: int                 #: hedges fired (delta)
    hedge_wins: int
    hedge_losses: int
    # Warm-up gate phase (scale-up under the same router).
    scale_up_replica: str
    starting_served: int        #: forwards the cold replica answered (must be 0)
    gate_ready_after_warm: bool
    warmed_lanes: int
    cold_builds: int            #: serve.registry.builds delta post-warm-up
    cold_plans: int             #: runtime.plans (compiles) delta post-warm-up
    post_scale_ok: int          #: OK answers after the gate opened
    p99_factor: float = 1.5
    p99_slack_ms: float = 25.0
    failures: List[str] = field(default_factory=list)

    @property
    def p99_bound_ms(self) -> float:
        """The drill's tail bound: ``factor × healthy wall p99 + slack``.

        The small absolute slack absorbs scheduler jitter on sub-50 ms
        baselines; the multiplicative factor is the contract (a fleet
        with one 20×-slow replica must not be 20× slower — hedging and
        slow-detection keep the tail within 1.5× of healthy).
        """
        return self.p99_factor * self.baseline_wall_p99_ms + self.p99_slack_ms

    def check(self) -> List[str]:
        failures: List[str] = []
        if self.stalls_fired <= 0:
            failures.append("no stall fired — the gray drill is inert")
        if self.gray.errors:
            failures.append(
                f"{self.gray.errors} unhandled errors — a stalled hop must "
                f"surface as a hedge or reroute, never ERROR"
            )
        if self.duplicates:
            failures.append(
                f"{self.duplicates} request id(s) answered more than once — "
                f"hedging broke the exactly-once response guarantee"
            )
        if self.gray_wall_p99_ms > self.p99_bound_ms:
            failures.append(
                f"gray wall p99 {self.gray_wall_p99_ms:.1f} ms exceeded the "
                f"bound {self.p99_bound_ms:.1f} ms ({self.p99_factor}× "
                f"healthy wall p99 {self.baseline_wall_p99_ms:.1f} ms "
                f"+ {self.p99_slack_ms:.0f})"
            )
        if self.slow_detections <= 0:
            failures.append(
                f"victim {self.victim} was never detected SLOW — the "
                f"latency-window path did not fire"
            )
        if self.hedges != self.hedge_wins + self.hedge_losses:
            failures.append(
                f"hedge accounting broken: fired {self.hedges} != wins "
                f"{self.hedge_wins} + losses {self.hedge_losses}"
            )
        if self.replay_digest != self.requests_digest:
            failures.append(
                f"replay fingerprint changed: {self.requests_digest[:12]} → "
                f"{self.replay_digest[:12]}"
            )
        if self.starting_served:
            failures.append(
                f"cold replica {self.scale_up_replica} answered "
                f"{self.starting_served} forward(s) before its warm-up gate "
                f"opened — STARTING must be unroutable"
            )
        if not self.gate_ready_after_warm:
            failures.append(
                f"replica {self.scale_up_replica} not routable after warm-up"
            )
        if self.cold_builds or self.cold_plans:
            failures.append(
                f"post-scale-up traffic triggered {self.cold_builds} model "
                f"build(s) and {self.cold_plans} plan compile(s) — the "
                f"warm-up gate served a cold replica"
            )
        if self.post_scale_ok <= 0:
            failures.append("no request completed after the scale-up")
        self.failures = failures
        return failures

    @property
    def ok(self) -> bool:
        return not self.check()

    def record(self) -> None:
        registry = get_registry()
        registry.gauge("fleet.gray.baseline_p99_ms").set(
            self.baseline_wall_p99_ms)
        registry.gauge("fleet.gray.p99_ms").set(self.gray_wall_p99_ms)
        registry.gauge("fleet.gray.stall_ms").set(self.stall_ms)
        registry.gauge("fleet.gray.hedges").set(float(self.hedges))
        registry.gauge("fleet.gray.hedge_wins").set(float(self.hedge_wins))
        registry.gauge("fleet.gray.duplicates").set(float(self.duplicates))
        registry.gauge("fleet.gray.cold_builds").set(float(self.cold_builds))
        registry.gauge("fleet.gray.unhandled_failures").set(
            float(len(self.check())))

    def render(self) -> str:
        lines = [
            self.gray.render(),
            f"  gray chaos  : {self.replicas} replicas, {self.victim} "
            f"stalled {self.stall_ms:.0f} ms/hop ({self.stalls_fired} stalls)",
            f"  tail        : wall p99 {self.gray_wall_p99_ms:.1f} ms vs "
            f"healthy {self.baseline_wall_p99_ms:.1f} ms "
            f"(bound {self.p99_bound_ms:.1f})",
            f"  hedging     : {self.hedges} fired = {self.hedge_wins} wins "
            f"+ {self.hedge_losses} losses; {self.duplicates} duplicate "
            f"response(s)",
            f"  detection   : {self.slow_detections} SLOW transition(s)",
            f"  scale-up    : {self.scale_up_replica} held unroutable "
            f"(served {self.starting_served} cold), warmed "
            f"{self.warmed_lanes} lane(s), then {self.cold_builds} builds / "
            f"{self.cold_plans} compiles under {self.post_scale_ok} requests",
            f"  fingerprint : {self.requests_digest[:12]} "
            f"(replay {'identical' if self.replay_digest == self.requests_digest else 'DIVERGED'})",
        ]
        failures = self.check()
        if failures:
            lines.append("  GRAY FAIL   : " + "; ".join(failures))
        else:
            lines.append("  gray check  : all gray-failure bounds held")
        return "\n".join(lines)


async def run_gray_chaos(
    spec: WorkloadSpec,
    replicas: int = 3,
    config: Optional[ServeConfig] = None,
    router_config: Optional[RouterConfig] = None,
    stall_mult: float = 20.0,
    stall_floor_ms: float = 40.0,
    p99_factor: float = 1.5,
    p99_slack_ms: float = 25.0,
    scale_up_requests: int = 12,
    client_timeout_s: float = 30.0,
) -> GrayChaosReport:
    """The gray-failure drill (see :class:`GrayChaosReport` for the plot).

    The drill's router defaults differ from production in two places,
    both because the drill concentrates ALL of one lane's traffic on the
    victim: the hedge rate cap is lifted (a 5% cap against a primary
    owning ~100% of a lane would serialize the stalls the drill exists
    to absorb — in production, lanes spread over the ring and SLOW
    primaries bypass the cap anyway) and probes run fast so detection
    happens within the run.
    """
    if replicas < 2:
        raise ValueError("gray chaos needs at least 2 replicas")
    config = config or ServeConfig(preload=list(spec.keys))
    router_config = router_config or RouterConfig(
        seed=spec.seed,
        probe_interval_s=0.05,
        slow_windows=2,
        hedge_rate_cap=1.0,
        hedge_min_samples=16,
    )
    digest_before = _requests_digest(spec)
    lanes = [FleetRouter.lane(k.canonical(), bool(config.int8))
             for k in spec.keys]

    async def spawn_fleet():
        supervisor = FleetSupervisor(base_config=config, mode="inproc")
        endpoints = [await supervisor.spawn() for _ in range(replicas)]
        router = FleetRouter(endpoints, router_config)
        await router.start()
        return supervisor, router

    # ---- phase 1: healthy baseline (same spec, no faults) ----------------
    clear_plan()
    supervisor, router = await spawn_fleet()
    client = RemoteClient("127.0.0.1", router.port,
                          timeout_s=client_timeout_s, seed=spec.seed)
    # Client-observed wall latency, not the replicas' total_ms: a replica
    # clocks admission → response, and the stalled hop lives in the router
    # *before* admission — on server clocks the gray failure is invisible.
    baseline_wall: List[float] = []

    async def timed_submit(request):
        t0 = time.perf_counter()
        response = await client.submit(request)
        baseline_wall.append((time.perf_counter() - t0) * 1000.0)
        return response

    try:
        await client.connect()
        baseline = await run_workload(timed_submit, spec)
    finally:
        await client.close()
        await router.stop()
        await supervisor.stop()

    baseline_wall.sort()
    baseline_wall_p50 = percentile(baseline_wall, 50.0)
    baseline_wall_p99 = percentile(baseline_wall, 99.0)
    stall_ms = max(stall_floor_ms, stall_mult * baseline_wall_p50)

    # ---- phase 2: same workload with one replica's hop stalled -----------
    # Fresh fleet, same seeds: replica ids and ring placement repeat, so
    # the victim (owner of the first lane) is the same replica id the
    # baseline placed there.  The stall begins only after the router has
    # enough forward samples to derive a hedge delay.
    before = {name: _counter(name) for name in (
        "fleet.hedges", "fleet.hedge_wins", "fleet.hedge_losses",
        "fleet.slow_detections", "faults.injected.fleet.forward",
    )}
    supervisor, router = await spawn_fleet()
    victim = router.ring.assignment(lanes)[lanes[0]]
    stall_after = max(router_config.hedge_min_samples + 8,
                      int(spec.requests * 0.15))
    install_plan(FaultPlan(seed=spec.seed, faults=[
        FaultSpec(point="fleet.forward", kind="stall", probability=1.0,
                  max_fires=None, after=stall_after, delay_ms=stall_ms,
                  tag=victim),
    ]))
    _log.info("gray chaos starting", replicas=replicas, victim=victim,
              stall_ms=round(stall_ms, 1), stall_after=stall_after,
              requests=spec.requests)

    answered: Dict[int, int] = {}
    gray_wall: List[float] = []
    client = RemoteClient("127.0.0.1", router.port,
                          timeout_s=client_timeout_s, seed=spec.seed)

    async def submit(request):
        t0 = time.perf_counter()
        response = await client.submit(request)
        gray_wall.append((time.perf_counter() - t0) * 1000.0)
        answered[response.request_id] = answered.get(response.request_id,
                                                     0) + 1
        return response

    try:
        await client.connect()
        gray = await run_workload(submit, spec)

        # ---- phase 3: warm-gated scale-up under the same router ----------
        # The stall plan is cleared first: the scale-up assertions are
        # about cold plans, not about the stalled victim.
        clear_plan()
        # No preload: the warm-up itself must build/compile everything the
        # lanes need — which is exactly what makes the zero-delta check
        # below non-vacuous (an unwarmed replica's first request would
        # have to build, and the builds counter would say so).
        endpoint = await supervisor.spawn(
            config=replace(config, preload=[], require_warmup=True))
        router.add_replica(endpoint)
        await router.probe_once()
        cold_link = router.links[endpoint.replica_id]

        # Traffic against the gate: the STARTING replica must see none.
        for request in build_requests(replace(
                spec, requests=max(4, scale_up_requests // 2))):
            await client.submit(request)
        starting_served = cold_link.ok

        warm_report = await warm_replica(router, endpoint.replica_id,
                                         lanes=lane_specs(config))
        gate_ready = cold_link.health.usable

        builds0 = _counter("serve.registry.builds")
        plans0 = _counter("runtime.plans")
        post_ok = 0
        # Through the router AND straight at the new replica — the direct
        # client guarantees the freshly-warmed replica actually executes
        # post-scale-up requests, making "zero cold builds" a statement
        # about it and not about routing luck.
        direct = RemoteClient(endpoint.host, endpoint.port,
                              timeout_s=client_timeout_s, seed=spec.seed)
        try:
            await direct.connect()
            for request in build_requests(replace(spec,
                                                  requests=scale_up_requests,
                                                  seed=spec.seed + 1)):
                post_ok += int((await direct.submit(request)).ok)
            for request in build_requests(replace(spec,
                                                  requests=scale_up_requests,
                                                  seed=spec.seed + 2)):
                post_ok += int((await client.submit(request)).ok)
        finally:
            await direct.close()
        cold_builds = int(_counter("serve.registry.builds") - builds0)
        cold_plans = int(_counter("runtime.plans") - plans0)
    finally:
        clear_plan()
        await client.close()
        await router.stop()
        await supervisor.stop()

    gray_wall.sort()
    report = GrayChaosReport(
        baseline=baseline,
        gray=gray,
        baseline_wall_p50_ms=baseline_wall_p50,
        baseline_wall_p99_ms=baseline_wall_p99,
        gray_wall_p99_ms=percentile(gray_wall, 99.0),
        requests_digest=digest_before,
        replay_digest=_requests_digest(spec),
        replicas=replicas,
        victim=victim,
        stall_ms=stall_ms,
        stalls_fired=int(_counter("faults.injected.fleet.forward")
                         - before["faults.injected.fleet.forward"]),
        duplicates=sum(1 for count in answered.values() if count > 1),
        slow_detections=int(_counter("fleet.slow_detections")
                            - before["fleet.slow_detections"]),
        hedges=int(_counter("fleet.hedges") - before["fleet.hedges"]),
        hedge_wins=int(_counter("fleet.hedge_wins")
                       - before["fleet.hedge_wins"]),
        hedge_losses=int(_counter("fleet.hedge_losses")
                         - before["fleet.hedge_losses"]),
        scale_up_replica=endpoint.replica_id,
        starting_served=starting_served,
        gate_ready_after_warm=gate_ready,
        warmed_lanes=int(warm_report.get("warmed", 0)),
        cold_builds=cold_builds,
        cold_plans=cold_plans,
        post_scale_ok=post_ok,
        p99_factor=p99_factor,
        p99_slack_ms=p99_slack_ms,
    )
    report.record()
    return report
