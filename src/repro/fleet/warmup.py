"""Fleet warm-up: what a new replica must compile before it may serve.

A replica spawned with ``require_warmup`` answers health probes with
``warming: true`` and is held in ``starting`` (unroutable) by the
router.  This module closes the gate: it computes the *lanes* the hash
ring will actually send the replica — it is primary or fallback for some
subset of the fleet's model lanes — drives the replica's ``op: warmup``
with exactly those, and probes once so the router sees the flip to
``ready`` without waiting out a probe interval.

The point of warming by ring assignment rather than "everything" is
scale-up cost: a replica joining a fleet serving 20 lanes is primary
for ~20/N of them, and compiling only its share (plus ``warm_depth - 1``
levels of fallback cover) keeps scale-up latency proportional to its
actual responsibility.  The gray-failure drill asserts the other half of
the contract: once the gate opens, post-scale-up traffic triggers zero
model builds and zero plan compiles (``docs/robustness.md``).
"""

from __future__ import annotations

from typing import List, Optional

from ..obs import get_logger, get_registry
from ..serve.request import ModelKey
from ..serve.server import ServeConfig
from .placement import HashRing
from .router import FleetRouter

__all__ = ["lane_specs", "assigned_lanes", "warm_replica"]

_log = get_logger("fleet.warmup")


def lane_specs(config: ServeConfig) -> List[dict]:
    """Wire-form warm-up specs for every lane a fleet of this config serves.

    One spec per preloaded :class:`ModelKey` — plus the int8 flavor when
    the fleet defaults requests onto the quantized plan (int8 lanes batch
    and place separately from float ones).
    """
    specs: List[dict] = []
    for key in config.preload:
        spec = {
            "net": key.network,
            "variant": key.variant,
            "resolution": key.resolution,
            "seed": key.seed,
            "int8": False,
        }
        specs.append(spec)
        if config.int8:
            specs.append({**spec, "int8": True})
    return specs


def _lane_of(spec: dict) -> str:
    key = ModelKey(
        network=spec["net"],
        variant=spec.get("variant"),
        resolution=int(spec.get("resolution", 64)),
        seed=int(spec.get("seed", 0)),
    )
    return FleetRouter.lane(key.canonical(), bool(spec.get("int8", False)))


def assigned_lanes(
    ring: HashRing, replica_id: str, specs: List[dict], depth: int = 2
) -> List[dict]:
    """The subset of ``specs`` this replica must be warm for.

    A lane is assigned when the ring's preference order puts the replica
    in the first ``depth`` candidates — primary plus the fallbacks a
    reroute or hedge would reach.
    """
    assigned = []
    for spec in specs:
        preference = ring.preference(_lane_of(spec))[:depth]
        if replica_id in preference:
            assigned.append(spec)
    return assigned


async def warm_replica(
    router: FleetRouter,
    replica_id: str,
    serve_config: Optional[ServeConfig] = None,
    lanes: Optional[List[dict]] = None,
    depth: Optional[int] = None,
) -> dict:
    """Drive one replica through its warm-up gate; returns its report.

    ``lanes`` (explicit wire specs) wins; otherwise the assignment is
    computed from ``serve_config``'s preload set and the router's ring;
    with neither, the replica warms everything it preloaded.  Ends with
    one probe pass so the router routes to the replica immediately.
    """
    link = router.links.get(replica_id)
    if link is None:
        raise KeyError(f"unknown replica {replica_id!r}")
    if lanes is None and serve_config is not None:
        lanes = assigned_lanes(
            router.ring, replica_id, lane_specs(serve_config),
            depth=depth if depth is not None else router.config.warm_depth,
        )
    reply = await link.client.warmup(lanes)
    if reply.get("status") == "error":
        raise RuntimeError(
            f"warm-up failed on {replica_id}: {reply.get('error')}")
    get_registry().counter("fleet.warmups").inc()
    _log.info("replica warmed", replica=replica_id,
              lanes=reply.get("warmed"),
              ms=f"{reply.get('warmup_ms', 0.0):.0f}")
    await router.probe_once()
    return reply
