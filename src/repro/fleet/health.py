"""Replica health: what the router knows about each backend.

Three signal paths feed one small state machine per replica:

* **passive** — every forwarded request is a health sample.  A transport
  failure (connection refused/reset, timeout) marks the replica ``down``
  *immediately*: the next request for its lanes reroutes without waiting
  for a probe cycle, which is what bounds the error budget of a mid-run
  replica kill (``docs/fleet.md``).
* **active** — the router's probe loop polls each replica's ``op:
  health`` every ``probe_interval_s``.  Probes resurrect a replica the
  moment it answers again (one success is enough — the passive path
  demotes it right back if it is still flapping) and demote an idle-but-
  dead replica that no request has touched.
* **latency windows** — the probe loop also compares each replica's
  forward-latency EWMA against the fleet median
  (:meth:`~repro.fleet.router.FleetRouter.probe_once`).  A replica that
  stays a configured factor above the median for ``slow_windows``
  consecutive windows is a *gray failure*: alive, probe-healthy, and
  many times slow.  It enters ``slow`` — still usable, but only as a
  last resort — and recovers through the same hysteresis (``slow_windows``
  consecutive clean windows) so one noisy sample cannot flap it.

States:

``starting``  not yet probe-confirmed (NOT routable — a replica may
              still be warming its plans; the probe loop promotes it the
              moment its health op reports ready, one probe interval)
``ready``     answering; in the ring, receives its lanes
``suspect``   one probe failure; still routable, next failure demotes
``slow``      latency outlier (gray failure); routable as last resort,
              hedge-covered; demoted to ``suspect`` if it degrades
              further, recovered by clean latency windows — a successful
              probe alone does NOT clear it (slow replicas answer probes)
``down``      unreachable/crashed; taken off the ring until it answers
``draining``  answering but refusing new work (graceful scale-down)

``usable`` (ready/suspect/slow) is what placement filters on.  All state
lives router-side; replicas are not aware of the fleet at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from ..obs import get_logger, get_registry

__all__ = ["ReplicaEndpoint", "ReplicaState", "ReplicaHealth"]

_log = get_logger("fleet.health")


@dataclass(frozen=True)
class ReplicaEndpoint:
    """Where one replica listens.  Ids are stable across restarts of the
    *fleet* (``r0``, ``r1``, ...) — the ring hashes the id, so a replaced
    replica process inherits its predecessor's lanes."""

    replica_id: str
    host: str
    port: int

    def address(self) -> str:
        return f"{self.host}:{self.port}"


class ReplicaState(str, Enum):
    STARTING = "starting"
    READY = "ready"
    SUSPECT = "suspect"
    SLOW = "slow"
    DOWN = "down"
    DRAINING = "draining"


class ReplicaHealth:
    """Per-replica availability state machine (router-side, loop-confined)."""

    def __init__(
        self,
        replica_id: str,
        probe_fail_threshold: int = 2,
        slow_windows: int = 3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if probe_fail_threshold < 1:
            raise ValueError("probe_fail_threshold must be >= 1")
        if slow_windows < 1:
            raise ValueError("slow_windows must be >= 1")
        self.replica_id = replica_id
        self.probe_fail_threshold = probe_fail_threshold
        self.slow_windows = slow_windows
        self._clock = clock
        self._state = ReplicaState.STARTING
        self._probe_failures = 0
        self._slow_streak = 0
        self._fast_streak = 0
        self._changed_at = clock()
        #: Last SHED retry hint this replica returned (router aggregation).
        self.last_retry_after_ms: Optional[float] = None

    # ----------------------------------------------------------------- state

    @property
    def state(self) -> ReplicaState:
        return self._state

    @property
    def usable(self) -> bool:
        """May the router place new requests on this replica?

        ``starting`` is deliberately NOT usable: a just-registered
        replica may still be compiling the plans the ring assigns it
        (``op: warmup``), and forwarding to a cold replica is exactly the
        tail-latency hit the warm-up gate exists to prevent.  The probe
        loop promotes it within one probe interval of its health op
        reporting ready.  ``slow`` stays usable — a gray-slow answer
        still beats no answer when every healthy replica is gone — but
        :meth:`~repro.fleet.router.FleetRouter.candidates` orders it last.
        """
        return self._state in (ReplicaState.READY, ReplicaState.SUSPECT,
                               ReplicaState.SLOW)

    @property
    def since_change_s(self) -> float:
        return self._clock() - self._changed_at

    def _transition(self, state: ReplicaState, reason: str) -> bool:
        if state is self._state:
            return False
        _log.info("replica state change", replica=self.replica_id,
                  state=state.value, was=self._state.value, reason=reason)
        get_registry().counter(
            "fleet.health.transitions", replica=self.replica_id,
            state=state.value,
        ).inc()
        self._state = state
        self._changed_at = self._clock()
        return True

    # --------------------------------------------------------------- signals

    def record_forward_ok(self) -> bool:
        """A forwarded request got an answer (any status — even SHED).

        Does not clear ``slow``: gray-slow replicas answer forwards too —
        that is the failure mode.  Recovery goes through
        :meth:`record_latency_window`.
        """
        self._probe_failures = 0
        if self._state in (ReplicaState.DRAINING, ReplicaState.SLOW):
            return False
        return self._transition(ReplicaState.READY, "forward answered")

    def record_forward_failure(self) -> bool:
        """A forward hit a transport failure: demote *now*, reroute next."""
        self._probe_failures = self.probe_fail_threshold
        self._slow_streak = 0
        self._fast_streak = 0
        return self._transition(ReplicaState.DOWN, "forward failed")

    def record_probe(self, ok: bool, draining: bool = False,
                     warming: bool = False) -> bool:
        """Fold one active ``op: health`` probe result in.

        ``warming`` is the replica's warm-up gate (its health payload
        reports ``warming: true`` until ``op: warmup`` completed): the
        replica is alive but must stay unroutable, so it holds — or
        returns to — ``starting`` rather than being treated as draining
        or ready.
        """
        if not ok:
            self._probe_failures += 1
            if (self._probe_failures >= self.probe_fail_threshold
                    and self._state is not ReplicaState.DOWN):
                return self._transition(ReplicaState.DOWN, "probe failures")
            if self._state in (ReplicaState.READY, ReplicaState.SLOW):
                return self._transition(ReplicaState.SUSPECT, "probe failure")
            return False
        self._probe_failures = 0
        if draining:
            return self._transition(ReplicaState.DRAINING, "replica draining")
        if warming:
            if self._state is ReplicaState.STARTING:
                return False
            return self._transition(ReplicaState.STARTING, "replica warming")
        if self._state is ReplicaState.SLOW:
            # Probes succeeding is exactly what a gray failure looks
            # like; only clean latency windows clear SLOW.
            return False
        return self._transition(ReplicaState.READY, "probe answered")

    def record_latency_window(self, outlier: bool,
                              severe: bool = False) -> bool:
        """Fold one latency window in (router probe loop, once per probe).

        ``outlier`` — this replica's forward EWMA exceeded the robust
        fleet median by the configured factor this window; ``severe`` —
        it exceeded twice that bound (an already-slow replica degrading
        further is demoted to ``suspect`` so probe failures can finish
        the job).  ``slow_windows`` consecutive outlier windows demote
        READY → SLOW; the same count of clean windows recovers SLOW →
        READY, mirroring the probe hysteresis.
        """
        if self._state not in (ReplicaState.READY, ReplicaState.SUSPECT,
                               ReplicaState.SLOW):
            self._slow_streak = 0
            self._fast_streak = 0
            return False
        if outlier:
            self._fast_streak = 0
            self._slow_streak += 1
            if self._state is ReplicaState.SLOW:
                if severe:
                    return self._transition(
                        ReplicaState.SUSPECT, "slow replica degraded further")
                return False
            if (self._state is ReplicaState.READY
                    and self._slow_streak >= self.slow_windows):
                return self._transition(ReplicaState.SLOW, "latency outlier")
            return False
        self._slow_streak = 0
        if self._state is ReplicaState.SLOW:
            self._fast_streak += 1
            if self._fast_streak >= self.slow_windows:
                self._fast_streak = 0
                return self._transition(ReplicaState.READY,
                                        "latency recovered")
        return False

    def mark_draining(self) -> bool:
        """Router-initiated graceful removal (autoscaler scale-down)."""
        return self._transition(ReplicaState.DRAINING, "drain requested")
