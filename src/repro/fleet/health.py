"""Replica health: what the router knows about each backend.

Two signal paths feed one small state machine per replica:

* **passive** — every forwarded request is a health sample.  A transport
  failure (connection refused/reset, timeout) marks the replica ``down``
  *immediately*: the next request for its lanes reroutes without waiting
  for a probe cycle, which is what bounds the error budget of a mid-run
  replica kill (``docs/fleet.md``).
* **active** — the router's probe loop polls each replica's ``op:
  health`` every ``probe_interval_s``.  Probes resurrect a replica the
  moment it answers again (one success is enough — the passive path
  demotes it right back if it is still flapping) and demote an idle-but-
  dead replica that no request has touched.

States:

``starting``  not yet probe-confirmed (optimistically routable)
``ready``     answering; in the ring, receives its lanes
``suspect``   one probe failure; still routable, next failure demotes
``down``      unreachable/crashed; taken off the ring until it answers
``draining``  answering but refusing new work (graceful scale-down)

``usable`` (starting/ready/suspect) is what placement filters on.  All state
lives router-side; replicas are not aware of the fleet at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from ..obs import get_logger, get_registry

__all__ = ["ReplicaEndpoint", "ReplicaState", "ReplicaHealth"]

_log = get_logger("fleet.health")


@dataclass(frozen=True)
class ReplicaEndpoint:
    """Where one replica listens.  Ids are stable across restarts of the
    *fleet* (``r0``, ``r1``, ...) — the ring hashes the id, so a replaced
    replica process inherits its predecessor's lanes."""

    replica_id: str
    host: str
    port: int

    def address(self) -> str:
        return f"{self.host}:{self.port}"


class ReplicaState(str, Enum):
    STARTING = "starting"
    READY = "ready"
    SUSPECT = "suspect"
    DOWN = "down"
    DRAINING = "draining"


class ReplicaHealth:
    """Per-replica availability state machine (router-side, loop-confined)."""

    def __init__(
        self,
        replica_id: str,
        probe_fail_threshold: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if probe_fail_threshold < 1:
            raise ValueError("probe_fail_threshold must be >= 1")
        self.replica_id = replica_id
        self.probe_fail_threshold = probe_fail_threshold
        self._clock = clock
        self._state = ReplicaState.STARTING
        self._probe_failures = 0
        self._changed_at = clock()
        #: Last SHED retry hint this replica returned (router aggregation).
        self.last_retry_after_ms: Optional[float] = None

    # ----------------------------------------------------------------- state

    @property
    def state(self) -> ReplicaState:
        return self._state

    @property
    def usable(self) -> bool:
        """May the router place new requests on this replica?

        ``starting`` is optimistically usable: a just-registered replica
        takes traffic immediately and the passive path demotes it on the
        first failed forward — cheaper than holding traffic for a probe
        round-trip that almost always succeeds.
        """
        return self._state in (ReplicaState.STARTING, ReplicaState.READY,
                               ReplicaState.SUSPECT)

    @property
    def since_change_s(self) -> float:
        return self._clock() - self._changed_at

    def _transition(self, state: ReplicaState, reason: str) -> bool:
        if state is self._state:
            return False
        _log.info("replica state change", replica=self.replica_id,
                  state=state.value, was=self._state.value, reason=reason)
        get_registry().counter(
            "fleet.health.transitions", replica=self.replica_id,
            state=state.value,
        ).inc()
        self._state = state
        self._changed_at = self._clock()
        return True

    # --------------------------------------------------------------- signals

    def record_forward_ok(self) -> bool:
        """A forwarded request got an answer (any status — even SHED)."""
        self._probe_failures = 0
        if self._state in (ReplicaState.DRAINING,):
            return False
        return self._transition(ReplicaState.READY, "forward answered")

    def record_forward_failure(self) -> bool:
        """A forward hit a transport failure: demote *now*, reroute next."""
        self._probe_failures = self.probe_fail_threshold
        return self._transition(ReplicaState.DOWN, "forward failed")

    def record_probe(self, ok: bool, draining: bool = False) -> bool:
        """Fold one active ``op: health`` probe result in."""
        if not ok:
            self._probe_failures += 1
            if (self._probe_failures >= self.probe_fail_threshold
                    and self._state is not ReplicaState.DOWN):
                return self._transition(ReplicaState.DOWN, "probe failures")
            if self._state is ReplicaState.READY:
                return self._transition(ReplicaState.SUSPECT, "probe failure")
            return False
        self._probe_failures = 0
        if draining:
            return self._transition(ReplicaState.DRAINING, "replica draining")
        return self._transition(ReplicaState.READY, "probe answered")

    def mark_draining(self) -> bool:
        """Router-initiated graceful removal (autoscaler scale-down)."""
        return self._transition(ReplicaState.DRAINING, "drain requested")
