"""Index expressions for recurrence relations.

A variable reference inside a recurrence indexes the variable with one
expression per dimension.  For the RIA analysis (§II-B) what matters is
whether ``RHS index − LHS index`` is a *constant*: we therefore represent
expressions either as :class:`Affine` forms over the iteration indices
(where the question is decidable by inspecting coefficients) or as
:class:`NonAffine` opaque terms such as ``⌊k/K⌋`` and ``k mod K`` — the
terms that appear when 2D convolution is forced into single-assignment form
(Fig. 2b) and that break the RIA property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Union


@dataclass(frozen=True)
class Affine:
    """An affine expression ``Σ coeffs[v]·v + const`` over iteration indices."""

    coeffs: Mapping[str, int] = field(default_factory=dict)
    const: int = 0

    def __post_init__(self) -> None:
        # Normalize: drop zero coefficients so equality/inspection is canonical.
        cleaned = {v: c for v, c in self.coeffs.items() if c != 0}
        object.__setattr__(self, "coeffs", dict(sorted(cleaned.items())))

    @classmethod
    def var(cls, name: str, shift: int = 0) -> "Affine":
        """The expression ``name + shift`` (the common case, e.g. ``k-1``)."""
        return cls(coeffs={name: 1}, const=shift)

    @classmethod
    def const_expr(cls, value: int) -> "Affine":
        return cls(coeffs={}, const=value)

    @property
    def depends_on(self) -> FrozenSet[str]:
        return frozenset(self.coeffs)

    def offset_from(self, index_name: str) -> Union[int, None]:
        """``self − index_name`` if that difference is a constant, else None.

        This is the paper's "index offset" (§II-B): the reference is RIA-
        compatible in this dimension iff the expression is exactly
        ``index_name + c``.
        """
        if self.coeffs == {index_name: 1}:
            return self.const
        return None

    def __str__(self) -> str:
        parts = []
        for v, c in self.coeffs.items():
            if c == 1:
                parts.append(v)
            elif c == -1:
                parts.append(f"-{v}")
            else:
                parts.append(f"{c}{v}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


@dataclass(frozen=True)
class NonAffine:
    """An opaque non-affine index term, e.g. ``⌊k/K⌋`` or ``k mod K``.

    Carries the indices it depends on so violation messages can explain
    *why* the offset is not constant.
    """

    description: str
    depends_on: FrozenSet[str] = frozenset()

    def offset_from(self, index_name: str) -> None:
        """A non-affine expression never has a constant offset."""
        return None

    def __str__(self) -> str:
        return self.description


#: Any index expression.
IndexExpr = Union[Affine, NonAffine]


def floor_div(index: str, divisor: int) -> NonAffine:
    """``⌊index / divisor⌋`` — the term 2D convolution needs (Fig. 2b)."""
    return NonAffine(f"floor({index}/{divisor})", frozenset({index}))


def mod(index: str, divisor: int) -> NonAffine:
    """``index mod divisor`` — the other offending term in Fig. 2b."""
    return NonAffine(f"{index}%{divisor}", frozenset({index}))
