"""Recurrence relations and systems (the RIA formalism of §II-B).

A :class:`RecurrenceSystem` is a set of single-assignment recurrence
relations over indexed variables.  The paper's three RIA conditions:

(a) each variable is a name plus a fixed set of indices;
(b) each variable is assigned exactly once (single assignment);
(c) for every relation, the index offset between the LHS variable and each
    RHS variable is a constant.

Condition checking lives in :mod:`repro.ria.analysis`; this module is the
data model plus structural validation for (a) and (b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .expr import Affine, IndexExpr


@dataclass(frozen=True)
class VarRef:
    """A reference ``name[e_1, ..., e_m]`` on the right-hand side."""

    name: str
    indices: Tuple[IndexExpr, ...]

    @classmethod
    def simple(cls, name: str, *index_names_or_exprs) -> "VarRef":
        """Build a reference from index names (str), ``(name, shift)`` pairs
        or ready :class:`IndexExpr` objects."""
        exprs: List[IndexExpr] = []
        for item in index_names_or_exprs:
            if isinstance(item, str):
                exprs.append(Affine.var(item))
            elif isinstance(item, tuple):
                exprs.append(Affine.var(item[0], item[1]))
            else:
                exprs.append(item)
        return cls(name, tuple(exprs))

    def __str__(self) -> str:
        return f"{self.name}[{', '.join(str(e) for e in self.indices)}]"


@dataclass(frozen=True)
class Recurrence:
    """One relation: ``lhs_var[lhs_indices] = f(rhs...)``.

    ``lhs_indices`` are plain iteration-index names — the LHS of a
    recurrence in single-assignment form is always an identity indexing of
    the iteration point.
    """

    lhs_var: str
    lhs_indices: Tuple[str, ...]
    rhs: Tuple[VarRef, ...]
    note: str = ""

    def __str__(self) -> str:
        lhs = f"{self.lhs_var}[{', '.join(self.lhs_indices)}]"
        return f"{lhs} = f({', '.join(str(r) for r in self.rhs)})"


class StructureError(ValueError):
    """Raised when a system violates conditions (a) or (b) structurally."""


@dataclass
class RecurrenceSystem:
    """A named system of recurrences over an iteration domain.

    Attributes:
        name: human-readable algorithm name.
        index_names: the iteration indices (e.g. ``("i", "j", "k")``).
        recurrences: the relations.
        inputs: variable names that are boundary inputs (never assigned).
    """

    name: str
    index_names: Tuple[str, ...]
    recurrences: List[Recurrence] = field(default_factory=list)
    inputs: Tuple[str, ...] = ()

    def add(
        self,
        lhs_var: str,
        lhs_indices: Sequence[str],
        rhs: Sequence[VarRef],
        note: str = "",
    ) -> Recurrence:
        rec = Recurrence(lhs_var, tuple(lhs_indices), tuple(rhs), note)
        self.recurrences.append(rec)
        return rec

    # ------------------------------------------------- structural validation

    def variable_arities(self) -> Dict[str, int]:
        """Arity of every variable; raises if a name is used inconsistently
        (condition (a): a variable is a name plus a fixed index set)."""
        arities: Dict[str, int] = {}

        def record(name: str, arity: int, where: str) -> None:
            if name in arities and arities[name] != arity:
                raise StructureError(
                    f"{self.name}: variable {name!r} used with arity "
                    f"{arities[name]} and {arity} ({where})"
                )
            arities.setdefault(name, arity)

        for rec in self.recurrences:
            record(rec.lhs_var, len(rec.lhs_indices), f"LHS of {rec}")
            for ref in rec.rhs:
                record(ref.name, len(ref.indices), f"RHS of {rec}")
        return arities

    def assigned_variables(self) -> Dict[str, List[Recurrence]]:
        out: Dict[str, List[Recurrence]] = {}
        for rec in self.recurrences:
            out.setdefault(rec.lhs_var, []).append(rec)
        return out

    def check_single_assignment(self) -> Optional[str]:
        """Condition (b): return a violation message, or None if satisfied."""
        for var, recs in self.assigned_variables().items():
            if len(recs) > 1:
                return (
                    f"variable {var!r} is assigned by {len(recs)} recurrences "
                    "(single-assignment violated)"
                )
            if var in self.inputs:
                return f"input variable {var!r} must not be assigned"
        for rec in self.recurrences:
            bad = [n for n in rec.lhs_indices if n not in self.index_names]
            if bad:
                return f"LHS of {rec} uses unknown indices {bad}"
        return None
