"""Canned recurrence systems for the algorithms the paper analyzes.

* :func:`matmul` — Fig. 1(b): matrix multiplication *is* an RIA.
* :func:`conv1d` — Fig. 7(a): 1D convolution *is* an RIA (hence FuSeConv is
  a systolic algorithm, §IV-B).
* :func:`conv2d_direct` — Fig. 2(b): 2D convolution in single-assignment
  form needs ``⌊k/K⌋`` and ``k mod K`` index terms — *not* an RIA.
* :func:`conv2d_refactored` — §III-A's attempted refactor: products mapped
  to the k axis, but A/B indices still depend on k — *not* an RIA.
* :func:`im2col_matmul` — §III-B: after im2col the computation is a matrix
  multiplication again (RIA), at the price of duplicated data and, for
  depthwise convolution, a single-column mapping.
* :func:`pointwise_conv` — a vector dot-product per output: RIA (§IV-B).
"""

from __future__ import annotations

from .expr import Affine, NonAffine
from .recurrence import RecurrenceSystem, VarRef


def matmul() -> RecurrenceSystem:
    """Matrix multiplication recurrences (Fig. 1b).

    ``A[i,j,k] = A[i,j-1,k]``; ``B[i,j,k] = B[i-1,j,k]``;
    ``C[i,j,k] = C[i,j,k-1] + A[i,j,k]·B[i,j,k]``.
    """
    sys = RecurrenceSystem("matmul", index_names=("i", "j", "k"))
    sys.add("A", ("i", "j", "k"), [VarRef.simple("A", "i", ("j", -1), "k")],
            note="A propagates along j (array rows)")
    sys.add("B", ("i", "j", "k"), [VarRef.simple("B", ("i", -1), "j", "k")],
            note="B propagates along i (array columns)")
    sys.add(
        "C",
        ("i", "j", "k"),
        [
            VarRef.simple("C", "i", "j", ("k", -1)),
            VarRef.simple("A", "i", "j", "k"),
            VarRef.simple("B", "i", "j", "k"),
        ],
        note="C accumulates along k (time)",
    )
    return sys


def conv1d() -> RecurrenceSystem:
    """1D convolution ``y_i = Σ_k w_k · x_{i+k}`` in RIA form (Fig. 7a).

    Weights propagate across outputs; the input sample needed at ``(i, k)``
    equals the one at ``(i-1, k+1)``, giving constant offsets throughout.
    """
    sys = RecurrenceSystem("conv1d", index_names=("i", "k"))
    sys.add("W", ("i", "k"), [VarRef.simple("W", ("i", -1), "k")],
            note="weight w_k reused by every output i")
    sys.add("X", ("i", "k"), [VarRef.simple("X", ("i", -1), ("k", 1))],
            note="x_{i+k} was x at (i-1, k+1)")
    sys.add(
        "Y",
        ("i", "k"),
        [
            VarRef.simple("Y", "i", ("k", -1)),
            VarRef.simple("W", "i", "k"),
            VarRef.simple("X", "i", "k"),
        ],
        note="output accumulates over the K taps",
    )
    return sys


def conv2d_direct(kernel: int = 3) -> RecurrenceSystem:
    """2D convolution in single-assignment form (Fig. 2b) — NOT an RIA.

    ``C[i,j,k] = C[i,j,k-1] + A[i+⌊k/K⌋, j+k%K]·B[⌊k/K⌋, k%K]``: the A and
    B index expressions depend on k non-affinely, so the index offsets are
    not constants.
    """
    k = kernel
    sys = RecurrenceSystem(f"conv2d_direct(K={k})", index_names=("i", "j", "k"))
    sys.add(
        "C",
        ("i", "j", "k"),
        [
            VarRef.simple("C", "i", "j", ("k", -1)),
            VarRef(
                "A",
                (
                    NonAffine(f"i + floor(k/{k})", frozenset({"i", "k"})),
                    NonAffine(f"j + k%{k}", frozenset({"j", "k"})),
                    Affine.const_expr(0),
                ),
            ),
            VarRef(
                "B",
                (
                    NonAffine(f"floor(k/{k})", frozenset({"k"})),
                    NonAffine(f"k%{k}", frozenset({"k"})),
                    Affine.const_expr(0),
                ),
            ),
        ],
        note="the K×K receptive field is serialized along k",
    )
    return sys


def conv2d_refactored(kernel: int = 3) -> RecurrenceSystem:
    """§III-A's attempted refactor of 2D convolution — still NOT an RIA.

    Mapping the K² products to k gives C a constant self-offset, but the
    A/B grid accesses still make the i,j offsets depend on k: "in the same
    recurrence relation, the i,j index of C remain constant while those of
    A,B depend on k".
    """
    k = kernel
    sys = RecurrenceSystem(f"conv2d_refactored(K={k})", index_names=("i", "j", "k"))
    sys.add(
        "C",
        ("i", "j", "k"),
        [
            VarRef.simple("C", "i", "j", ("k", -1)),
            VarRef(
                "A",
                (
                    NonAffine(f"i + r(k)", frozenset({"i", "k"})),
                    NonAffine(f"j + s(k)", frozenset({"j", "k"})),
                    Affine.var("k"),
                ),
            ),
            VarRef(
                "B",
                (
                    NonAffine("r(k)", frozenset({"k"})),
                    NonAffine("s(k)", frozenset({"k"})),
                    Affine.var("k"),
                ),
            ),
        ],
        note="any access order (r(k), s(k)) over the K×K grid depends on k",
    )
    return sys


def im2col_matmul() -> RecurrenceSystem:
    """Convolution after im2col (§III-B): a matrix multiplication — RIA.

    Identical structure to :func:`matmul`; for *depthwise* convolution the
    j extent is 1 (a single filter column), which is why the mapping wastes
    the array (Fig. 2c).
    """
    sys = matmul()
    sys.name = "im2col_matmul"
    return sys


def pointwise_conv() -> RecurrenceSystem:
    """1×1 (pointwise) convolution as dot products — RIA (§IV-B).

    For output pixel p and filter f: ``Y[p,f,c] = Y[p,f,c-1] + X[p,f,c]·W[p,f,c]``
    with X propagating across filters and W across pixels.
    """
    sys = RecurrenceSystem("pointwise_conv", index_names=("p", "f", "c"))
    sys.add("X", ("p", "f", "c"), [VarRef.simple("X", "p", ("f", -1), "c")],
            note="input pixel reused by every filter")
    sys.add("W", ("p", "f", "c"), [VarRef.simple("W", ("p", -1), "f", "c")],
            note="filter reused by every pixel")
    sys.add(
        "Y",
        ("p", "f", "c"),
        [
            VarRef.simple("Y", "p", "f", ("c", -1)),
            VarRef.simple("X", "p", "f", "c"),
            VarRef.simple("W", "p", "f", "c"),
        ],
        note="dot product over channels",
    )
    return sys


#: name -> builder, for CLI/examples.
ALGORITHMS = {
    "matmul": matmul,
    "conv1d": conv1d,
    "conv2d_direct": conv2d_direct,
    "conv2d_refactored": conv2d_refactored,
    "im2col_matmul": im2col_matmul,
    "pointwise_conv": pointwise_conv,
}
