"""Regular Iterative Algorithm formalism (§II-B/§III of the paper)."""

from .algorithms import (
    ALGORITHMS,
    conv1d,
    conv2d_direct,
    conv2d_refactored,
    im2col_matmul,
    matmul,
    pointwise_conv,
)
from .analysis import RIAResult, Violation, check_ria, dependence_vectors
from .expr import Affine, IndexExpr, NonAffine, floor_div, mod
from .projection import SpaceTimeMapping, enumerate_schedules, synthesize_mapping
from .recurrence import Recurrence, RecurrenceSystem, StructureError, VarRef

__all__ = [
    "ALGORITHMS",
    "conv1d",
    "conv2d_direct",
    "conv2d_refactored",
    "im2col_matmul",
    "matmul",
    "pointwise_conv",
    "RIAResult",
    "Violation",
    "check_ria",
    "dependence_vectors",
    "Affine",
    "IndexExpr",
    "NonAffine",
    "floor_div",
    "mod",
    "SpaceTimeMapping",
    "enumerate_schedules",
    "synthesize_mapping",
    "Recurrence",
    "RecurrenceSystem",
    "StructureError",
    "VarRef",
]
