"""Space-time mapping of RIA systems onto systolic arrays (§II-C).

Given an RIA's constant dependence vectors, classical systolic synthesis
(Rao & Kailath; Quinton) picks

* a **schedule vector** λ with ``λ·d ≥ 1`` for every dependence ``d``
  (every value is produced before it is consumed), and
* a **projection direction** u with ``λ·u ≠ 0`` (two iterations mapped to
  the same PE never execute in the same cycle).

Projecting the iteration space along u yields the PE coordinates; λ·p is
the firing time.  For matrix multiplication with λ=(1,1,1) and u=(0,0,1)
this recovers exactly Fig. 1(d): a 2D array indexed by (i, j) where C is
stationary — the output-stationary dataflow.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis import dependence_vectors
from .recurrence import RecurrenceSystem


@dataclass(frozen=True)
class SpaceTimeMapping:
    """A (schedule, projection) pair for an RIA system.

    Attributes:
        schedule: λ, the timing vector.
        projection: u, the direction collapsed into time.
        kept_dims: indices of the iteration axes that become PE coordinates.
        makespan: cycles to execute the given domain.
        pe_extent: array size along each kept dimension.
        stationary_vars: variables whose dependence projects to the zero PE
            displacement — they rest in place (e.g. C ⇒ output-stationary).
    """

    schedule: Tuple[int, ...]
    projection: Tuple[int, ...]
    kept_dims: Tuple[int, ...]
    makespan: int
    pe_extent: Tuple[int, ...]
    stationary_vars: Tuple[str, ...]

    @property
    def dataflow_name(self) -> str:
        """Conventional dataflow label derived from the stationary variable."""
        mapping = {"C": "output-stationary", "Y": "output-stationary",
                   "B": "weight-stationary", "W": "weight-stationary",
                   "A": "input-stationary", "X": "input-stationary"}
        for var in self.stationary_vars:
            if var in mapping:
                return mapping[var]
        return "custom"

    def time_of(self, point: Sequence[int]) -> int:
        return sum(l * p for l, p in zip(self.schedule, point))

    def pe_of(self, point: Sequence[int]) -> Tuple[int, ...]:
        return tuple(point[d] for d in self.kept_dims)


def _schedule_is_valid(schedule: Tuple[int, ...], deps: List[Tuple[int, ...]]) -> bool:
    return all(sum(l * d for l, d in zip(schedule, dep)) >= 1 for dep in deps)


def _makespan(schedule: Tuple[int, ...], extents: Sequence[int]) -> int:
    """Span of λ·p over the box domain [0, e_i) plus one."""
    lo = sum(min(l * (e - 1), 0) for l, e in zip(schedule, extents))
    hi = sum(max(l * (e - 1), 0) for l, e in zip(schedule, extents))
    return hi - lo + 1


def enumerate_schedules(
    deps: List[Tuple[int, ...]], dims: int, bound: int = 2
) -> List[Tuple[int, ...]]:
    """All valid schedule vectors with entries in [-bound, bound]."""
    candidates = []
    for schedule in itertools.product(range(-bound, bound + 1), repeat=dims):
        if any(schedule) and _schedule_is_valid(schedule, deps):
            candidates.append(schedule)
    return candidates


def synthesize_mapping(
    system: RecurrenceSystem,
    extents: Sequence[int],
    projection: Optional[Sequence[int]] = None,
    bound: int = 2,
) -> SpaceTimeMapping:
    """Find a minimal-makespan space-time mapping for an RIA system.

    Args:
        system: an RIA recurrence system (raises if it is not an RIA).
        extents: iteration-domain extents, one per index.
        projection: optionally force a projection direction (must be a
            standard basis vector, e.g. ``(0, 0, 1)`` to collapse k).
        bound: schedule entries searched in ``[-bound, bound]``.

    Returns:
        The mapping with the smallest makespan (ties: smallest |λ|₁).

    Raises:
        ValueError: if the system is not an RIA or no valid schedule exists.
    """
    deps = dependence_vectors(system)
    dims = len(system.index_names)
    if len(extents) != dims:
        raise ValueError(f"expected {dims} extents, got {len(extents)}")

    schedules = enumerate_schedules(deps, dims, bound)
    if not schedules:
        raise ValueError(f"no valid schedule for {system.name} within bound {bound}")

    if projection is not None:
        proj_candidates = [tuple(projection)]
    else:
        proj_candidates = [
            tuple(1 if d == axis else 0 for d in range(dims)) for axis in range(dims)
        ]

    best: Optional[SpaceTimeMapping] = None
    result_offsets = _variable_dependences(system)
    for schedule in schedules:
        for proj in proj_candidates:
            if sum(abs(x) for x in proj) != 1:
                raise ValueError(f"projection {proj} must be a standard basis vector")
            if sum(l * u for l, u in zip(schedule, proj)) == 0:
                continue  # conflict: same PE, same time
            kept = tuple(d for d in range(dims) if proj[d] == 0)
            stationary = tuple(
                var
                for var, dep in result_offsets.items()
                if dep is not None and all(dep[d] == 0 for d in kept)
            )
            mapping = SpaceTimeMapping(
                schedule=schedule,
                projection=proj,
                kept_dims=kept,
                makespan=_makespan(schedule, extents),
                pe_extent=tuple(extents[d] for d in kept),
                stationary_vars=stationary,
            )
            if best is None or (mapping.makespan, _l1(schedule)) < (
                best.makespan,
                _l1(best.schedule),
            ):
                best = mapping
    assert best is not None
    return best


def _l1(vec: Tuple[int, ...]) -> int:
    return sum(abs(x) for x in vec)


def _variable_dependences(system: RecurrenceSystem) -> Dict[str, Optional[Tuple[int, ...]]]:
    """Self-dependence (propagation direction) of each assigned variable."""
    from .analysis import check_ria

    result = check_ria(system)
    out: Dict[str, Optional[Tuple[int, ...]]] = {}
    for (lhs, ref), offset in result.offsets.items():
        if lhs == ref and any(offset):
            out[lhs] = tuple(-x for x in offset)
        else:
            out.setdefault(lhs, None)
    return out
