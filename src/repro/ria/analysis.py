"""RIA condition checking and dependence extraction (§II-B, §III-A).

:func:`check_ria` decides whether a recurrence system is a Regular
Iterative Algorithm — the super-set of systolic algorithms the paper uses
to prove 2D convolution cannot run systolically.  For systems that pass,
:func:`dependence_vectors` extracts the constant index offsets, which feed
the space-time mapping synthesis in :mod:`repro.ria.projection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .recurrence import Recurrence, RecurrenceSystem, StructureError, VarRef


@dataclass(frozen=True)
class Violation:
    """One reason a system fails to be an RIA."""

    recurrence: str
    reference: str
    dimension: Optional[int]
    reason: str

    def __str__(self) -> str:
        where = f" (dimension {self.dimension})" if self.dimension is not None else ""
        return f"{self.recurrence}: {self.reference}{where}: {self.reason}"


@dataclass
class RIAResult:
    """Outcome of :func:`check_ria`."""

    system: str
    is_ria: bool
    violations: List[Violation] = field(default_factory=list)
    #: for RIA systems: (recurrence lhs, ref name) -> constant offset vector
    offsets: Dict[Tuple[str, str], Tuple[int, ...]] = field(default_factory=dict)

    def explain(self) -> str:
        if self.is_ria:
            lines = [f"{self.system}: RIA ✓ (all index offsets constant)"]
            for (lhs, ref), off in self.offsets.items():
                lines.append(f"  {lhs} <- {ref}: offset {list(off)}")
            return "\n".join(lines)
        lines = [f"{self.system}: NOT an RIA ✗"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def _ref_offsets(rec: Recurrence, ref: VarRef) -> Tuple[Optional[Tuple[int, ...]], List[Violation]]:
    """Constant offset vector of one reference, or the violations found.

    A reference is RIA-compatible when it has the same arity as the LHS and
    every dimension's expression is ``lhs_index + constant``.  References to
    lower-arity *input* variables are handled by the caller (inputs are
    conventionally embedded with identity indices in single-assignment
    form; systems in :mod:`repro.ria.algorithms` always use full-arity
    propagation variables, matching Fig. 1b).
    """
    violations: List[Violation] = []
    if len(ref.indices) != len(rec.lhs_indices):
        violations.append(
            Violation(
                recurrence=str(rec),
                reference=str(ref),
                dimension=None,
                reason=(
                    f"arity {len(ref.indices)} differs from LHS arity "
                    f"{len(rec.lhs_indices)}; offsets are undefined"
                ),
            )
        )
        return None, violations

    offsets: List[int] = []
    for dim, (lhs_index, expr) in enumerate(zip(rec.lhs_indices, ref.indices)):
        offset = expr.offset_from(lhs_index)
        if offset is None:
            depends = ", ".join(sorted(expr.depends_on)) or "nothing"
            violations.append(
                Violation(
                    recurrence=str(rec),
                    reference=str(ref),
                    dimension=dim,
                    reason=(
                        f"index expression '{expr}' is not '{lhs_index} + const' "
                        f"(depends on {depends}) — offset varies with the "
                        "iteration point"
                    ),
                )
            )
        else:
            offsets.append(offset)
    if violations:
        return None, violations
    return tuple(offsets), []


def check_ria(system: RecurrenceSystem) -> RIAResult:
    """Check the paper's three RIA conditions on a recurrence system."""
    result = RIAResult(system=system.name, is_ria=True)

    # Conditions (a) and (b): structural.
    try:
        system.variable_arities()
    except StructureError as exc:
        result.is_ria = False
        result.violations.append(
            Violation(recurrence="<system>", reference="<arity>", dimension=None,
                      reason=str(exc))
        )
    single_assignment_issue = system.check_single_assignment()
    if single_assignment_issue:
        result.is_ria = False
        result.violations.append(
            Violation(recurrence="<system>", reference="<assignment>",
                      dimension=None, reason=single_assignment_issue)
        )

    # Condition (c): constant index offsets.
    for rec in system.recurrences:
        for ref in rec.rhs:
            offsets, violations = _ref_offsets(rec, ref)
            if violations:
                result.is_ria = False
                result.violations.extend(violations)
            else:
                result.offsets[(rec.lhs_var, ref.name)] = offsets  # type: ignore[assignment]
    return result


def dependence_vectors(system: RecurrenceSystem) -> List[Tuple[int, ...]]:
    """Distinct non-zero dependence vectors of an RIA system.

    A reference with offset ``d`` means iteration ``p`` reads the value
    produced at ``p + d``; the *dependence* (producer → consumer) is
    ``-d``.  Zero offsets (same-point reads) impose no inter-PE
    communication and are dropped.

    Raises:
        ValueError: if the system is not an RIA.
    """
    result = check_ria(system)
    if not result.is_ria:
        raise ValueError(
            f"{system.name} is not an RIA:\n" + "\n".join(str(v) for v in result.violations)
        )
    deps = []
    seen = set()
    for offset in result.offsets.values():
        dep = tuple(-x for x in offset)
        if any(dep) and dep not in seen:
            seen.add(dep)
            deps.append(dep)
    return deps
