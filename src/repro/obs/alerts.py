"""SLO burn-rate alerts over the snapshot ring.

A burn-rate rule fires when a bad-event rate exceeds its threshold over
*two* windows at once — a short one (so pages are fast) and a long one
(so a single bad second doesn't page).  That is the standard
multi-window construction; here the "budget" is the serving node's SLO
posture:

* ``shed-burn``  — fraction of submitted requests shed or expired;
* ``slo-burn``   — fraction of answered requests that missed their SLO;
* ``p99-vs-slo`` — windowed p99 latency above the configured SLO target
  (only evaluated when the caller knows the target, e.g. the server's
  ``slo_ms``).

:func:`evaluate_alerts` reduces a :class:`~repro.obs.snapshots.SnapshotRing`
through :func:`~repro.obs.snapshots.derive_live` once per window and
returns every rule's state (firing or not), so ``repro top``, the
loadgen report and the chaos bounds all render the same verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from .snapshots import LiveStats, SnapshotRing, derive_live

__all__ = ["BurnRule", "Alert", "DEFAULT_RULES", "evaluate_alerts",
           "render_alerts"]


@dataclass(frozen=True)
class BurnRule:
    """One multi-window burn-rate rule over a :class:`LiveStats` field."""

    name: str
    field: str            # LiveStats attribute holding the bad-event rate
    threshold: float      # fire when BOTH windows exceed this
    fast_window_s: float = 5.0
    slow_window_s: float = 30.0
    severity: str = "page"
    needs_slo: bool = False  # only evaluated when an SLO target is known

    def value(self, stats: LiveStats, slo_ms: Optional[float]) -> float:
        raw = float(getattr(stats, self.field))
        if self.field == "p99_ms" and slo_ms:
            # Normalize latency to a burn ratio: 1.0 == exactly at SLO.
            return raw / slo_ms if slo_ms > 0 else 0.0
        return raw


@dataclass(frozen=True)
class Alert:
    """One rule's evaluated state."""

    rule: str
    severity: str
    firing: bool
    fast_value: float
    slow_value: float
    threshold: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "firing": self.firing,
            "fast_value": self.fast_value,
            "slow_value": self.slow_value,
            "threshold": self.threshold,
        }


DEFAULT_RULES: Sequence[BurnRule] = (
    BurnRule(name="shed-burn", field="shed_rate", threshold=0.10),
    BurnRule(name="slo-burn", field="slo_violation_rate", threshold=0.10),
    BurnRule(name="p99-vs-slo", field="p99_ms", threshold=1.0,
             needs_slo=True),
)


def evaluate_alerts(
    ring: SnapshotRing,
    slo_ms: Optional[float] = None,
    rules: Sequence[BurnRule] = DEFAULT_RULES,
) -> List[Alert]:
    """Evaluate every applicable rule against the ring's recent history.

    A rule fires only when its rate exceeds the threshold over the fast
    *and* the slow window — and only once the ring holds enough history
    to cover the fast window (no alerts off a single cold sample).
    """
    applicable = [r for r in rules if slo_ms or not r.needs_slo]
    if not applicable:
        return []
    stats_by_window: Dict[float, LiveStats] = {}
    for rule in applicable:
        for window in (rule.fast_window_s, rule.slow_window_s):
            if window not in stats_by_window:
                stats_by_window[window] = derive_live(ring, window_s=window)
    out: List[Alert] = []
    for rule in applicable:
        fast = stats_by_window[rule.fast_window_s]
        slow = stats_by_window[rule.slow_window_s]
        fast_value = rule.value(fast, slo_ms)
        slow_value = rule.value(slow, slo_ms)
        warm = fast.window_s > 0 and slow.window_s > 0
        out.append(Alert(
            rule=rule.name,
            severity=rule.severity,
            firing=bool(
                warm
                and fast_value > rule.threshold
                and slow_value > rule.threshold
            ),
            fast_value=fast_value,
            slow_value=slow_value,
            threshold=rule.threshold,
        ))
    return out


def with_windows(rules: Sequence[BurnRule], fast_s: float,
                 slow_s: float) -> List[BurnRule]:
    """The same rules with rescaled windows (short smoke runs can't wait
    30 s for a slow window to warm up)."""
    return [replace(r, fast_window_s=fast_s, slow_window_s=slow_s)
            for r in rules]


def render_alerts(alerts: Sequence[Alert]) -> str:
    """One-line-per-rule text block (used by ``repro top`` and reports)."""
    if not alerts:
        return "alerts: none configured"
    lines = []
    for alert in alerts:
        state = "FIRING" if alert.firing else "ok"
        lines.append(
            f"  {alert.rule:<12} {state:<7} "
            f"fast={alert.fast_value:.3f} slow={alert.slow_value:.3f} "
            f"(> {alert.threshold:.2f} fires)"
        )
    return "alerts:\n" + "\n".join(lines)
