"""Rewrite metrics sidecars as compact summaries: ``python -m repro.obs.compact``.

The benchmark harness historically committed full-fidelity metrics
snapshots — megabytes of per-layer counter series per sidecar.  This tool
applies :func:`repro.obs.export.summarize_metrics` in place::

    python -m repro.obs.compact benchmarks/results/*.metrics.json

Already-compact files (``header.metrics_compact``) are left untouched, so
the command is idempotent.  Each rewritten file is revalidated against the
``repro.metrics/v1`` schema before it replaces the original.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from .export import summarize_metrics, validate_metrics


def compact_file(path: Path) -> bool:
    """Summarize one sidecar in place; returns True if it was rewritten."""
    payload = json.loads(path.read_text())
    header = payload.get("header") or {}
    if header.get("metrics_compact"):
        return False
    summary = summarize_metrics(payload)
    validate_metrics(summary)
    path.write_text(json.dumps(summary, indent=2, default=str) + "\n")
    return True


def main(argv=None) -> int:
    paths = [Path(p) for p in (argv if argv is not None else sys.argv[1:])]
    if not paths:
        print("usage: python -m repro.obs.compact FILE.metrics.json [...]",
              file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            before = path.stat().st_size
            changed = compact_file(path)
            after = path.stat().st_size
        except (OSError, ValueError, KeyError) as exc:
            print(f"{path}: error: {exc}", file=sys.stderr)
            status = 1
            continue
        state = f"{before:,} -> {after:,} bytes" if changed else "already compact"
        print(f"{path}: {state}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
