"""Rewrite observability sidecars as compact summaries: ``python -m repro.obs.compact``.

The benchmark harness historically committed full-fidelity metrics
snapshots — megabytes of per-layer counter series per sidecar — and the
serving stack now adds span sidecars with one trace chain per request.
This tool applies :func:`repro.obs.export.summarize_metrics` /
:func:`repro.obs.export.summarize_trace` in place::

    python -m repro.obs.compact benchmarks/results/*.metrics.json \
        benchmarks/results/*.trace.json

The sidecar kind is inferred from its shape (``traceEvents`` marks a
trace).  Already-compact files (``header.metrics_compact`` /
``otherData.trace_compact``) are left untouched, so the command is
idempotent.  Each rewritten file is revalidated against its schema
before it replaces the original.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from .export import (
    summarize_metrics,
    summarize_trace,
    validate_metrics,
    validate_trace,
)


def compact_file(path: Path, keep_per_name: int = 50) -> bool:
    """Summarize one sidecar in place; returns True if it was rewritten."""
    payload = json.loads(path.read_text())
    if "traceEvents" in payload:
        other = payload.get("otherData") or {}
        if other.get("trace_compact"):
            return False
        summary = summarize_trace(payload, keep_per_name=keep_per_name)
        validate_trace(summary)
    else:
        header = payload.get("header") or {}
        if header.get("metrics_compact"):
            return False
        summary = summarize_metrics(payload)
        validate_metrics(summary)
    path.write_text(json.dumps(summary, indent=2, default=str) + "\n")
    return True


def main(argv=None) -> int:
    paths = [Path(p) for p in (argv if argv is not None else sys.argv[1:])]
    if not paths:
        print("usage: python -m repro.obs.compact FILE.{metrics,trace}.json [...]",
              file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            before = path.stat().st_size
            changed = compact_file(path)
            after = path.stat().st_size
        except (OSError, ValueError, KeyError) as exc:
            print(f"{path}: error: {exc}", file=sys.stderr)
            status = 1
            continue
        state = f"{before:,} -> {after:,} bytes" if changed else "already compact"
        print(f"{path}: {state}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
