"""Trace context: the request-scoped identity that links spans together.

A :class:`SpanContext` is the ``(trace_id, span_id)`` pair one span hands
to its children.  The *trace* identifies one end-to-end request (a client
call travelling through transport, admission, queueing, batching and
execution); the *span* identifies one stage of it.  Contexts propagate
two ways:

* **implicitly** — :class:`~repro.obs.tracing.Span` publishes its context
  into a :class:`contextvars.ContextVar` while it is open, so nested
  spans (including across ``await`` and ``asyncio.to_thread``) pick up
  their parent automatically and structured log records
  (:mod:`repro.obs.logs`) can stamp ``trace_id``/``span_id`` fields;
* **explicitly** — the serving wire protocol carries the pair as a
  ``trace`` object (:mod:`repro.serve.transport`), and stages that
  execute far from the originating coroutine (queue wait recorded at
  batch dispatch, per-request engine spans inside a batch) pass the
  request's saved context straight to the tracer.

Identifiers are opaque hex strings, unique per process (a random process
prefix plus a counter).  Two same-seed runs therefore mint *different*
ids — replay determinism is stated over the span *topology* (names and
parent/child links; see :func:`repro.obs.tracing.span_topology`), never
over the ids themselves.
"""

from __future__ import annotations

import itertools
import secrets
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "SpanContext",
    "current_span_context",
    "activate_span_context",
    "new_trace_id",
    "new_span_id",
]

#: Random per-process prefix: ids stay unique when client and server are
#: different processes writing into traces that later get merged.
_PROCESS = secrets.token_hex(4)

_trace_ids = itertools.count(1)
_span_ids = itertools.count(1)


def new_trace_id() -> str:
    """A fresh trace identifier (one per end-to-end request)."""
    return f"{_PROCESS}t{next(_trace_ids):06x}"


def new_span_id() -> str:
    """A fresh span identifier (one per stage)."""
    return f"{_PROCESS}s{next(_span_ids):06x}"


@dataclass(frozen=True)
class SpanContext:
    """What a span hands to its children: its trace and its own id."""

    trace_id: str
    span_id: str

    def child(self) -> "SpanContext":
        """A new context in the same trace (the caller becomes the parent)."""
        return SpanContext(self.trace_id, new_span_id())

    def to_wire(self) -> dict:
        """The JSON object carried by the serving wire protocol."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, payload: object) -> Optional["SpanContext"]:
        """Decode a wire ``trace`` object; ``None`` when absent/malformed."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if isinstance(trace_id, str) and trace_id and isinstance(span_id, str):
            return cls(trace_id, span_id)
        return None


_ACTIVE: ContextVar[Optional[SpanContext]] = ContextVar(
    "repro.obs.span_context", default=None
)


def current_span_context() -> Optional[SpanContext]:
    """The innermost active span's context (``None`` outside any trace)."""
    return _ACTIVE.get()


def _set_context(ctx: Optional[SpanContext]):
    return _ACTIVE.set(ctx)


def _reset_context(token) -> None:
    _ACTIVE.reset(token)


@contextmanager
def activate_span_context(ctx: Optional[SpanContext]) -> Iterator[Optional[SpanContext]]:
    """Make ``ctx`` the current context for the duration of the block.

    Used by code that received a context out-of-band (the transport
    decoding a wire ``trace`` object) rather than by opening a span.
    """
    token = _ACTIVE.set(ctx)
    try:
        yield ctx
    finally:
        _ACTIVE.reset(token)
