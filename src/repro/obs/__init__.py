"""Observability: structured tracing, metrics, logging and profiling hooks.

The instrumentation layer the rest of the toolkit reports into:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges and histograms, JSON round-trip;
* :mod:`repro.obs.tracing` — span-based wall-clock :class:`Tracer`
  exporting Chrome trace-event format (``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.logs` — ``key=value`` structured logging on stderr;
* :mod:`repro.obs.export` — metrics/trace JSON sidecars with a
  version + git SHA + :class:`~repro.systolic.ArrayConfig` header, plus
  schema validators;
* :mod:`repro.obs.profiling` — ``@profiled`` duration histograms.

Everything funnels into process-wide singletons (:func:`get_registry`,
:func:`get_tracer`) so the CLI's ``--metrics-out`` / ``--trace-out`` flags
capture whatever the invoked code recorded.  The tracer is a strict no-op
until enabled; see ``docs/observability.md``.
"""

from .export import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    SchemaError,
    array_dict,
    git_sha,
    metrics_payload,
    repro_version,
    run_header,
    summarize_metrics,
    trace_payload,
    validate_metrics,
    validate_trace,
    version_string,
    write_metrics,
    write_trace,
)
from .logs import StructuredLogger, configure as configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .profiling import profiled
from .tracing import Span, Tracer, get_tracer

__all__ = [
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "SchemaError",
    "array_dict",
    "git_sha",
    "metrics_payload",
    "repro_version",
    "run_header",
    "summarize_metrics",
    "trace_payload",
    "validate_metrics",
    "validate_trace",
    "version_string",
    "write_metrics",
    "write_trace",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "profiled",
    "Span",
    "Tracer",
    "get_tracer",
]
