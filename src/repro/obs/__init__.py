"""Observability: structured tracing, metrics, logging and profiling hooks.

The instrumentation layer the rest of the toolkit reports into:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges and histograms, JSON round-trip;
* :mod:`repro.obs.tracing` — span-based wall-clock :class:`Tracer`
  exporting Chrome trace-event format (``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.logs` — ``key=value`` structured logging on stderr;
* :mod:`repro.obs.export` — metrics/trace JSON sidecars with a
  version + git SHA + :class:`~repro.systolic.ArrayConfig` header, plus
  schema validators;
* :mod:`repro.obs.profiling` — ``@profiled`` duration histograms;
* :mod:`repro.obs.context` — request-scoped :class:`SpanContext`
  propagation (contextvars + wire);
* :mod:`repro.obs.stats` — shared percentile math (nearest-rank and
  histogram-quantile estimators);
* :mod:`repro.obs.expose` — Prometheus-style text exposition, parser,
  and the ``--metrics-port`` HTTP endpoint;
* :mod:`repro.obs.snapshots` — bounded snapshot ring + loop over the
  registry, with live QPS/latency derivation;
* :mod:`repro.obs.alerts` — multi-window SLO burn-rate rules over the
  snapshot ring.

Everything funnels into process-wide singletons (:func:`get_registry`,
:func:`get_tracer`) so the CLI's ``--metrics-out`` / ``--trace-out`` flags
capture whatever the invoked code recorded.  The tracer is a strict no-op
until enabled; see ``docs/observability.md``.
"""

from .alerts import Alert, BurnRule, evaluate_alerts, render_alerts
from .context import (
    SpanContext,
    activate_span_context,
    current_span_context,
    new_span_id,
    new_trace_id,
)
from .export import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    SchemaError,
    array_dict,
    git_sha,
    metrics_payload,
    repro_version,
    run_header,
    summarize_metrics,
    summarize_trace,
    trace_payload,
    validate_metrics,
    validate_trace,
    version_string,
    write_metrics,
    write_trace,
)
from .expose import (
    ExpositionServer,
    parse_exposition,
    render_exposition,
    render_exposition_dict,
)
from .logs import StructuredLogger, configure as configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .profiling import profiled
from .snapshots import (
    LiveStats,
    Snapshot,
    SnapshotLoop,
    SnapshotRing,
    aggregate_live,
    derive_live,
)
from .stats import histogram_quantile, percentile, quantile_from_payload
from .tracing import Span, Tracer, get_tracer, span_topology, trace_chains

__all__ = [
    "Alert",
    "BurnRule",
    "evaluate_alerts",
    "render_alerts",
    "SpanContext",
    "activate_span_context",
    "current_span_context",
    "new_span_id",
    "new_trace_id",
    "summarize_trace",
    "ExpositionServer",
    "parse_exposition",
    "render_exposition",
    "render_exposition_dict",
    "LiveStats",
    "Snapshot",
    "SnapshotLoop",
    "SnapshotRing",
    "aggregate_live",
    "derive_live",
    "histogram_quantile",
    "percentile",
    "quantile_from_payload",
    "span_topology",
    "trace_chains",
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "SchemaError",
    "array_dict",
    "git_sha",
    "metrics_payload",
    "repro_version",
    "run_header",
    "summarize_metrics",
    "trace_payload",
    "validate_metrics",
    "validate_trace",
    "version_string",
    "write_metrics",
    "write_trace",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "profiled",
    "Span",
    "Tracer",
    "get_tracer",
]
