"""Structured logging for the toolkit (``key=value`` fields on stderr).

Diagnostics go through here; user-facing *results* (tables, reports) stay
on stdout.  :func:`get_logger` returns a thin wrapper over the stdlib
logger namespace ``repro.*`` that renders keyword fields as ``key=value``
pairs::

    log = get_logger("cli")
    log.info("command finished", command="latency", seconds=0.42)

:func:`configure` installs the stderr handler and sets the level — the CLI
calls it from ``--log-level`` / ``--quiet``; library use without
:func:`configure` emits nothing below WARNING (stdlib default), so
importing the toolkit stays silent.

When a record is emitted under an active span
(:func:`repro.obs.context.current_span_context`), ``trace_id`` and
``span_id`` fields are stamped automatically, so a degraded request's log
lines and its spans join up in one grep.
"""

from __future__ import annotations

import logging
import sys
from typing import Dict, Optional

from .context import current_span_context

ROOT_NAME = "repro"

LEVELS: Dict[str, int] = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def _format_fields(message: str, fields: Dict[str, object]) -> str:
    ctx = current_span_context()
    if ctx is not None:
        fields = dict(fields)
        fields.setdefault("trace_id", ctx.trace_id)
        fields.setdefault("span_id", ctx.span_id)
    if not fields:
        return message
    rendered = " ".join(f"{k}={v}" for k, v in fields.items())
    return f"{message} {rendered}"


class StructuredLogger:
    """Stdlib logger wrapper accepting keyword fields."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def stdlib(self) -> logging.Logger:
        return self._logger

    def debug(self, message: str, **fields) -> None:
        if self._logger.isEnabledFor(logging.DEBUG):
            self._logger.debug(_format_fields(message, fields))

    def info(self, message: str, **fields) -> None:
        if self._logger.isEnabledFor(logging.INFO):
            self._logger.info(_format_fields(message, fields))

    def warning(self, message: str, **fields) -> None:
        self._logger.warning(_format_fields(message, fields))

    def error(self, message: str, **fields) -> None:
        self._logger.error(_format_fields(message, fields))


def get_logger(name: Optional[str] = None) -> StructuredLogger:
    """A :class:`StructuredLogger` under the ``repro`` namespace."""
    full = ROOT_NAME if not name else (
        name if name.startswith(ROOT_NAME) else f"{ROOT_NAME}.{name}"
    )
    return StructuredLogger(logging.getLogger(full))


def configure(
    level: str = "info",
    quiet: bool = False,
    stream=None,
) -> None:
    """Install (or update) the stderr handler on the ``repro`` logger.

    ``quiet`` raises the threshold to ERROR regardless of ``level`` —
    diagnostics disappear while result tables keep printing on stdout.
    Idempotent: repeated calls reconfigure the single managed handler.
    """
    try:
        resolved = LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {', '.join(LEVELS)}"
        ) from None
    if quiet:
        resolved = logging.ERROR
    root = logging.getLogger(ROOT_NAME)
    root.setLevel(resolved)
    handler = next(
        (h for h in root.handlers if getattr(h, "_repro_managed", False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_managed = True
        handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    root.propagate = False
