"""Span-based wall-clock tracing with Chrome trace-event export.

A :class:`Tracer` records nested spans::

    from repro.obs import get_tracer

    tracer = get_tracer()
    with tracer.span("network.estimate", network="mobilenet_v2"):
        with tracer.span("gemm.fold", folds=12):
            ...

and serializes them as Chrome trace-event JSON (``ph: "X"`` complete
events), loadable in ``chrome://tracing`` and https://ui.perfetto.dev.
Nesting is implicit: Chrome/Perfetto stack events on the same thread by
time containment, so recording child spans before their parents (exit
order) renders correctly.

The tracer starts **disabled** and :meth:`Tracer.span` then returns a
shared no-op context manager — the cost of an instrumented call site is
one attribute check, which is what lets the simulator keep tracing hooks
in hot paths (the bound is benchmarked by ``bench_simulator_micro.py``).

**Bounded buffer**: the event store is a fixed-size ring
(``capacity`` events, default :data:`DEFAULT_TRACE_CAPACITY`).  A long
serving run can no longer grow memory without limit — once the ring is
full the oldest events are dropped and counted on the
``obs.trace_dropped`` counter, so an export that lost its head says so.

**Request tracing**: spans opened with ``new_trace=True`` (or under an
active :class:`~repro.obs.context.SpanContext`) carry
``trace_id``/``span_id``/``parent_span_id`` in their args, linking the
client→transport→queue→batch→engine chain of one serving request across
threads and processes (``docs/observability.md``).  :meth:`Tracer.complete`
records a span retroactively from explicit timestamps — how queue wait,
which only becomes known at batch dispatch, still gets a correctly-placed
slice.  :func:`span_topology` reduces an exported event list to the
timestamp-free parent/child structure that same-seed replay tests compare.

The cycle-level operand traces of :mod:`repro.systolic.trace` share this
export format via :meth:`TraceEvent.to_chrome_event` and can be merged
into a tracer with :meth:`Tracer.add_chrome_events`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from .context import (
    SpanContext,
    _reset_context,
    _set_context,
    current_span_context,
    new_span_id,
    new_trace_id,
)

#: Default ring capacity.  Sized so a trace-smoke sweep (hundreds of
#: thousands of fold spans) fits, while an unattended serving run stays
#: bounded at tens of MB of event dicts.
DEFAULT_TRACE_CAPACITY = 262_144


class _NullSpan:
    """Shared no-op span used while tracing is disabled."""

    __slots__ = ()

    #: Mirrors :attr:`Span.context` so callers can chain unconditionally.
    context = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        """Discard late-bound span arguments."""


_NULL_SPAN = _NullSpan()


class Span:
    """One live span; records a complete ("X") event when it exits.

    When the span opens under an active :class:`SpanContext` (or with an
    explicit ``ctx``/``new_trace``), it joins that trace: it gets its own
    ``span_id``, remembers its parent, and publishes its context for the
    duration of the block so children link up automatically.
    """

    __slots__ = ("_tracer", "name", "category", "args", "_start_ns",
                 "context", "_parent_id", "_explicit_ctx", "_new_trace",
                 "_token")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Dict[str, object],
                 ctx: Optional[SpanContext] = None,
                 new_trace: bool = False) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self._start_ns = 0
        self.context: Optional[SpanContext] = None
        self._parent_id: Optional[str] = None
        self._explicit_ctx = ctx
        self._new_trace = new_trace
        self._token = None

    def set(self, **args) -> None:
        """Attach arguments discovered while the span is running."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        self._start_ns = time.perf_counter_ns()
        parent = self._explicit_ctx
        if parent is None and not self._new_trace:
            parent = current_span_context()
        if self._new_trace:
            self.context = SpanContext(new_trace_id(), new_span_id())
        elif parent is not None:
            self.context = SpanContext(parent.trace_id, new_span_id())
            self._parent_id = parent.span_id
        if self.context is not None:
            self._token = _set_context(self.context)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        if self._token is not None:
            _reset_context(self._token)
            self._token = None
        if exc_type is not None:
            # Exception safety: the span still closes, flagged with the error.
            self.args["error"] = exc_type.__name__
        self._tracer._record(self, end_ns)
        return False  # never swallow the exception


def _context_args(args: Dict[str, object], ctx: SpanContext,
                  parent_id: Optional[str]) -> Dict[str, object]:
    """Event args extended with the trace-linking identifiers."""
    out = dict(args)
    out["trace_id"] = ctx.trace_id
    out["span_id"] = ctx.span_id
    if parent_id is not None:
        out["parent_span_id"] = parent_id
    return out


class Tracer:
    """Collects spans and instant events; exports Chrome trace format."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self._enabled = False
        self.capacity = capacity
        self._events: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._dropped = 0
        self._lock = threading.Lock()
        self._epoch_ns = time.perf_counter_ns()
        self._tids: Dict[int, int] = {}

    # ------------------------------------------------------------- lifecycle

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def dropped(self) -> int:
        """Events evicted from the ring since the last :meth:`clear`."""
        return self._dropped

    def enable(self) -> None:
        """Start recording; resets the time origin (not the event buffer)."""
        if not self._events:
            self._epoch_ns = time.perf_counter_ns()
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._tids.clear()
            self._dropped = 0
        self._epoch_ns = time.perf_counter_ns()

    def __len__(self) -> int:
        return len(self._events)

    # -------------------------------------------------------------- recording

    def span(self, name: str, category: str = "repro",
             ctx: Optional[SpanContext] = None,
             new_trace: bool = False, **args):
        """A context manager timing one nested span (no-op when disabled).

        ``ctx`` explicitly parents the span (overriding the ambient
        context); ``new_trace=True`` starts a fresh trace — the span
        becomes a request root regardless of what is active.
        """
        if not self._enabled:
            return _NULL_SPAN
        return Span(self, name, category, dict(args), ctx=ctx,
                    new_trace=new_trace)

    def complete(self, name: str, start_ns: int, end_ns: int,
                 category: str = "repro",
                 ctx: Optional[SpanContext] = None,
                 new_trace: bool = False,
                 **args) -> Optional[SpanContext]:
        """Record a span retroactively from explicit ``perf_counter_ns``
        timestamps; returns the new span's context for chaining children.

        This is how stages whose duration is only known after the fact
        (queue wait measured at batch dispatch, per-request slices of a
        shared batch execution) still land as correctly-placed slices.
        """
        if not self._enabled:
            return None
        parent = ctx if ctx is not None else (
            None if new_trace else current_span_context()
        )
        context: Optional[SpanContext] = None
        parent_id: Optional[str] = None
        if new_trace:
            context = SpanContext(new_trace_id(), new_span_id())
        elif parent is not None:
            context = SpanContext(parent.trace_id, new_span_id())
            parent_id = parent.span_id
        event_args = dict(args)
        if context is not None:
            event_args = _context_args(event_args, context, parent_id)
        self._append({
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": (start_ns - self._epoch_ns) / 1e3,
            "dur": max(0.0, (end_ns - start_ns) / 1e3),
            "pid": 0,
            "tid": self._tid(),
            "args": event_args,
        })
        return context

    def instant(self, name: str, category: str = "repro",
                ctx: Optional[SpanContext] = None, **args) -> None:
        """Record a zero-duration point event."""
        if not self._enabled:
            return
        now = time.perf_counter_ns()
        parent = ctx if ctx is not None else current_span_context()
        event_args = dict(args)
        if parent is not None:
            event_args["trace_id"] = parent.trace_id
            event_args["parent_span_id"] = parent.span_id
        self._append({
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "t",
            "ts": (now - self._epoch_ns) / 1e3,
            "pid": 0,
            "tid": self._tid(),
            "args": event_args,
        })

    def add_chrome_events(self, events: Iterable[Dict[str, object]]) -> None:
        """Merge pre-built Chrome trace events (e.g. cycle-level operand
        traces via :meth:`repro.systolic.trace.TraceEvent.to_chrome_event`)."""
        incoming = list(events)
        with self._lock:
            overflow = len(self._events) + len(incoming) - self.capacity
            if overflow > 0:
                self._count_dropped(overflow)
            self._events.extend(incoming)

    def _record(self, span: Span, end_ns: int) -> None:
        if not self._enabled:
            return  # disabled while the span was open: drop it
        args = span.args
        if span.context is not None:
            args = _context_args(args, span.context, span._parent_id)
        self._append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": (span._start_ns - self._epoch_ns) / 1e3,
            "dur": (end_ns - span._start_ns) / 1e3,
            "pid": 0,
            "tid": self._tid(),
            "args": args,
        })

    def _append(self, event: Dict[str, object]) -> None:
        with self._lock:
            if len(self._events) >= self.capacity:
                self._count_dropped(1)
            self._events.append(event)

    def _count_dropped(self, count: int) -> None:
        # Called under self._lock.  The counter lives in the metrics
        # registry so exports and live telemetry both see the loss.
        self._dropped += count
        from .metrics import get_registry  # local: avoid import-order knots

        get_registry().counter("obs.trace_dropped").inc(count)

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    # ---------------------------------------------------------------- export

    def events(self) -> List[Dict[str, object]]:
        """A snapshot copy of the recorded events."""
        with self._lock:
            return list(self._events)

    def to_chrome(self, other_data: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """The Chrome trace-event JSON object (``{"traceEvents": [...]}``)."""
        payload: Dict[str, object] = {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
        }
        if other_data:
            payload["otherData"] = other_data
        return payload


# ------------------------------------------------------------- trace analysis

def span_topology(
    events: Iterable[Dict[str, object]],
) -> List[Tuple[Tuple[str, Optional[str]], ...]]:
    """The timestamp- and id-free shape of every trace in an event list.

    Each trace reduces to a sorted tuple of ``(span_name, parent_span_name)``
    edges (roots have parent ``None``); the result is the sorted list of
    those shapes across traces.  Two same-seed serving runs must produce
    *equal* topologies even though every id and timestamp differs — the
    replay-determinism contract of ``tests/serve/test_trace_propagation.py``.
    """
    names: Dict[str, str] = {}
    spans: List[Dict[str, object]] = []
    for event in events:
        args = event.get("args") or {}
        span_id = args.get("span_id")
        if event.get("ph") == "X" and isinstance(span_id, str):
            names[span_id] = str(event.get("name"))
            spans.append(event)
    traces: Dict[str, List[Tuple[str, Optional[str]]]] = {}
    for event in spans:
        args = event["args"]
        parent = args.get("parent_span_id")
        traces.setdefault(str(args["trace_id"]), []).append((
            str(event.get("name")),
            names.get(parent) if isinstance(parent, str) else None,
        ))
    return sorted(
        tuple(sorted(edges, key=lambda e: (e[0], e[1] or "")))
        for edges in traces.values()
    )


def trace_chains(
    events: Iterable[Dict[str, object]],
) -> Dict[str, List[Dict[str, object]]]:
    """Group context-carrying span events by ``trace_id``.

    The chaos completeness check walks this: every answered request's
    trace must contain the full client→server→engine stage set.
    """
    chains: Dict[str, List[Dict[str, object]]] = {}
    for event in events:
        args = event.get("args") or {}
        trace_id = args.get("trace_id")
        if isinstance(trace_id, str):
            chains.setdefault(trace_id, []).append(event)
    return chains


#: Process-wide default tracer (what the CLI exports via ``--trace-out``).
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default :class:`Tracer`."""
    return _TRACER
