"""Span-based wall-clock tracing with Chrome trace-event export.

A :class:`Tracer` records nested spans::

    from repro.obs import get_tracer

    tracer = get_tracer()
    with tracer.span("network.estimate", network="mobilenet_v2"):
        with tracer.span("gemm.fold", folds=12):
            ...

and serializes them as Chrome trace-event JSON (``ph: "X"`` complete
events), loadable in ``chrome://tracing`` and https://ui.perfetto.dev.
Nesting is implicit: Chrome/Perfetto stack events on the same thread by
time containment, so recording child spans before their parents (exit
order) renders correctly.

The tracer starts **disabled** and :meth:`Tracer.span` then returns a
shared no-op context manager — the cost of an instrumented call site is
one attribute check, which is what lets the simulator keep tracing hooks
in hot paths (the bound is benchmarked by ``bench_simulator_micro.py``).

The cycle-level operand traces of :mod:`repro.systolic.trace` share this
export format via :meth:`TraceEvent.to_chrome_event` and can be merged
into a tracer with :meth:`Tracer.add_chrome_events`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional


class _NullSpan:
    """Shared no-op span used while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        """Discard late-bound span arguments."""


_NULL_SPAN = _NullSpan()


class Span:
    """One live span; records a complete ("X") event when it exits."""

    __slots__ = ("_tracer", "name", "category", "args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self._start_ns = 0

    def set(self, **args) -> None:
        """Attach arguments discovered while the span is running."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        if exc_type is not None:
            # Exception safety: the span still closes, flagged with the error.
            self.args["error"] = exc_type.__name__
        self._tracer._record(self, end_ns)
        return False  # never swallow the exception


class Tracer:
    """Collects spans and instant events; exports Chrome trace format."""

    def __init__(self) -> None:
        self._enabled = False
        self._events: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._epoch_ns = time.perf_counter_ns()
        self._tids: Dict[int, int] = {}

    # ------------------------------------------------------------- lifecycle

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        """Start recording; resets the time origin (not the event buffer)."""
        if not self._events:
            self._epoch_ns = time.perf_counter_ns()
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._tids.clear()
        self._epoch_ns = time.perf_counter_ns()

    def __len__(self) -> int:
        return len(self._events)

    # -------------------------------------------------------------- recording

    def span(self, name: str, category: str = "repro", **args):
        """A context manager timing one nested span (no-op when disabled)."""
        if not self._enabled:
            return _NULL_SPAN
        return Span(self, name, category, dict(args))

    def instant(self, name: str, category: str = "repro", **args) -> None:
        """Record a zero-duration point event."""
        if not self._enabled:
            return
        now = time.perf_counter_ns()
        self._append({
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "t",
            "ts": (now - self._epoch_ns) / 1e3,
            "pid": 0,
            "tid": self._tid(),
            "args": dict(args),
        })

    def add_chrome_events(self, events: Iterable[Dict[str, object]]) -> None:
        """Merge pre-built Chrome trace events (e.g. cycle-level operand
        traces via :meth:`repro.systolic.trace.TraceEvent.to_chrome_event`)."""
        with self._lock:
            self._events.extend(events)

    def _record(self, span: Span, end_ns: int) -> None:
        if not self._enabled:
            return  # disabled while the span was open: drop it
        self._append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": (span._start_ns - self._epoch_ns) / 1e3,
            "dur": (end_ns - span._start_ns) / 1e3,
            "pid": 0,
            "tid": self._tid(),
            "args": span.args,
        })

    def _append(self, event: Dict[str, object]) -> None:
        with self._lock:
            self._events.append(event)

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    # ---------------------------------------------------------------- export

    def events(self) -> List[Dict[str, object]]:
        """A snapshot copy of the recorded events."""
        with self._lock:
            return list(self._events)

    def to_chrome(self, other_data: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """The Chrome trace-event JSON object (``{"traceEvents": [...]}``)."""
        payload: Dict[str, object] = {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
        }
        if other_data:
            payload["otherData"] = other_data
        return payload


#: Process-wide default tracer (what the CLI exports via ``--trace-out``).
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default :class:`Tracer`."""
    return _TRACER
