"""Profiling hooks: time a function into a histogram (and a span).

``@profiled("analysis.table1")`` wraps a function so every call

* observes its wall-clock duration in the histogram
  ``profile.<name>.seconds`` and bumps ``profile.<name>.calls``;
* appears as a span named ``<name>`` when the tracer is enabled.

Intended for coarse-grained entry points (report generators, experiment
drivers) — the bookkeeping is a few dict operations per *call*, so don't
wrap per-element inner loops.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Optional, TypeVar

from .metrics import get_registry
from .tracing import get_tracer

F = TypeVar("F", bound=Callable)


def profiled(name: Optional[str] = None, category: str = "profile") -> Callable[[F], F]:
    """Decorator recording call counts and durations for ``fn``."""

    def decorate(fn: F) -> F:
        label = name or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = get_tracer()
            start = time.perf_counter()
            with tracer.span(label, category=category):
                result = fn(*args, **kwargs)
            registry = get_registry()
            registry.counter(f"profile.{label}.calls").inc()
            registry.histogram(f"profile.{label}.seconds").observe(
                time.perf_counter() - start
            )
            return result

        wrapper.__wrapped__ = fn
        return wrapper  # type: ignore[return-value]

    return decorate
