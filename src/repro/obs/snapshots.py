"""Live telemetry: periodic registry snapshots in a bounded ring.

Counters and histograms in :class:`~repro.obs.metrics.MetricsRegistry`
are cumulative — good for end-of-run sidecars, useless for "what is the
QPS *right now*".  :class:`SnapshotLoop` samples ``registry.to_dict()``
on a daemon thread every ``interval_s`` into a :class:`SnapshotRing`
(fixed size, oldest evicted), and :func:`derive_live` turns the
difference between two snapshots into rates and windowed percentiles:

* **rates** from counter deltas (QPS, shed rate, SLO violation rate);
* **percentiles** from histogram *bucket* deltas — the cumulative bucket
  counts of two snapshots subtract into a valid windowed histogram,
  which :func:`repro.obs.stats.histogram_quantile` then estimates
  p50/p95/p99 from;
* **instantaneous** values (queue depth, per-model breaker state) read
  straight from the latest snapshot's gauges.

The ring is what ``repro top``, the ``/telemetry`` HTTP endpoint and the
burn-rate alert evaluator (:mod:`repro.obs.alerts`) all read; the server
owns one loop per process (:class:`repro.serve.InferenceServer`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from collections import deque

from .metrics import MetricsRegistry, get_registry
from .stats import histogram_quantile

__all__ = [
    "Snapshot",
    "SnapshotRing",
    "SnapshotLoop",
    "LiveStats",
    "derive_live",
    "aggregate_live",
]

#: Default ring size × default interval ≈ two minutes of history, enough
#: for the longest burn-rate window with room to spare.
DEFAULT_RING_CAPACITY = 120
DEFAULT_INTERVAL_S = 1.0

MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


@dataclass(frozen=True)
class Snapshot:
    """One timestamped ``registry.to_dict()`` sample."""

    ts: float  # time.monotonic() at capture
    seq: int   # capture ordinal (strictly increasing, survives eviction)
    data: Dict[str, object]

    def metric(self, name: str, **labels) -> Optional[Dict[str, object]]:
        """The entry for ``(name, labels)``, or ``None``."""
        want = tuple(sorted((k, str(v)) for k, v in labels.items()))
        for entry in self.data.get("metrics", []):
            if entry["name"] != name:
                continue
            have = tuple(sorted(
                (str(k), str(v)) for k, v in (entry.get("labels") or {}).items()
            ))
            if have == want:
                return entry
        return None

    def metrics_named(self, name: str) -> List[Dict[str, object]]:
        """All entries (any labels) with this name."""
        return [e for e in self.data.get("metrics", []) if e["name"] == name]


class SnapshotRing:
    """Fixed-size, thread-safe ring of :class:`Snapshot` objects."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 2:
            raise ValueError(f"snapshot ring needs capacity >= 2, got {capacity}")
        self.capacity = capacity
        self._snaps: Deque[Snapshot] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._taken = 0

    @property
    def taken(self) -> int:
        """Snapshots ever captured (monotonic, unaffected by eviction)."""
        return self._taken

    def capture(self, registry: Optional[MetricsRegistry] = None,
                ts: Optional[float] = None) -> Snapshot:
        """Snapshot a registry now and append it."""
        registry = registry if registry is not None else get_registry()
        data = registry.to_dict()
        with self._lock:
            snap = Snapshot(
                ts=time.monotonic() if ts is None else ts,
                seq=self._taken,
                data=data,
            )
            self._taken += 1
            self._snaps.append(snap)
        # Published as a gauge so sidecars and smoke checks can assert
        # the loop actually advanced (the value lags the data by one
        # sample: the gauge lands in the *next* snapshot).
        registry.gauge("obs.snapshots_taken").set(float(self._taken))
        return snap

    def latest(self) -> Optional[Snapshot]:
        with self._lock:
            return self._snaps[-1] if self._snaps else None

    def window(self, seconds: float) -> List[Snapshot]:
        """Snapshots from the last ``seconds`` (relative to the newest)."""
        with self._lock:
            if not self._snaps:
                return []
            horizon = self._snaps[-1].ts - seconds
            return [s for s in self._snaps if s.ts >= horizon]

    def all(self) -> List[Snapshot]:
        with self._lock:
            return list(self._snaps)

    def __len__(self) -> int:
        with self._lock:
            return len(self._snaps)


class SnapshotLoop:
    """Daemon thread feeding a :class:`SnapshotRing` at a fixed cadence."""

    def __init__(
        self,
        ring: Optional[SnapshotRing] = None,
        registry: Optional[MetricsRegistry] = None,
        interval_s: float = DEFAULT_INTERVAL_S,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"snapshot interval must be > 0, got {interval_s}")
        self.ring = ring if ring is not None else SnapshotRing()
        self._registry = registry
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "SnapshotLoop":
        if self._thread is not None:
            return self
        self._stop.clear()
        self.ring.capture(self._registry)  # immediate first sample
        self._thread = threading.Thread(
            target=self._run, name="repro-snapshots", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s + 2.0)
            self._thread = None
        # Final sample so short runs still show an end-state delta.
        self.ring.capture(self._registry)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.ring.capture(self._registry)


# ------------------------------------------------------------ derived view


@dataclass
class LiveStats:
    """What ``repro top`` renders: the serving node's vitals over a window."""

    window_s: float = 0.0
    qps: float = 0.0
    shed_rate: float = 0.0          # shed / submitted, over the window
    slo_violation_rate: float = 0.0  # violations / OK answers, over the window
    degraded_rate: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    queue_depth: float = 0.0
    batch_occupancy: float = 0.0    # requests per formed batch
    requests_total: float = 0.0     # cumulative, from the latest snapshot
    breaker_states: Dict[str, float] = field(default_factory=dict)
    snapshots: int = 0              # ring samples ever taken

    def to_dict(self) -> Dict[str, object]:
        return {
            "window_s": self.window_s,
            "qps": self.qps,
            "shed_rate": self.shed_rate,
            "slo_violation_rate": self.slo_violation_rate,
            "degraded_rate": self.degraded_rate,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "queue_depth": self.queue_depth,
            "batch_occupancy": self.batch_occupancy,
            "requests_total": self.requests_total,
            "breaker_states": dict(self.breaker_states),
            "snapshots": self.snapshots,
        }


def _counter_sum(snap: Snapshot, name: str) -> float:
    return sum(float(e["value"]) for e in snap.metrics_named(name))


def _histogram_delta(
    old: Optional[Dict[str, object]], new: Optional[Dict[str, object]]
) -> Tuple[Tuple[float, ...], Tuple[int, ...]]:
    """Windowed cumulative buckets: ``new - old`` (old may be absent)."""
    import math

    if new is None:
        return (), ()
    bounds = tuple(
        math.inf if b["le"] == "+inf" else float(b["le"])
        for b in new.get("buckets", [])
    )
    counts = [int(b["count"]) for b in new.get("buckets", [])]
    if old is not None:
        old_counts = [int(b["count"]) for b in old.get("buckets", [])]
        if len(old_counts) == len(counts):
            counts = [max(0, c - o) for c, o in zip(counts, old_counts)]
    return bounds, tuple(counts)


def derive_live(ring: SnapshotRing, window_s: float = 10.0) -> LiveStats:
    """Reduce the ring's recent history to a :class:`LiveStats` view.

    Uses the oldest and newest snapshot inside ``window_s``; with fewer
    than two snapshots the rates stay zero and only instantaneous gauges
    are populated.
    """
    stats = LiveStats(snapshots=ring.taken)
    window = ring.window(window_s)
    if not window:
        return stats
    new = window[-1]
    stats.requests_total = _counter_sum(new, "serve.requests")
    queue_gauge = new.metric("serve.queue.depth")
    if queue_gauge is not None:
        stats.queue_depth = float(queue_gauge["value"])
    for entry in new.metrics_named("resilience.breaker_state"):
        model = (entry.get("labels") or {}).get("model", "?")
        stats.breaker_states[str(model)] = float(entry["value"])
    if len(window) < 2:
        return stats
    old = window[0]
    dt = new.ts - old.ts
    if dt <= 0:
        return stats
    stats.window_s = dt

    d_requests = stats.requests_total - _counter_sum(old, "serve.requests")
    stats.qps = max(0.0, d_requests) / dt

    def delta(name: str) -> float:
        return max(0.0, _counter_sum(new, name) - _counter_sum(old, name))

    d_shed = delta("serve.shed") + delta("serve.drain_rejections")
    d_expired = delta("serve.expired")
    if d_requests > 0:
        stats.shed_rate = min(1.0, (d_shed + d_expired) / d_requests)
        stats.degraded_rate = min(
            1.0, delta("resilience.degraded_responses") / d_requests
        )
    d_ok = max(0.0, d_requests - d_shed - d_expired)
    if d_ok > 0:
        stats.slo_violation_rate = min(1.0, delta("serve.slo.violations") / d_ok)

    bounds, counts = _histogram_delta(
        old.metric("serve.latency.seconds"), new.metric("serve.latency.seconds")
    )
    if counts and counts[-1] > 0:
        stats.p50_ms = histogram_quantile(bounds, counts, 50) * 1000.0
        stats.p95_ms = histogram_quantile(bounds, counts, 95) * 1000.0
        stats.p99_ms = histogram_quantile(bounds, counts, 99) * 1000.0

    d_batches = delta("serve.batches")
    if d_batches > 0:
        stats.batch_occupancy = delta("serve.batch.requests") / d_batches
    return stats


def aggregate_live(views: Dict[str, Dict[str, object]]) -> LiveStats:
    """Fold several replicas' :class:`LiveStats` dicts into fleet totals.

    Used by ``repro top --fleet``: additive vitals (QPS, queue depth,
    cumulative requests, snapshots) sum; ratio vitals (shed / SLO /
    degraded rates, batch occupancy) are QPS-weighted means; latency
    percentiles take the **max** across replicas — an upper bound is the
    honest fleet statement, since per-replica percentiles cannot be
    merged into a true fleet percentile without the raw histograms.
    """
    total = LiveStats()
    if not views:
        return total

    def num(view: Dict[str, object], key: str) -> float:
        return float(view.get(key, 0.0) or 0.0)

    weights = {name: num(view, "qps") for name, view in views.items()}
    weight_sum = sum(weights.values())
    for name, view in views.items():
        total.qps += num(view, "qps")
        total.queue_depth += num(view, "queue_depth")
        total.requests_total += num(view, "requests_total")
        total.snapshots += int(num(view, "snapshots"))
        total.window_s = max(total.window_s, num(view, "window_s"))
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            setattr(total, key, max(getattr(total, key), num(view, key)))
        # Equal weights when the fleet is idle (all-zero QPS).
        share = (weights[name] / weight_sum if weight_sum > 0
                 else 1.0 / len(views))
        for key in ("shed_rate", "slo_violation_rate", "degraded_rate",
                    "batch_occupancy"):
            setattr(total, key, getattr(total, key) + share * num(view, key))
        for model, state in (view.get("breaker_states") or {}).items():
            label = f"{name}/{model}"
            total.breaker_states[label] = float(state)  # type: ignore[index]
    return total
