"""Export and validation of metrics / trace artifacts.

Every export carries a reproducibility header: toolkit version (package
metadata), git SHA of the working tree, python/platform, wall-clock
timestamp, and — when the run targeted a systolic array — the full
:class:`repro.systolic.ArrayConfig`.  Schemas:

* metrics — ``{"schema": "repro.metrics/v1", "header": {...},
  "metrics": [{name, type, labels, ...}]}``;
* trace — Chrome trace-event format: ``{"traceEvents": [...],
  "displayTimeUnit": "ms", "otherData": {"schema": "repro.trace/v1",
  ...header}}`` — loadable in ``chrome://tracing`` / Perfetto, which
  ignore the extra keys.

:func:`validate_metrics` / :func:`validate_trace` check these shapes
(hand-rolled — no jsonschema dependency); ``python -m repro.obs.validate``
wraps them for ``make trace-smoke``.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Optional

from .metrics import MetricsRegistry, get_registry
from .tracing import Tracer, get_tracer

METRICS_SCHEMA = "repro.metrics/v1"
TRACE_SCHEMA = "repro.trace/v1"

_METRIC_TYPES = ("counter", "gauge", "histogram")

_git_sha_cache: Optional[str] = None


def repro_version() -> str:
    """Toolkit version from package metadata (source-tree fallback)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except Exception:  # PackageNotFoundError or very old python
        from .. import __version__

        return __version__


def git_sha() -> str:
    """Git SHA of the source tree, or ``"unknown"`` outside a checkout."""
    global _git_sha_cache
    if _git_sha_cache is None:
        try:
            _git_sha_cache = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip() or "unknown"
        except Exception:
            _git_sha_cache = "unknown"
    return _git_sha_cache


def version_string() -> str:
    """Human-readable ``repro <version> (<sha>)`` for ``--version``."""
    return f"repro {repro_version()} (git {git_sha()[:12]})"


def array_dict(array) -> Dict[str, object]:
    """JSON-ready view of an :class:`repro.systolic.ArrayConfig`."""
    return {
        "rows": array.rows,
        "cols": array.cols,
        "broadcast": array.broadcast,
        "dataflow": array.dataflow,
        "frequency_mhz": array.frequency_mhz,
        "datawidth": getattr(array, "datawidth", 16),
        "pipelined_folds": array.pipelined_folds,
    }


def run_header(array=None, extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """The reproducibility header embedded in every export."""
    header: Dict[str, object] = {
        "tool": "repro",
        "version": repro_version(),
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created_unix": time.time(),
    }
    if array is not None:
        header["array"] = array_dict(array)
    if extra:
        header.update(extra)
    return header


# ------------------------------------------------------------------ payloads

def metrics_payload(
    registry: Optional[MetricsRegistry] = None,
    array=None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The full ``--metrics-out`` JSON object."""
    registry = registry if registry is not None else get_registry()
    payload: Dict[str, object] = {
        "schema": METRICS_SCHEMA,
        "header": run_header(array, extra),
    }
    payload.update(registry.to_dict())
    return payload


def summarize_metrics(payload: Dict[str, object]) -> Dict[str, object]:
    """Collapse a metrics payload to one series per (name, type).

    Fine-grained label sets (per-layer cycle counters, per-network gauges)
    dominate sidecar size — a full Table-I run carries thousands of series
    and megabytes of JSON, which is observability exhaust, not a result.
    This keeps the ``repro.metrics/v1`` shape (every entry still validates)
    while aggregating across label sets:

    * counters — summed (events happened under *some* label);
    * gauges — mean, with ``min``/``max`` sidecar keys;
    * histograms — bucket-merged when bounds agree, first-kept otherwise.

    Collapsed entries get ``labels: {}`` plus a ``series`` count recording
    how many label sets were folded in; the header gains
    ``metrics_compact: true`` and the original series count.
    """
    metrics = payload.get("metrics", [])
    groups: Dict[tuple, list] = {}
    for entry in metrics:
        groups.setdefault((entry["name"], entry["type"]), []).append(entry)

    out = []
    for (name, kind), entries in sorted(groups.items()):
        if len(entries) == 1 and not entries[0].get("labels"):
            out.append(entries[0])
            continue
        if kind == "counter":
            out.append({
                "name": name, "type": kind, "labels": {},
                "value": sum(float(e["value"]) for e in entries),
                "series": len(entries),
            })
        elif kind == "gauge":
            values = [float(e["value"]) for e in entries]
            out.append({
                "name": name, "type": kind, "labels": {},
                "value": sum(values) / len(values),
                "min": min(values), "max": max(values),
                "series": len(entries),
            })
        else:  # histogram
            merged = MetricsRegistry()
            kept = 0
            for e in entries:
                try:
                    merged.merge_dict({"metrics": [dict(e, labels={})]})
                    kept += 1
                except ValueError:
                    pass  # incompatible buckets: drop from the summary
            snapshot = merged.to_dict()["metrics"]
            if snapshot:
                entry = snapshot[0]
                entry["series"] = kept
                out.append(entry)

    summary: Dict[str, object] = dict(payload)
    header = dict(summary.get("header") or {})
    header["metrics_compact"] = True
    header["metrics_series_full"] = len(metrics)
    summary["header"] = header
    summary["metrics"] = out
    return summary


def trace_payload(
    tracer: Optional[Tracer] = None,
    array=None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The full ``--trace-out`` JSON object (Chrome trace-event format)."""
    tracer = tracer if tracer is not None else get_tracer()
    other = {"schema": TRACE_SCHEMA}
    other.update(run_header(array, extra))
    return tracer.to_chrome(other_data=other)


def summarize_trace(
    payload: Dict[str, object], keep_per_name: int = 50
) -> Dict[str, object]:
    """Trim a trace payload to a representative sample per event name.

    A serving run's trace sidecar carries one span chain per request —
    tens of thousands of near-identical ``serve.request``/``serve.queue``
    slices.  For committed artifacts, the first ``keep_per_name`` events
    of each name keep the timeline's shape (whole early traces survive
    intact, so chains still link up in Perfetto) while the bulk goes; the
    header gains ``trace_compact: true``, the original event count, and a
    per-name ``trace_dropped_by_name`` tally so the loss is explicit.
    """
    events = payload.get("traceEvents", [])
    kept: list = []
    seen: Dict[str, int] = {}
    dropped: Dict[str, int] = {}
    for event in events:
        name = str(event.get("name"))
        count = seen.get(name, 0)
        if count < keep_per_name:
            seen[name] = count + 1
            kept.append(event)
        else:
            dropped[name] = dropped.get(name, 0) + 1
    summary: Dict[str, object] = dict(payload)
    other = dict(summary.get("otherData") or {})
    other["trace_compact"] = True
    other["trace_events_full"] = len(events)
    if dropped:
        other["trace_dropped_by_name"] = dict(sorted(dropped.items()))
    summary["otherData"] = other
    summary["traceEvents"] = kept
    return summary


# ------------------------------------------------------------------- writing

def write_json(dest: str, payload: Dict[str, object]) -> None:
    """Write a payload to a path, or stdout when ``dest`` is ``"-"``."""
    text = json.dumps(payload, indent=2, sort_keys=False, default=str)
    if dest == "-":
        sys.stdout.write(text + "\n")
    else:
        Path(dest).write_text(text + "\n")


def write_metrics(
    dest: str,
    registry: Optional[MetricsRegistry] = None,
    array=None,
    extra: Optional[Dict[str, object]] = None,
) -> None:
    write_json(dest, metrics_payload(registry, array, extra))


def write_trace(
    dest: str,
    tracer: Optional[Tracer] = None,
    array=None,
    extra: Optional[Dict[str, object]] = None,
) -> None:
    write_json(dest, trace_payload(tracer, array, extra))


# ---------------------------------------------------------------- validation

class SchemaError(ValueError):
    """A metrics/trace payload does not match its schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _validate_header(header: object, where: str) -> None:
    _require(isinstance(header, dict), f"{where}: header must be an object")
    for key in ("tool", "version", "git_sha", "created_unix"):
        _require(key in header, f"{where}: header missing {key!r}")
    if "array" in header:
        array = header["array"]
        _require(isinstance(array, dict), f"{where}: header.array must be an object")
        for key in ("rows", "cols", "dataflow"):
            _require(key in array, f"{where}: header.array missing {key!r}")


def validate_metrics(payload: Dict[str, object]) -> int:
    """Validate a metrics payload; returns the number of metric series."""
    _require(isinstance(payload, dict), "metrics payload must be a JSON object")
    _require(payload.get("schema") == METRICS_SCHEMA,
             f"metrics schema must be {METRICS_SCHEMA!r}, got {payload.get('schema')!r}")
    _validate_header(payload.get("header"), "metrics")
    metrics = payload.get("metrics")
    _require(isinstance(metrics, list), "metrics must be a list")
    for i, entry in enumerate(metrics):
        where = f"metrics[{i}]"
        _require(isinstance(entry, dict), f"{where}: must be an object")
        _require(isinstance(entry.get("name"), str) and entry["name"],
                 f"{where}: missing name")
        _require(entry.get("type") in _METRIC_TYPES,
                 f"{where}: type must be one of {_METRIC_TYPES}")
        _require(isinstance(entry.get("labels"), dict), f"{where}: missing labels")
        if entry["type"] == "histogram":
            for key in ("count", "sum", "buckets"):
                _require(key in entry, f"{where}: histogram missing {key!r}")
        else:
            _require(isinstance(entry.get("value"), (int, float)),
                     f"{where}: {entry['type']} needs a numeric value")
    return len(metrics)


def validate_trace(payload: Dict[str, object]) -> int:
    """Validate a Chrome-trace payload; returns the number of events."""
    _require(isinstance(payload, dict), "trace payload must be a JSON object")
    events = payload.get("traceEvents")
    _require(isinstance(events, list), "trace payload must carry traceEvents")
    other = payload.get("otherData")
    _require(isinstance(other, dict), "trace payload must carry otherData header")
    _require(other.get("schema") == TRACE_SCHEMA,
             f"trace schema must be {TRACE_SCHEMA!r}, got {other.get('schema')!r}")
    _validate_header(other, "trace")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        _require(isinstance(event, dict), f"{where}: must be an object")
        _require(isinstance(event.get("name"), str), f"{where}: missing name")
        _require(event.get("ph") in ("X", "B", "E", "i", "I", "M", "C"),
                 f"{where}: unsupported phase {event.get('ph')!r}")
        _require(isinstance(event.get("ts"), (int, float)), f"{where}: missing ts")
        if event["ph"] == "X":
            _require(isinstance(event.get("dur"), (int, float)),
                     f"{where}: complete event missing dur")
    return len(events)
