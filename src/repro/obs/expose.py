"""Prometheus-style text exposition for the metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` snapshot in the
text format scrapers understand::

    # TYPE repro_serve_requests_total counter
    repro_serve_requests_total{model="mobilenet_v1:half@64"} 128

Metric names are sanitized (dots become underscores — the registry's
``serve.queue_wait_ms`` is spelled ``repro_serve_queue_wait_ms`` on the
wire), counters gain a ``_total`` suffix, and histograms expand into the
cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` family.

Three consumers:

* the serving wire protocol answers ``{"op": "metrics"}`` with this text
  (:mod:`repro.serve.transport`);
* ``--metrics-port`` starts :class:`ExpositionServer`, a stdlib HTTP
  endpoint (``GET /metrics``) any Prometheus scrape config can poll, plus
  ``GET /telemetry`` returning the live-telemetry JSON;
* ``repro top`` scrapes either and re-parses the text with
  :func:`parse_exposition` — the renderer and parser round-trip
  (tested), so the CLI exercises the same format a real scraper sees.

``python -m repro.obs.expose run.metrics.json`` renders an existing
sidecar for eyeballing or ad-hoc ingestion.
"""

from __future__ import annotations

import json
import math
import re
import sys
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, get_registry

__all__ = [
    "render_exposition",
    "render_exposition_dict",
    "parse_exposition",
    "Sample",
    "ExpositionServer",
    "sanitize_metric_name",
]

#: Every exposed name carries this prefix, marking the exporting system.
NAME_PREFIX = "repro_"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

_TYPE_LINE = re.compile(r"^# TYPE (?P<name>\S+) (?P<kind>\S+)\s*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str) -> str:
    """Registry name → exposition name (``serve.shed`` → ``repro_serve_shed``)."""
    flat = _INVALID_CHARS.sub("_", name.replace(".", "_"))
    if flat.startswith(NAME_PREFIX):
        return flat
    return NAME_PREFIX + flat


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def _render_labels(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(k, str(v)) for k, v in sorted(labels.items())]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


def render_exposition_dict(snapshot: Dict[str, object]) -> str:
    """Render a ``MetricsRegistry.to_dict`` snapshot as exposition text."""
    lines: List[str] = []
    typed: set = set()
    for entry in snapshot.get("metrics", []):
        kind = entry["type"]
        labels = {str(k): str(v) for k, v in (entry.get("labels") or {}).items()}
        name = sanitize_metric_name(str(entry["name"]))
        if kind == "counter":
            exposed = name if name.endswith("_total") else name + "_total"
            if exposed not in typed:
                lines.append(f"# TYPE {exposed} counter")
                typed.add(exposed)
            lines.append(
                f"{exposed}{_render_labels(labels)} {_format_value(entry['value'])}"
            )
        elif kind == "gauge":
            if name not in typed:
                lines.append(f"# TYPE {name} gauge")
                typed.add(name)
            lines.append(
                f"{name}{_render_labels(labels)} {_format_value(entry['value'])}"
            )
        elif kind == "histogram":
            if name not in typed:
                lines.append(f"# TYPE {name} histogram")
                typed.add(name)
            for bucket in entry.get("buckets", []):
                le = bucket["le"]
                bound = math.inf if le == "+inf" else float(le)
                lines.append(
                    f"{name}_bucket"
                    f"{_render_labels(labels, ('le', _format_le(bound)))}"
                    f" {_format_value(bucket['count'])}"
                )
            lines.append(
                f"{name}_sum{_render_labels(labels)} {_format_value(entry['sum'])}"
            )
            lines.append(
                f"{name}_count{_render_labels(labels)} {_format_value(entry['count'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def render_exposition(registry: Optional[MetricsRegistry] = None) -> str:
    """Exposition text for a registry (process default when omitted)."""
    registry = registry if registry is not None else get_registry()
    return render_exposition_dict(registry.to_dict())


@dataclass(frozen=True)
class Sample:
    """One parsed exposition line: a named, labelled value."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float

    def label(self, key: str) -> Optional[str]:
        for k, v in self.labels:
            if k == key:
                return v
        return None


@dataclass
class Exposition:
    """Parsed exposition text: samples plus the declared metric types."""

    samples: List[Sample] = field(default_factory=list)
    types: Dict[str, str] = field(default_factory=dict)

    def value(self, name: str, **labels) -> Optional[float]:
        """The value of the first sample matching name and label subset."""
        want = {k: str(v) for k, v in labels.items()}
        for sample in self.samples:
            if sample.name != name:
                continue
            if all(sample.label(k) == v for k, v in want.items()):
                return sample.value
        return None

    def __len__(self) -> int:
        return len(self.samples)


def _parse_value(text: str) -> float:
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    return float(text)


def parse_exposition(text: str) -> Exposition:
    """Parse exposition text back into samples (inverse of the renderer).

    Tolerates comments and blank lines; raises :class:`ValueError` on a
    line that is neither — a garbled scrape should fail loudly, not
    silently drop metrics.
    """
    out = Exposition()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            match = _TYPE_LINE.match(line)
            if match:
                out.types[match.group("name")] = match.group("kind")
            continue  # HELP and other comments pass through
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"exposition line {lineno}: cannot parse {raw!r}")
        labels_text = match.group("labels")
        labels: Tuple[Tuple[str, str], ...] = ()
        if labels_text:
            labels = tuple(
                (m.group("key"), _unescape_label_value(m.group("value")))
                for m in _LABEL_PAIR.finditer(labels_text)
            )
        out.samples.append(Sample(
            name=match.group("name"),
            labels=labels,
            value=_parse_value(match.group("value")),
        ))
    return out


# ----------------------------------------------------------------- HTTP server


class _Handler(BaseHTTPRequestHandler):
    # Class attributes injected by ExpositionServer.
    metrics_fn: Callable[[], str] = staticmethod(lambda: "")
    telemetry_fn: Optional[Callable[[], Dict[str, object]]] = None

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = self.metrics_fn().encode("utf-8")
            self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/telemetry" and self.telemetry_fn is not None:
            body = json.dumps(self.telemetry_fn(), default=str).encode("utf-8")
            self._reply(200, body, "application/json")
        else:
            self._reply(404, b"not found\n", "text/plain")

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:
        """Silence per-request stderr lines; scrapes are high-frequency."""


class ExpositionServer:
    """A daemon-thread HTTP endpoint exposing ``/metrics`` (text) and
    ``/telemetry`` (JSON) — what ``--metrics-port`` starts."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        metrics_fn: Optional[Callable[[], str]] = None,
        telemetry_fn: Optional[Callable[[], Dict[str, object]]] = None,
    ) -> None:
        handler = type("BoundHandler", (_Handler,), {
            "metrics_fn": staticmethod(metrics_fn or render_exposition),
            "telemetry_fn": (
                staticmethod(telemetry_fn) if telemetry_fn is not None else None
            ),
        })
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> "ExpositionServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-expose",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


def main(argv=None) -> int:
    """Render a metrics sidecar as exposition text on stdout."""
    args = argv if argv is not None else sys.argv[1:]
    if len(args) != 1:
        print("usage: python -m repro.obs.expose FILE.metrics.json",
              file=sys.stderr)
        return 2
    payload = json.loads(Path(args[0]).read_text())
    snapshot = payload if "metrics" in payload else {"metrics": []}
    sys.stdout.write(render_exposition_dict(snapshot))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
