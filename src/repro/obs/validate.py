"""Validate metrics / trace export files against their schemas.

Used by ``make trace-smoke``::

    python -m repro.obs.validate trace.json metrics.json

Each file's kind is inferred from its content (``traceEvents`` → trace,
``schema: repro.metrics/v1`` → metrics); exits non-zero with a diagnostic
on the first invalid file.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from .export import SchemaError, validate_metrics, validate_trace


def validate_file(path: str) -> str:
    """Validate one export file; returns a human-readable summary line.

    Raises:
        SchemaError: when the payload does not match its schema.
        OSError / json.JSONDecodeError: when the file is unreadable.
    """
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "traceEvents" in payload:
        count = validate_trace(payload)
        return f"OK {path}: trace with {count} events"
    count = validate_metrics(payload)
    return f"OK {path}: metrics with {count} series"


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate FILE [FILE ...]",
              file=sys.stderr)
        return 2
    for path in argv:
        try:
            print(validate_file(path))
        except (SchemaError, OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
