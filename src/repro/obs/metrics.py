"""Process-wide metrics: counters, gauges and histograms with JSON export.

The registry is deliberately small and dependency-free (no Prometheus
client): experiments here are single-process, so a metric is just a named,
optionally-labelled value that the CLI can dump as a JSON sidecar next to
its tables (``--metrics-out``).  Semantics follow the usual conventions:

* :class:`Counter` — monotonically non-decreasing (``inc`` only);
* :class:`Gauge`   — last-write-wins (``set`` / ``inc`` / ``dec``);
* :class:`Histogram` — count/sum/min/max plus fixed cumulative buckets.

Metrics are identified by ``(name, labels)``; asking the registry for the
same pair returns the same object, so hot paths can cache the handle and
pay only an attribute add per event.  :meth:`MetricsRegistry.to_dict` /
:meth:`MetricsRegistry.from_dict` round-trip the full state (tested).

Thread safety: every mutator (``inc``/``dec``/``set``/``observe``/merge)
holds a per-metric lock — ``self.value += x`` is a read-modify-write that
can drop updates when server worker threads (:mod:`repro.serve`) hit the
same counter concurrently.  Uncontended lock acquisition is tens of
nanoseconds, noise next to the instrumented work.  Process fan-out keeps
using the per-worker-registry + :meth:`MetricsRegistry.merge_dict`
pattern of :mod:`repro.systolic.parallel` instead.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram upper bounds, tuned for wall-clock seconds: 1 µs .. 100 s
#: in decade steps (a terminal ``+inf`` bucket is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    if not labels:  # hot path: most instrumentation sites are label-free
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically non-decreasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self.value += amount

    def _payload(self) -> Dict[str, object]:
        return {"value": self.value}

    def _restore(self, payload: Dict[str, object]) -> None:
        with self._lock:
            self.value = float(payload["value"])

    def _merge(self, payload: Dict[str, object]) -> None:
        with self._lock:
            self.value += float(payload["value"])


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def _payload(self) -> Dict[str, object]:
        return {"value": self.value}

    def _restore(self, payload: Dict[str, object]) -> None:
        with self._lock:
            self.value = float(payload["value"])

    def _merge(self, payload: Dict[str, object]) -> None:
        # Last write wins across processes too: the incoming snapshot is
        # "newer" than whatever this process saw.
        with self._lock:
            self.value = float(payload["value"])


class Histogram:
    """A distribution: count, sum, min, max and cumulative buckets.

    ``buckets`` are inclusive upper bounds; an implicit ``+inf`` bucket
    catches the tail, so ``bucket_counts[-1] == count`` always holds.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "bucket_counts",
                 "count", "sum", "min", "max", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: Optional[Iterable[float]] = None,
    ) -> None:
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.buckets = bounds + (math.inf,)
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    for j in range(i, len(self.bucket_counts)):
                        self.bucket_counts[j] += 1
                    break

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _payload(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [
                {"le": ("+inf" if math.isinf(b) else b), "count": c}
                for b, c in zip(self.buckets, self.bucket_counts)
            ],
        }

    def _restore(self, payload: Dict[str, object]) -> None:
        with self._lock:
            self.count = int(payload["count"])
            self.sum = float(payload["sum"])
            self.min = math.inf if payload["min"] is None else float(payload["min"])
            self.max = -math.inf if payload["max"] is None else float(payload["max"])
            buckets = payload["buckets"]
            self.buckets = tuple(
                math.inf if b["le"] == "+inf" else float(b["le"]) for b in buckets
            )
            self.bucket_counts = [int(b["count"]) for b in buckets]

    def _merge(self, payload: Dict[str, object]) -> None:
        bounds = tuple(
            math.inf if b["le"] == "+inf" else float(b["le"])
            for b in payload["buckets"]
        )
        if bounds != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge buckets {bounds} "
                f"into {self.buckets}"
            )
        with self._lock:
            self.count += int(payload["count"])
            self.sum += float(payload["sum"])
            if payload["min"] is not None:
                self.min = min(self.min, float(payload["min"]))
            if payload["max"] is not None:
                self.max = max(self.max, float(payload["max"]))
            for i, b in enumerate(payload["buckets"]):
                self.bucket_counts[i] += int(b["count"])


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- accessors

    def _get_or_create(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, key[1], **kwargs)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r}{dict(key[1])} already registered as "
                f"{metric.kind}, requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None, **labels
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def get(self, name: str, **labels):
        """The existing metric for ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    # ------------------------------------------------------------ inspection

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: (m.name, m.labels)))

    def reset(self) -> None:
        """Drop every metric (fresh run scope, e.g. one CLI invocation)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------ JSON

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot: ``{"metrics": [...]}``, sorted by name."""
        out: List[Dict[str, object]] = []
        for metric in self:
            entry: Dict[str, object] = {
                "name": metric.name,
                "type": metric.kind,
                "labels": dict(metric.labels),
            }
            entry.update(metric._payload())
            out.append(entry)
        return {"metrics": out}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for entry in payload["metrics"]:
            kind = _KINDS[entry["type"]]
            metric = registry._get_or_create(kind, entry["name"], entry["labels"])
            metric._restore(entry)
        return registry

    def merge_dict(self, payload: Dict[str, object]) -> None:
        """Fold a :meth:`to_dict` snapshot from another registry into this one.

        Used by :mod:`repro.systolic.parallel` to combine the metrics each
        worker process recorded back into the parent's registry: counters
        and histograms add (events happened in *some* process), gauges are
        last-write-wins.  Raises :class:`TypeError` on a kind clash and
        :class:`ValueError` on incompatible histogram buckets.
        """
        for entry in payload["metrics"]:
            kind = _KINDS[entry["type"]]
            metric = self._get_or_create(kind, entry["name"], entry["labels"])
            if isinstance(metric, Histogram) and metric.count == 0:
                # An empty histogram has this process's default bounds; the
                # incoming snapshot defines the authoritative ones.
                metric._restore(entry)
            else:
                metric._merge(entry)


#: Process-wide default registry (what the CLI exports via ``--metrics-out``).
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one.

    Worker processes install a fresh registry before running their chunk so
    the instrumented hot paths (which all go through :func:`get_registry`)
    record into an isolated scope that can be shipped back and merged.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
