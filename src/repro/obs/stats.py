"""Shared percentile math: nearest-rank over samples, quantiles over buckets.

Two estimators, one home (previously ``serve.loadgen`` carried a private
nearest-rank copy):

* :func:`percentile` — exact nearest-rank over a sorted sample list; what
  the load generator reports, since it holds every latency it measured.
* :func:`histogram_quantile` — the Prometheus-style estimate over
  cumulative histogram buckets; what live telemetry reports, since the
  registry keeps only bucket counts, not samples.  Linear interpolation
  inside the bucket containing the target rank, clamped to the observed
  ``lo``/``hi`` when known (which also tames the ``+inf`` tail bucket).

Both define the degenerate cases the edge-case tests pin down: empty
input yields 0.0, a single sample yields that sample for every ``q``,
``q=0`` yields the minimum and ``q=100`` the maximum.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["percentile", "histogram_quantile", "quantile_from_payload"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list.

    ``q`` is in percent (0..100).  Empty input returns 0.0 — reports
    render a zero rather than crash on a run that answered nothing.
    """
    if not sorted_values:
        return 0.0
    if q <= 0:
        return float(sorted_values[0])
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


def histogram_quantile(
    bounds: Sequence[float],
    cumulative_counts: Sequence[int],
    q: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> float:
    """Estimate the ``q``-th percentile from cumulative histogram buckets.

    ``bounds`` are inclusive upper bounds (the last may be ``+inf``) and
    ``cumulative_counts`` the matching cumulative counts, exactly the
    shape :class:`repro.obs.metrics.Histogram` maintains.  The estimate
    interpolates linearly within the bucket containing the target rank;
    ``lo``/``hi`` (observed min/max, when the histogram tracked them)
    clamp the result and bound the first and ``+inf`` buckets.
    """
    if not bounds or not cumulative_counts:
        return 0.0
    total = cumulative_counts[-1]
    if total <= 0:
        return 0.0
    if q <= 0:
        return float(lo) if lo is not None else _bucket_floor(bounds, 0, lo)
    if q >= 100:
        if hi is not None:
            return float(hi)
        # Highest non-empty bucket's bound (or its floor if unbounded).
        idx = _first_bucket_at_or_above(cumulative_counts, total)
        bound = bounds[idx]
        return float(bound) if not math.isinf(bound) else _bucket_floor(bounds, idx, lo)
    rank = q / 100.0 * total
    idx = _first_bucket_at_or_above(cumulative_counts, rank)
    floor = _bucket_floor(bounds, idx, lo)
    ceil_ = bounds[idx]
    if math.isinf(ceil_):
        ceil_ = float(hi) if hi is not None else floor
    below = cumulative_counts[idx - 1] if idx > 0 else 0
    in_bucket = cumulative_counts[idx] - below
    if in_bucket <= 0:
        estimate = ceil_
    else:
        estimate = floor + (ceil_ - floor) * (rank - below) / in_bucket
    if lo is not None:
        estimate = max(estimate, float(lo))
    if hi is not None:
        estimate = min(estimate, float(hi))
    return float(estimate)


def quantile_from_payload(entry: Dict[str, object], q: float) -> float:
    """:func:`histogram_quantile` over one ``MetricsRegistry.to_dict``
    histogram entry (``{"buckets": [{"le": ..., "count": ...}], ...}``)."""
    bounds, counts = _payload_buckets(entry)
    return histogram_quantile(
        bounds, counts, q,
        lo=_finite_or_none(entry.get("min")),
        hi=_finite_or_none(entry.get("max")),
    )


def _payload_buckets(entry: Dict[str, object]) -> Tuple[Tuple[float, ...], Tuple[int, ...]]:
    buckets = entry.get("buckets") or []
    bounds = tuple(
        math.inf if b["le"] == "+inf" else float(b["le"]) for b in buckets
    )
    counts = tuple(int(b["count"]) for b in buckets)
    return bounds, counts


def _finite_or_none(value: object) -> Optional[float]:
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def _first_bucket_at_or_above(cumulative_counts: Sequence[int], rank: float) -> int:
    for i, count in enumerate(cumulative_counts):
        if count >= rank:
            return i
    return len(cumulative_counts) - 1


def _bucket_floor(bounds: Sequence[float], idx: int, lo: Optional[float]) -> float:
    if idx > 0:
        return float(bounds[idx - 1])
    if lo is not None:
        return float(lo)
    return 0.0 if bounds[0] >= 0 else float(bounds[0])
