"""The four FuSeConv network variants evaluated in Table I.

* ``FULL``     — every depthwise layer replaced, D=1 (row *and* column
  filters on all C channels; depthwise stage outputs 2C channels).
* ``HALF``     — every depthwise layer replaced, D=2 (row filters on one
  half of the channels, column filters on the other; output stays C).
* ``FULL_50`` / ``HALF_50`` — only the 50 % of depthwise layers with the
  largest latency savings are replaced (§V-A.1).
"""

from __future__ import annotations

from enum import Enum


class FuSeVariant(Enum):
    """Variant of the FuSeConv drop-in replacement (§IV-A, §V-A.1)."""

    FULL = "full"
    HALF = "half"
    FULL_50 = "full_50"
    HALF_50 = "half_50"

    @property
    def d(self) -> int:
        """The paper's design knob D: 1 for Full, 2 for Half variants."""
        return 1 if self in (FuSeVariant.FULL, FuSeVariant.FULL_50) else 2

    @property
    def replace_fraction(self) -> float:
        """Fraction of depthwise layers replaced (1.0 or 0.5)."""
        return 0.5 if self in (FuSeVariant.FULL_50, FuSeVariant.HALF_50) else 1.0

    @property
    def label(self) -> str:
        """Display label matching Table I rows (e.g. ``"FuSe-Half-50%"``)."""
        base = "FuSe-Full" if self.d == 1 else "FuSe-Half"
        return base + ("-50%" if self.replace_fraction < 1.0 else "")

    @classmethod
    def from_label(cls, label: str) -> "FuSeVariant":
        for variant in cls:
            if variant.label == label or variant.value == label:
                return variant
        raise ValueError(f"unknown FuSe variant {label!r}")


#: All four variants in the order Table I reports them.
ALL_VARIANTS = (
    FuSeVariant.FULL,
    FuSeVariant.HALF,
    FuSeVariant.FULL_50,
    FuSeVariant.HALF_50,
)
