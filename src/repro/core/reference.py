"""Numpy reference implementations of the convolution operators.

These are the ground-truth forward computations used to validate both the
trainable layers in :mod:`repro.nn` and the functional systolic-array
simulator in :mod:`repro.systolic.functional`.  All functions take and
return ``(C, H, W)`` arrays (single image, channels first).

The im2col transformation implemented here is the one §III-B of the paper
analyzes: it turns convolution into matrix multiplication at the cost of
duplicating input values.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..ir.layer import Padding, conv_out_size, resolve_padding


def _pair(value: Union[int, Tuple[int, int]]) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    return (int(value[0]), int(value[1]))


def pad_input(x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int],
              padding: Padding) -> np.ndarray:
    """Zero-pad a ``(C, H, W)`` input according to a :data:`Padding` spec.

    ``"same"`` uses the TensorFlow convention: total pad ``max(K - s, 0)``
    adjusted so the output is ``ceil(in / s)``, split with the extra cell on
    the bottom/right.
    """
    c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    if padding == "same":
        out_h = -(-h // sh)
        out_w = -(-w // sw)
        total_h = max((out_h - 1) * sh + kh - h, 0)
        total_w = max((out_w - 1) * sw + kw - w, 0)
        top, left = total_h // 2, total_w // 2
        bottom, right = total_h - top, total_w - left
    else:
        ph, pw = resolve_padding(padding, kernel)
        top = bottom = ph
        left = right = pw
    if top == bottom == left == right == 0:
        return x
    return np.pad(x, ((0, 0), (top, bottom), (left, right)))


def im2col(x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int] = (1, 1),
           padding: Padding = 0) -> np.ndarray:
    """im2col: unfold ``(C, H, W)`` into ``(out_h * out_w, C * kh * kw)``.

    Row ``p`` holds the receptive field of output pixel ``p`` flattened in
    ``(channel, kh, kw)`` order, so convolution becomes
    ``im2col(x) @ weights.reshape(C_out, -1).T``.
    """
    kh, kw = kernel
    sh, sw = stride
    xp = pad_input(x, kernel, stride, padding)
    c, hp, wp = xp.shape
    out_h = (hp - kh) // sh + 1
    out_w = (wp - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"im2col output collapsed: input {x.shape}, kernel {kernel}, "
            f"stride {stride}, padding {padding}"
        )
    # Strided sliding-window view, then copy into the matrix layout.
    s0, s1, s2 = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(c, out_h, out_w, kh, kw),
        strides=(s0, s1 * sh, s2 * sw, s1, s2),
        writeable=False,
    )
    # -> (out_h, out_w, c, kh, kw) -> (P, C*kh*kw)
    return np.ascontiguousarray(windows.transpose(1, 2, 0, 3, 4)).reshape(
        out_h * out_w, c * kh * kw
    )


def conv2d(x: np.ndarray, weights: np.ndarray, stride: Union[int, Tuple[int, int]] = 1,
           padding: Padding = 0, groups: int = 1) -> np.ndarray:
    """Standard (optionally grouped) convolution.

    Args:
        x: input ``(C, H, W)``.
        weights: filters ``(C_out, C // groups, kh, kw)``.
    Returns:
        output ``(C_out, out_h, out_w)``.
    """
    c, h, w = x.shape
    c_out, c_g, kh, kw = weights.shape
    stride = _pair(stride)
    if c % groups or c_out % groups:
        raise ValueError(f"channels {c}->{c_out} not divisible by groups={groups}")
    if c_g != c // groups:
        raise ValueError(f"weight shape {weights.shape} inconsistent with groups={groups}")

    out_h = conv_out_size(h, kh, stride[0], "same" if padding == "same" else _pair(padding)[0])
    out_w = conv_out_size(w, kw, stride[1], "same" if padding == "same" else _pair(padding)[1])
    out = np.empty((c_out, out_h, out_w), dtype=np.result_type(x, weights))
    cg_in, cg_out = c // groups, c_out // groups
    for g in range(groups):
        cols = im2col(x[g * cg_in:(g + 1) * cg_in], (kh, kw), stride, padding)
        wmat = weights[g * cg_out:(g + 1) * cg_out].reshape(cg_out, -1)
        out[g * cg_out:(g + 1) * cg_out] = (cols @ wmat.T).T.reshape(cg_out, out_h, out_w)
    return out


def depthwise_conv2d(x: np.ndarray, weights: np.ndarray,
                     stride: Union[int, Tuple[int, int]] = 1,
                     padding: Padding = "same") -> np.ndarray:
    """Depthwise convolution: ``weights`` is ``(C, kh, kw)``, one filter per channel."""
    c = x.shape[0]
    if weights.shape[0] != c:
        raise ValueError(f"expected {c} depthwise filters, got {weights.shape[0]}")
    return conv2d(x, weights[:, None, :, :], stride=stride, padding=padding, groups=c)


def pointwise_conv2d(x: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """1×1 convolution: ``weights`` is ``(C_out, C_in)``."""
    c, h, w = x.shape
    if weights.shape[1] != c:
        raise ValueError(f"weight expects {weights.shape[1]} channels, input has {c}")
    return (weights @ x.reshape(c, h * w)).reshape(weights.shape[0], h, w)


def conv1d_row(x: np.ndarray, weights: np.ndarray,
               stride: Union[int, Tuple[int, int]] = 1,
               padding: Padding = "same") -> np.ndarray:
    """FuSe row filters: depthwise ``1×K`` convolution (sliding along each row).

    ``weights`` is ``(C, K)``; with stride ``s`` the orthogonal (height) axis
    is subsampled by ``s`` as well so the output matches the depthwise
    convolution being replaced (§IV-A drop-in property).
    """
    return depthwise_conv2d(x, weights[:, None, :], stride=stride, padding=padding)


def conv1d_col(x: np.ndarray, weights: np.ndarray,
               stride: Union[int, Tuple[int, int]] = 1,
               padding: Padding = "same") -> np.ndarray:
    """FuSe column filters: depthwise ``K×1`` convolution (sliding down each column)."""
    return depthwise_conv2d(x, weights[:, :, None], stride=stride, padding=padding)
