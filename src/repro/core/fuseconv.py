"""The FuSeConv operator (§IV-A): fully separable depthwise 1D convolutions.

A FuSeConv depthwise stage factorizes a ``K×K×C`` depthwise filter bank into
two groups of depthwise 1D filters:

* ``1×K`` *row* filters over ``C/D`` channels (sliding along image rows),
* ``K×1`` *column* filters over ``C/D`` channels (sliding down columns),

whose outputs are concatenated channel-wise (``2C/D`` channels) and fed to
the usual 1×1 pointwise convolution.  ``D`` is the design knob: ``D=1`` is
the Full variant (both groups see all channels, output ``2C``), ``D=2`` the
Half variant (each group sees half the channels, output ``C``).

This module provides the executable numpy operator; the graph-level spec
lives in :class:`repro.ir.layer.FuSeConv1D` and the trainable version in
:mod:`repro.nn.layers`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..ir.layer import Padding
from .reference import conv1d_col, conv1d_row


def split_channels(channels: int, d: int) -> Tuple[int, int]:
    """Channel split ``(row_channels, col_channels)`` for design knob ``d``.

    The paper's §IV-A defines ``C/D`` row filters and ``C/D`` column
    filters (evaluating D ∈ {1, 2}); §VI invites "other variants".

    * ``d=1`` (Full): both groups see *all* channels — 2C outputs.
    * ``d=2`` (Half): the first ``ceil(C/2)`` channels go to row filters,
      the rest to column filters — C outputs.
    * ``d>2`` (extension): row filters on the first ``ceil(C/d)`` channels,
      column filters on the next ``floor(C/d)``; the remaining channels are
      not spatially filtered (they are dropped by the stage, and the
      following pointwise convolution operates on the 2C/D survivors) —
      the straight-line continuation of the paper's ``(2/D)·C(K + C')``
      accounting.
    """
    if d < 1:
        raise ValueError(f"design knob D must be a positive integer, got {d}")
    if d == 1:
        return (channels, channels)
    row = -(-channels // d)
    col = min(channels // d, channels - row)
    if row + col == 0 or col < 0:
        raise ValueError(f"design knob D={d} leaves no channels of {channels}")
    return (row, col)


def fuseconv(
    x: np.ndarray,
    row_weights: np.ndarray,
    col_weights: np.ndarray,
    d: int = 1,
    stride: Union[int, Tuple[int, int]] = 1,
    padding: Padding = "same",
) -> np.ndarray:
    """Apply the FuSeConv depthwise stage to a ``(C, H, W)`` input.

    Args:
        x: input feature map ``(C, H, W)``.
        row_weights: ``(C_row, K)`` 1D filters sliding along rows.
        col_weights: ``(C_col, K)`` 1D filters sliding down columns, where
            ``(C_row, C_col) = split_channels(C, d)``.
        d: design knob (1 = Full, 2 = Half).
        stride: spatial stride of the depthwise layer being replaced.
        padding: padding spec (``"same"`` preserves the drop-in shape).

    Returns:
        ``(2C/D, out_h, out_w)`` feature map: row outputs concatenated with
        column outputs.
    """
    c = x.shape[0]
    c_row, c_col = split_channels(c, d)
    if row_weights.shape[0] != c_row:
        raise ValueError(f"expected {c_row} row filters, got {row_weights.shape[0]}")
    if col_weights.shape[0] != c_col:
        raise ValueError(f"expected {c_col} column filters, got {col_weights.shape[0]}")

    if d == 1:
        row_in, col_in = x, x
    else:
        row_in = x[:c_row]
        col_in = x[c_row:c_row + c_col]

    row_out = conv1d_row(row_in, row_weights, stride=stride, padding=padding)
    outputs = [row_out]
    if c_col:
        outputs.append(conv1d_col(col_in, col_weights, stride=stride, padding=padding))
    return np.concatenate(outputs, axis=0)


@dataclass
class FuSeConvOp:
    """A FuSeConv depthwise stage with materialized weights.

    Example:
        >>> op = FuSeConvOp.init(channels=8, kernel=3, d=2, seed=0)
        >>> y = op(np.random.default_rng(0).normal(size=(8, 16, 16)))
        >>> y.shape
        (8, 16, 16)
    """

    row_weights: np.ndarray
    col_weights: np.ndarray
    d: int = 1
    stride: Union[int, Tuple[int, int]] = 1
    padding: Padding = "same"
    #: original input channel count; required for d > 2 where the split
    #: groups no longer cover all channels.  Inferred for d ∈ {1, 2}.
    channels: Optional[int] = None

    @classmethod
    def init(
        cls,
        channels: int,
        kernel: int,
        d: int = 1,
        stride: Union[int, Tuple[int, int]] = 1,
        padding: Padding = "same",
        seed: Optional[int] = None,
    ) -> "FuSeConvOp":
        """He-initialize a FuSeConv stage for ``channels`` input channels."""
        rng = np.random.default_rng(seed)
        c_row, c_col = split_channels(channels, d)
        scale = np.sqrt(2.0 / kernel)
        return cls(
            row_weights=rng.normal(0.0, scale, size=(c_row, kernel)),
            col_weights=rng.normal(0.0, scale, size=(c_col, kernel)),
            d=d,
            stride=stride,
            padding=padding,
            channels=channels,
        )

    @property
    def kernel(self) -> int:
        return self.row_weights.shape[1]

    @property
    def in_channels(self) -> int:
        if self.channels is not None:
            return self.channels
        if self.d == 1:
            return self.row_weights.shape[0]
        if self.d == 2:
            return self.row_weights.shape[0] + self.col_weights.shape[0]
        raise ValueError("in_channels for d > 2 requires the channels field")

    @property
    def out_channels(self) -> int:
        return self.row_weights.shape[0] + self.col_weights.shape[0]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return fuseconv(
            x,
            self.row_weights,
            self.col_weights,
            d=self.d,
            stride=self.stride,
            padding=self.padding,
        )

    def macs(self, height: int, width: int) -> int:
        """MACs for one ``(C, height, width)`` input (paper: (2/D)·N·M·C·K)."""
        from ..ir.layer import conv_out_size

        if isinstance(self.stride, int):
            sh = sw = self.stride
        else:
            sh, sw = self.stride
        if self.padding == "same":
            out_h = conv_out_size(height, 1, sh, "same")
            out_w = conv_out_size(width, 1, sw, "same")
        else:
            pad = self.padding if isinstance(self.padding, int) else self.padding[0]
            # Row filters: kernel (1, K); both groups share the output size.
            out_h = conv_out_size(height, 1, sh, 0)
            out_w = conv_out_size(width, self.kernel, sw, pad)
        return out_h * out_w * self.out_channels * self.kernel
