"""Drop-in replacement of depthwise convolutions with FuSeConv (§IV-A, §V-A.1).

:func:`to_fuseconv` rebuilds a network, replacing each selected
``DepthwiseConv2D`` node with the FuSeConv subgraph:

* Full (D=1):  ``x ─┬─ row 1D conv ──┐``
  ``              └─ col 1D conv ──┴─ concat → 2C channels``
* Half (D=2):  ``x ─┬─ split[:C/2] ─ row 1D conv ─┐``
  ``              └─ split[C/2:] ─ col 1D conv ─┴─ concat → C channels``

Everything downstream (BN, activation, SE, the 1×1 pointwise projection)
is left in place; with the Full variant the pointwise convolution widens
automatically because its input now carries 2C channels — exactly the
paper's ``(2/D)·C(K + C')`` accounting.

For the 50 % variants the paper replaces "layers in such a way that maximum
latency benefits are obtained"; we rank depthwise layers by the cycle
savings of their FuSe replacement on the target array (64×64 by default)
and replace the better half.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir.layer import ChannelSplit, Concat, DepthwiseConv2D, FuSeConv1D
from ..ir.network import Network, Node
from ..systolic.config import ArrayConfig, PAPER_ARRAY
from ..systolic.latency import mapping_stats
from .fuseconv import split_channels
from .variants import FuSeVariant


@dataclass
class ReplacementPlan:
    """Which depthwise nodes a transform will replace, and the expected gain."""

    variant: FuSeVariant
    array: ArrayConfig
    #: node name -> estimated cycle saving (baseline - FuSe) on ``array``
    savings: Dict[str, int] = field(default_factory=dict)
    replaced: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)


@dataclass
class TransformResult:
    """A transformed network together with its replacement plan."""

    network: Network
    plan: ReplacementPlan


def _fuse_cycle_saving(node: Node, d: int, array: ArrayConfig) -> int:
    """Cycle saving from replacing one depthwise node with its FuSe subgraph."""
    layer = node.layer
    assert isinstance(layer, DepthwiseConv2D)
    baseline = mapping_stats(layer, node.in_shape, node.out_shape, array).cycles

    c = node.in_shape[0]
    c_row, c_col = split_channels(c, d)
    stride = layer.stride_hw
    kernel = max(layer.kernel_hw)
    fuse_cycles = 0
    for axis, channels in (("row", c_row), ("col", c_col)):
        if channels == 0:
            continue
        spec = FuSeConv1D(axis=axis, kernel=kernel, stride=stride, padding=layer.padding)
        in_shape = (channels, node.in_shape[1], node.in_shape[2])
        fuse_cycles += mapping_stats(spec, in_shape, spec.out_shape(in_shape), array).cycles
    return baseline - fuse_cycles


def plan_replacements(
    network: Network,
    variant: FuSeVariant,
    array: Optional[ArrayConfig] = None,
) -> ReplacementPlan:
    """Choose which depthwise nodes to replace for ``variant``."""
    array = array or PAPER_ARRAY
    plan = ReplacementPlan(variant=variant, array=array)
    depthwise = network.find(DepthwiseConv2D)

    if variant.replace_fraction >= 1.0:
        # Full replacement needs no ranking (and no latency evaluation).
        plan.replaced = [n.name for n in depthwise]
        return plan

    for node in depthwise:
        plan.savings[node.name] = _fuse_cycle_saving(node, variant.d, array)

    budget = round(len(depthwise) * variant.replace_fraction)
    ranked = sorted(depthwise, key=lambda n: plan.savings[n.name], reverse=True)
    chosen = {n.name for n in ranked[:budget]}
    for node in depthwise:
        (plan.replaced if node.name in chosen else plan.skipped).append(node.name)
    return plan


def _insert_fuse_subgraph(
    out: Network,
    source: List[str],
    layer: DepthwiseConv2D,
    d: int,
    channels: int,
    block: str,
) -> str:
    """Append the FuSe subgraph reading from ``source``; return concat name."""
    kh, kw = layer.kernel_hw
    if kh != kw:
        raise ValueError(
            f"FuSe replacement of a non-square {kh}x{kw} depthwise kernel "
            "is not defined by the paper"
        )
    kernel = kh
    stride = layer.stride_hw
    c_row, c_col = split_channels(channels, d)

    branches: List[str] = []
    if d == 1:
        row_in, col_in = source, source
    else:
        row_in = [out.add(ChannelSplit(0, c_row), inputs=source, block=block)]
        col_in = (
            [out.add(ChannelSplit(c_row, c_row + c_col), inputs=source, block=block)]
            if c_col
            else []
        )

    branches.append(
        out.add(
            FuSeConv1D(axis="row", kernel=kernel, stride=stride, padding=layer.padding),
            inputs=row_in,
            block=block,
        )
    )
    if c_col:
        branches.append(
            out.add(
                FuSeConv1D(axis="col", kernel=kernel, stride=stride, padding=layer.padding),
                inputs=col_in,
                block=block,
            )
        )
    return out.add(Concat(), inputs=branches, block=block)


def transform_with_plan(network: Network, plan: ReplacementPlan) -> TransformResult:
    """Rebuild ``network`` applying a replacement plan."""
    replaced: Set[str] = set(plan.replaced)
    out = Network(
        f"{network.name}+{plan.variant.label}", input_shape=network.input_shape
    )
    name_map: Dict[str, str] = {}
    for node in network:
        mapped_inputs = [name_map[src] for src in node.inputs]
        if node.name in replaced:
            layer = node.layer
            if not isinstance(layer, DepthwiseConv2D):
                raise TypeError(
                    f"plan selects non-depthwise node {node.name} ({node.kind})"
                )
            if layer.multiplier != 1:
                raise ValueError(
                    f"FuSe replacement of {node.name} with channel multiplier "
                    f"{layer.multiplier} is not defined by the paper"
                )
            new_name = _insert_fuse_subgraph(
                out,
                mapped_inputs,
                layer,
                plan.variant.d,
                channels=node.in_shape[0],
                block=node.block,
            )
            # Drop-in property: spatial size must be preserved and channels
            # must equal 2C/D (§IV-A).
            got = out[new_name].out_shape
            want_channels = 2 * node.in_shape[0] // plan.variant.d
            if got[1:] != node.out_shape[1:] or got[0] != want_channels:
                raise ValueError(
                    f"FuSe replacement of {node.name} broke the drop-in "
                    f"shape: got {got}, expected ({want_channels}, "
                    f"{node.out_shape[1]}, {node.out_shape[2]})"
                )
            name_map[node.name] = new_name
        else:
            name_map[node.name] = out.add(
                node.layer, inputs=mapped_inputs, name=node.name, block=node.block
            )
    return TransformResult(network=out, plan=plan)


def to_mixed_fuseconv(
    network: Network,
    choices: Dict[str, Optional[int]],
    name_suffix: str = "FuSe-mixed",
) -> Network:
    """Per-layer operator assignment (the NOS generalization, §VI).

    Args:
        network: baseline network.
        choices: maps each ``DepthwiseConv2D`` node name to a design knob —
            ``1`` (Full replacement), ``2`` (Half replacement), any larger
            D (the §VI extension: only ``2C/D`` channels survive the
            spatial stage) or ``None`` (keep the depthwise layer).
            Unlisted depthwise nodes are kept.

    Returns:
        A new network with the chosen mix of operators.
    """
    depthwise_names = {n.name for n in network.find(DepthwiseConv2D)}
    unknown = set(choices) - depthwise_names
    if unknown:
        raise KeyError(f"choices reference non-depthwise nodes: {sorted(unknown)}")
    for name, d in choices.items():
        if d is not None and (not isinstance(d, int) or d < 1):
            raise ValueError(
                f"choice for {name} must be None or a positive integer D, got {d}"
            )

    out = Network(f"{network.name}+{name_suffix}", input_shape=network.input_shape)
    name_map: Dict[str, str] = {}
    for node in network:
        mapped_inputs = [name_map[src] for src in node.inputs]
        d = choices.get(node.name)
        if node.name in depthwise_names and d is not None:
            layer = node.layer
            assert isinstance(layer, DepthwiseConv2D)
            name_map[node.name] = _insert_fuse_subgraph(
                out, mapped_inputs, layer, d,
                channels=node.in_shape[0], block=node.block,
            )
        else:
            name_map[node.name] = out.add(
                node.layer, inputs=mapped_inputs, name=node.name, block=node.block
            )
    return out


def to_fuseconv(
    network: Network,
    variant: FuSeVariant = FuSeVariant.FULL,
    array: Optional[ArrayConfig] = None,
) -> Network:
    """Drop-in FuSeConv replacement (the paper's network variants).

    Args:
        network: the baseline network (any network with DepthwiseConv2D
            nodes; the paper uses MobileNets and MnasNet).
        variant: which Table I variant to build.
        array: target array for the 50 %-selection ranking (default 64×64).

    Returns:
        A new network; the input network is not modified.
    """
    plan = plan_replacements(network, variant, array)
    return transform_with_plan(network, plan).network
