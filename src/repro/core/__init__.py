"""The paper's contribution: the FuSeConv operator and drop-in transform."""

from .fuseconv import FuSeConvOp, fuseconv, split_channels
from .reference import (
    conv1d_col,
    conv1d_row,
    conv2d,
    depthwise_conv2d,
    im2col,
    pad_input,
    pointwise_conv2d,
)
from .transform import (
    ReplacementPlan,
    TransformResult,
    plan_replacements,
    to_fuseconv,
    to_mixed_fuseconv,
    transform_with_plan,
)
from .variants import ALL_VARIANTS, FuSeVariant

__all__ = [
    "FuSeConvOp",
    "fuseconv",
    "split_channels",
    "conv1d_col",
    "conv1d_row",
    "conv2d",
    "depthwise_conv2d",
    "im2col",
    "pad_input",
    "pointwise_conv2d",
    "ReplacementPlan",
    "TransformResult",
    "plan_replacements",
    "to_fuseconv",
    "to_mixed_fuseconv",
    "transform_with_plan",
    "ALL_VARIANTS",
    "FuSeVariant",
]
