"""Fig. 8(b): layer-wise (block-wise) speed-up of the FuSe transform.

The paper reports per-layer speed-ups of MobileNet-V2 FuSe-Full ranging
2.48×–9.38×, with early layers (large feature maps) benefiting most.
Blocks keep their labels through :func:`repro.core.to_fuseconv`, so the
comparison is a per-block cycle ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core import FuSeVariant, to_fuseconv
from ..ir import DepthwiseConv2D, Network, Shape
from ..obs import profiled
from ..systolic import ArrayConfig, PAPER_ARRAY, estimate_network


@dataclass(frozen=True)
class BlockSpeedup:
    """Speed-up of one network block after the FuSe transform."""

    block: str
    in_shape: Shape
    baseline_cycles: int
    fuse_cycles: int

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / self.fuse_cycles

    @property
    def feature_pixels(self) -> int:
        return self.in_shape[1] * self.in_shape[2]


@profiled("analysis.layerwise_speedups")
def layerwise_speedups(
    network: Network,
    variant: FuSeVariant = FuSeVariant.FULL,
    array: Optional[ArrayConfig] = None,
) -> List[BlockSpeedup]:
    """Per-block speed-ups for the blocks containing a depthwise layer."""
    array = array or PAPER_ARRAY
    transformed = to_fuseconv(network, variant, array)

    base_cycles = estimate_network(network, array).cycles_by_block()
    fuse_cycles = estimate_network(transformed, array).cycles_by_block()

    depthwise_blocks = []
    block_in_shape = {}
    for node in network:
        if isinstance(node.layer, DepthwiseConv2D) and node.block:
            if node.block not in block_in_shape:
                depthwise_blocks.append(node.block)
                block_in_shape[node.block] = node.in_shape

    rows = []
    for block in depthwise_blocks:
        if block not in base_cycles or block not in fuse_cycles:
            continue
        rows.append(
            BlockSpeedup(
                block=block,
                in_shape=block_in_shape[block],
                baseline_cycles=base_cycles[block],
                fuse_cycles=fuse_cycles[block],
            )
        )
    return rows
