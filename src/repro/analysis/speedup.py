"""Table I / Fig. 8(a): network speed-ups and latencies on the 64×64 array.

:func:`table1` computes MACs, params, latency and speed-up for the five
paper networks and their four FuSe variants; :func:`figure_8a` returns the
absolute latency series of Fig. 8(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import ALL_VARIANTS, FuSeVariant, to_fuseconv
from ..ir import Network, macs_millions, params_millions
from ..models import PAPER_NETWORKS, build_model
from ..obs import profiled
from ..systolic import ArrayConfig, PAPER_ARRAY, scatter
from ..systolic.diskcache import estimate_network_cached
from .paper_values import TABLE1, PaperRow


@dataclass(frozen=True)
class SpeedupRow:
    """One measured row of Table I (plus the paper's value, if any)."""

    network: str
    variant: Optional[str]
    macs_millions: float
    params_millions: float
    cycles: int
    latency_ms: float
    speedup: float
    paper: Optional[PaperRow]

    @property
    def label(self) -> str:
        return f"{self.network} {self.variant or 'baseline'}"


def network_variants(
    name: str,
    variants: Sequence[FuSeVariant] = ALL_VARIANTS,
    array: Optional[ArrayConfig] = None,
    **model_kwargs,
) -> Dict[Optional[str], Network]:
    """Baseline plus FuSe variants of one model, keyed by variant label."""
    baseline = build_model(name, **model_kwargs)
    out: Dict[Optional[str], Network] = {None: baseline}
    for variant in variants:
        out[variant.label] = to_fuseconv(baseline, variant, array)
    return out


def _network_rows(
    name: str,
    variants: Sequence[FuSeVariant],
    array: ArrayConfig,
    cache_dir,
    model_kwargs: Dict,
) -> List[SpeedupRow]:
    """Table I rows for one network (baseline + variants)."""
    nets = network_variants(name, variants, array, **model_kwargs)
    baseline_latency = estimate_network_cached(nets[None], array, cache_dir=cache_dir)
    rows: List[SpeedupRow] = []
    for label, net in nets.items():
        latency = (
            baseline_latency
            if label is None
            else estimate_network_cached(net, array, cache_dir=cache_dir)
        )
        rows.append(
            SpeedupRow(
                network=name,
                variant=label,
                macs_millions=macs_millions(net),
                params_millions=params_millions(net),
                cycles=latency.total_cycles,
                latency_ms=latency.total_ms,
                speedup=baseline_latency.total_cycles / latency.total_cycles,
                paper=TABLE1.get((name, label)),
            )
        )
    return rows


def _network_rows_worker(task) -> List[SpeedupRow]:
    """Module-level adapter so :func:`repro.systolic.scatter` can fork it."""
    return _network_rows(*task)


@profiled("analysis.table1")
def table1(
    networks: Sequence[str] = tuple(PAPER_NETWORKS),
    variants: Sequence[FuSeVariant] = ALL_VARIANTS,
    array: Optional[ArrayConfig] = None,
    jobs: Optional[int] = None,
    cache_dir=None,
    **model_kwargs,
) -> List[SpeedupRow]:
    """Measured Table I (minus accuracy, which has its own proxy harness).

    ``jobs`` fans the per-network work across a process pool (row order is
    deterministic either way); ``cache_dir`` memoizes the latency estimates
    on disk via :func:`repro.systolic.estimate_network_cached`.
    """
    array = array or PAPER_ARRAY
    tasks = [
        (name, tuple(variants), array, cache_dir, dict(model_kwargs))
        for name in networks
    ]
    per_network = scatter(_network_rows_worker, tasks, jobs=jobs)
    return [row for rows in per_network for row in rows]


@profiled("analysis.figure_8a")
def figure_8a(
    networks: Sequence[str] = tuple(PAPER_NETWORKS),
    array: Optional[ArrayConfig] = None,
    jobs: Optional[int] = None,
    cache_dir=None,
    **model_kwargs,
) -> Dict[str, Dict[str, float]]:
    """Fig. 8(a): absolute latency (ms) per network and variant."""
    rows = table1(networks, array=array, jobs=jobs, cache_dir=cache_dir,
                  **model_kwargs)
    out: Dict[str, Dict[str, float]] = {}
    for row in rows:
        out.setdefault(row.network, {})[row.variant or "baseline"] = row.latency_ms
    return out
