"""Quantifying reproduction quality: measured vs paper statistics.

EXPERIMENTS.md argues the *shape* of Table I is reproduced even though
absolute factors differ; this module makes that argument statistical:

* ratio statistics (mean / min / max of measured/paper speed-ups), and
* Spearman rank correlation between the measured and reported speed-up
  columns — the formal version of "same ordering".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from scipy.stats import spearmanr

from .speedup import SpeedupRow


@dataclass(frozen=True)
class CalibrationStats:
    """Agreement between measured and paper speed-up columns."""

    pairs: int
    mean_ratio: float
    min_ratio: float
    max_ratio: float
    rank_correlation: float

    def summary(self) -> str:
        return (
            f"{self.pairs} variants: measured/paper speed-up ratio "
            f"mean {self.mean_ratio:.2f} (range {self.min_ratio:.2f}–"
            f"{self.max_ratio:.2f}); Spearman rank correlation "
            f"{self.rank_correlation:.3f}"
        )


def calibration_stats(rows: Sequence[SpeedupRow]) -> CalibrationStats:
    """Compare measured Table I rows against the paper's values.

    Baseline rows (speed-up 1× by construction) are excluded.

    Raises:
        ValueError: if fewer than two comparable variant rows are present.
    """
    measured: List[float] = []
    reported: List[float] = []
    for row in rows:
        if row.variant is None or row.paper is None:
            continue
        measured.append(row.speedup)
        reported.append(row.paper.speedup)
    if len(measured) < 2:
        raise ValueError("need at least two variant rows with paper values")

    ratios = [m / p for m, p in zip(measured, reported)]
    correlation, _ = spearmanr(measured, reported)
    return CalibrationStats(
        pairs=len(measured),
        mean_ratio=sum(ratios) / len(ratios),
        min_ratio=min(ratios),
        max_ratio=max(ratios),
        rank_correlation=float(correlation),
    )
