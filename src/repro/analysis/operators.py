"""Fig. 8(c): latency distribution across operator classes.

The paper's observation: baseline networks spend 30–50 % of their latency
in depthwise convolutions; after the FuSe transform the distribution
shifts to pointwise convolutions, with the FuSe operators themselves at
only 4–11 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core import FuSeVariant, to_fuseconv
from ..ir import COMPUTE_CLASSES, Network
from ..models import PAPER_NETWORKS, build_model
from ..obs import profiled
from ..systolic import ArrayConfig, PAPER_ARRAY, estimate_network


@dataclass(frozen=True)
class OperatorDistribution:
    """Latency fractions by operator class for one network."""

    network: str
    total_cycles: int
    fractions: Dict[str, float]

    def share(self, op_class: str) -> float:
        return self.fractions.get(op_class, 0.0)


def operator_distribution(
    network: Network, array: Optional[ArrayConfig] = None
) -> OperatorDistribution:
    """Latency distribution over operator classes for one network."""
    latency = estimate_network(network, array or PAPER_ARRAY)
    return OperatorDistribution(
        network=network.name,
        total_cycles=latency.total_cycles,
        fractions=latency.class_fractions(),
    )


@profiled("analysis.figure_8c")
def figure_8c(
    networks: Sequence[str] = tuple(PAPER_NETWORKS),
    variant: FuSeVariant = FuSeVariant.FULL,
    array: Optional[ArrayConfig] = None,
    **model_kwargs,
) -> Dict[str, Dict[str, OperatorDistribution]]:
    """Baseline and FuSe operator distributions, keyed by network name."""
    array = array or PAPER_ARRAY
    out: Dict[str, Dict[str, OperatorDistribution]] = {}
    for name in networks:
        baseline = build_model(name, **model_kwargs)
        transformed = to_fuseconv(baseline, variant, array)
        out[name] = {
            "baseline": operator_distribution(baseline, array),
            "fuse": operator_distribution(transformed, array),
        }
    return out


def distribution_table(dist: OperatorDistribution) -> str:
    """One-line textual rendering: ``class: xx.x%`` sorted by share."""
    parts = [
        f"{cls}: {dist.fractions[cls] * 100:5.1f}%"
        for cls in sorted(dist.fractions, key=dist.fractions.get, reverse=True)
        if cls in COMPUTE_CLASSES
    ]
    return "  ".join(parts)
