"""Plain-text table rendering and CSV export for experiment results."""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    Numbers are right-aligned; everything else left-aligned.  Floats print
    with sensible precision.
    """

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    materialized: List[List[str]] = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric = [True] * len(headers)
    for row in materialized:
        for i, cell in enumerate(row):
            try:
                float(cell.rstrip("x%"))
            except ValueError:
                numeric[i] = False

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()


def ratio_or_na(measured: float, paper: Optional[float]) -> str:
    """``measured/paper`` as a string, or "n/a" when the paper value is absent."""
    if paper is None or paper == 0:
        return "n/a"
    return f"{measured / paper:.2f}"
